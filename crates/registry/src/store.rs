//! The on-disk grammar registry.
//!
//! A [`Registry`] is a directory of trained grammars addressed by
//! content ([`GrammarId`] = SHA-256 of the canonical `.pgrg` bytes):
//!
//! ```text
//! <root>/objects/<id>.pgrg      exact grammar-file bytes
//! <root>/manifests/<id>.json    size, shape, provenance
//! ```
//!
//! Content addressing is what turns "many trained grammars" from a fork
//! hazard into a feature: storing the same grammar twice is idempotent,
//! two registries agree on ids without coordination, and an image header
//! that names a `GrammarId` names *exactly one* decoder. Loads re-hash
//! the object bytes, so a stale or tampered object (the id no longer
//! matches the content) is rejected as [`RegistryError::Corrupt`] rather
//! than silently decoding the wrong grammar.
//!
//! Writes go through a temp-file rename, so a crashed writer leaves no
//! half-object under a valid id; [`Registry::gc`] prunes everything a
//! keep-list doesn't name, plus any orphaned or corrupt entries.

use crate::id::GrammarId;
use crate::proto::json_escape;
use pgr_grammar::{GrammarFile, GrammarFileError};
use pgr_telemetry::json::{self, Value};
use std::fmt;
use std::path::{Path, PathBuf};

/// Manifest format version.
pub const MANIFEST_VERSION: u64 = 1;

/// A registry failure.
///
/// I/O problems are captured as `(path, message)` strings so the type
/// stays `Clone + Eq` (and therefore composes into `PgrError`); the
/// message preserves the OS error text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// An underlying filesystem operation failed.
    Io {
        /// The path being operated on.
        path: String,
        /// The OS error text.
        message: String,
    },
    /// No stored grammar matches the requested id or prefix.
    NotFound {
        /// The id (or prefix) that failed to resolve.
        id: String,
    },
    /// A prefix matched more than one stored grammar.
    Ambiguous {
        /// The ambiguous prefix.
        prefix: String,
        /// Every matching full id, sorted.
        matches: Vec<String>,
    },
    /// An object's bytes no longer hash to its id: the entry is stale or
    /// tampered, and is never returned as a grammar.
    Corrupt {
        /// The id the object is filed under.
        id: String,
        /// The id its current bytes actually have.
        found: String,
    },
    /// The stored bytes are not a valid grammar file.
    Codec(GrammarFileError),
    /// A manifest file is unreadable or malformed.
    BadManifest {
        /// The id whose manifest is bad.
        id: String,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io { path, message } => write!(f, "{path}: {message}"),
            RegistryError::NotFound { id } => write!(f, "no grammar {id} in the registry"),
            RegistryError::Ambiguous { prefix, matches } => write!(
                f,
                "grammar prefix {prefix} is ambiguous ({} matches: {}…)",
                matches.len(),
                &matches[0][..12]
            ),
            RegistryError::Corrupt { id, found } => write!(
                f,
                "registry object {id} is corrupt (content hashes to {found}): refusing stale id"
            ),
            RegistryError::Codec(_) => write!(f, "stored grammar failed to decode"),
            RegistryError::BadManifest { id, message } => {
                write!(f, "manifest for {id} is malformed: {message}")
            }
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GrammarFileError> for RegistryError {
    fn from(e: GrammarFileError) -> RegistryError {
        RegistryError::Codec(e)
    }
}

fn io_err(path: &Path, e: std::io::Error) -> RegistryError {
    RegistryError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// What the registry knows about one stored grammar without loading it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// The grammar's content address.
    pub id: GrammarId,
    /// Manifest format version.
    pub version: u64,
    /// Size of the `.pgrg` object in bytes.
    pub bytes: u64,
    /// Non-terminals in the grammar.
    pub nt_count: u64,
    /// Total rules across all non-terminals.
    pub rule_count: u64,
    /// Seconds since the Unix epoch when the grammar was stored.
    pub created_unix: u64,
    /// Free-text provenance (e.g. "trained on 3 images, +180 rules").
    pub label: String,
}

impl Manifest {
    fn to_json(&self) -> String {
        format!(
            "{{\"id\":\"{}\",\"version\":{},\"bytes\":{},\"nt_count\":{},\"rule_count\":{},\"created_unix\":{},\"label\":\"{}\"}}\n",
            self.id.to_hex(),
            self.version,
            self.bytes,
            self.nt_count,
            self.rule_count,
            self.created_unix,
            json_escape(&self.label),
        )
    }

    fn from_json(id: &GrammarId, text: &str) -> Result<Manifest, RegistryError> {
        let bad = |message: &str| RegistryError::BadManifest {
            id: id.to_hex(),
            message: message.to_string(),
        };
        let doc = json::parse(text).map_err(|e| bad(&e.to_string()))?;
        let num = |key: &str| {
            doc.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| bad(&format!("missing integer field {key:?}")))
        };
        let manifest_id = doc
            .get("id")
            .and_then(Value::as_str)
            .and_then(GrammarId::parse)
            .ok_or_else(|| bad("missing or unparseable \"id\""))?;
        if manifest_id != *id {
            return Err(bad("manifest id disagrees with its file name"));
        }
        Ok(Manifest {
            id: manifest_id,
            version: num("version")?,
            bytes: num("bytes")?,
            nt_count: num("nt_count")?,
            rule_count: num("rule_count")?,
            created_unix: num("created_unix")?,
            label: doc
                .get("label")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
        })
    }
}

/// What [`Registry::gc`] did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Ids removed because the keep-list did not name them.
    pub removed: Vec<GrammarId>,
    /// Entries removed because their object bytes no longer hashed to
    /// their id, or half of the entry (object or manifest) was missing.
    pub pruned_corrupt: Vec<String>,
}

/// A content-addressed store of trained grammars under one root
/// directory. Cheap to construct; every operation talks straight to the
/// filesystem, so concurrent readers (and the serve front end) need no
/// shared in-process state.
#[derive(Debug, Clone)]
pub struct Registry {
    root: PathBuf,
}

impl Registry {
    /// Open (creating if needed) a registry rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] if the layout directories cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Registry, RegistryError> {
        let root = root.into();
        for dir in [root.join("objects"), root.join("manifests")] {
            std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        }
        Ok(Registry { root })
    }

    /// The registry's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn object_path(&self, id: &GrammarId) -> PathBuf {
        self.root
            .join("objects")
            .join(format!("{}.pgrg", id.to_hex()))
    }

    fn manifest_path(&self, id: &GrammarId) -> PathBuf {
        self.root
            .join("manifests")
            .join(format!("{}.json", id.to_hex()))
    }

    /// Write `bytes` to `path` via a temp-file rename, so no valid path
    /// ever holds partial content.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), RegistryError> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, bytes).map_err(|e| io_err(&tmp, e))?;
        std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))
    }

    /// Store a grammar file's canonical bytes, returning its content
    /// address. Idempotent: re-storing existing content rewrites nothing
    /// and returns the same id. The bytes are decoded first, so the
    /// registry never holds an object it cannot serve.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Codec`] for invalid grammar bytes,
    /// [`RegistryError::Io`] for filesystem failures.
    pub fn store_bytes(&self, pgrg: &[u8], label: &str) -> Result<Manifest, RegistryError> {
        let file = GrammarFile::from_bytes(pgrg)?;
        let id = GrammarId::of_bytes(pgrg);
        if let Ok(existing) = self.manifest(&id) {
            return Ok(existing);
        }
        let grammar = &file.grammar;
        let rule_count = (0..grammar.nt_count())
            .map(|nt| grammar.rules_of(pgr_grammar::Nt(nt as u16)).len() as u64)
            .sum();
        let manifest = Manifest {
            id,
            version: MANIFEST_VERSION,
            bytes: pgrg.len() as u64,
            nt_count: grammar.nt_count() as u64,
            rule_count,
            created_unix: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            label: label.to_string(),
        };
        self.write_atomic(&self.object_path(&id), pgrg)?;
        self.write_atomic(&self.manifest_path(&id), manifest.to_json().as_bytes())?;
        Ok(manifest)
    }

    /// Store a [`GrammarFile`], returning its manifest.
    ///
    /// # Errors
    ///
    /// See [`Registry::store_bytes`].
    pub fn store(&self, file: &GrammarFile, label: &str) -> Result<Manifest, RegistryError> {
        self.store_bytes(&file.to_bytes(), label)
    }

    /// Load a grammar's exact stored bytes, verifying they still hash to
    /// `id`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`] for unknown ids,
    /// [`RegistryError::Corrupt`] when the object fails its content
    /// check (the stale-id rejection path).
    pub fn load_bytes(&self, id: &GrammarId) -> Result<Vec<u8>, RegistryError> {
        let path = self.object_path(id);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(RegistryError::NotFound { id: id.to_hex() })
            }
            Err(e) => return Err(io_err(&path, e)),
        };
        let found = GrammarId::of_bytes(&bytes);
        if found != *id {
            return Err(RegistryError::Corrupt {
                id: id.to_hex(),
                found: found.to_hex(),
            });
        }
        Ok(bytes)
    }

    /// Load and decode a stored grammar.
    ///
    /// # Errors
    ///
    /// See [`Registry::load_bytes`]; additionally
    /// [`RegistryError::Codec`] if the (integrity-checked) bytes fail to
    /// decode.
    pub fn load(&self, id: &GrammarId) -> Result<GrammarFile, RegistryError> {
        Ok(GrammarFile::from_bytes(&self.load_bytes(id)?)?)
    }

    /// Read one grammar's manifest.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`] / [`RegistryError::BadManifest`].
    pub fn manifest(&self, id: &GrammarId) -> Result<Manifest, RegistryError> {
        let path = self.manifest_path(id);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(RegistryError::NotFound { id: id.to_hex() })
            }
            Err(e) => return Err(io_err(&path, e)),
        };
        Manifest::from_json(id, &text)
    }

    /// Every stored id, sorted. Files that are not `<64-hex>.pgrg` are
    /// ignored (temp files, stray editors droppings).
    pub fn ids(&self) -> Result<Vec<GrammarId>, RegistryError> {
        let dir = self.root.join("objects");
        let mut out = Vec::new();
        let entries = std::fs::read_dir(&dir).map_err(|e| io_err(&dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&dir, e))?;
            let name = entry.file_name();
            let Some(hex) = name.to_str().and_then(|n| n.strip_suffix(".pgrg")) else {
                continue;
            };
            if let Some(id) = GrammarId::parse(hex) {
                out.push(id);
            }
        }
        out.sort();
        Ok(out)
    }

    /// Every stored grammar's manifest, sorted by id.
    ///
    /// # Errors
    ///
    /// I/O failures and malformed manifests; use [`Registry::gc`] to
    /// prune the latter.
    pub fn list(&self) -> Result<Vec<Manifest>, RegistryError> {
        self.ids()?.iter().map(|id| self.manifest(id)).collect()
    }

    /// Resolve a full hex id or an unambiguous prefix (at least 4 hex
    /// digits) to a stored grammar.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`] / [`RegistryError::Ambiguous`].
    pub fn resolve(&self, spec: &str) -> Result<GrammarId, RegistryError> {
        if let Some(id) = GrammarId::parse(spec) {
            return Ok(id);
        }
        let not_found = || RegistryError::NotFound {
            id: spec.to_string(),
        };
        if spec.len() < 4 || !spec.chars().all(|c| c.is_ascii_hexdigit()) {
            return Err(not_found());
        }
        let prefix = spec.to_ascii_lowercase();
        let matches: Vec<GrammarId> = self
            .ids()?
            .into_iter()
            .filter(|id| id.to_hex().starts_with(&prefix))
            .collect();
        match matches.as_slice() {
            [] => Err(not_found()),
            [one] => Ok(*one),
            many => Err(RegistryError::Ambiguous {
                prefix,
                matches: many.iter().map(GrammarId::to_hex).collect(),
            }),
        }
    }

    /// Remove one stored grammar (object and manifest).
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`] if nothing is stored under `id`.
    pub fn remove(&self, id: &GrammarId) -> Result<(), RegistryError> {
        let object = self.object_path(id);
        if !object.exists() {
            return Err(RegistryError::NotFound { id: id.to_hex() });
        }
        std::fs::remove_file(&object).map_err(|e| io_err(&object, e))?;
        let manifest = self.manifest_path(id);
        if manifest.exists() {
            std::fs::remove_file(&manifest).map_err(|e| io_err(&manifest, e))?;
        }
        Ok(())
    }

    /// Garbage-collect: keep exactly the grammars in `keep` (plus
    /// everything, if `keep` is empty — an empty keep-list only prunes),
    /// and always remove entries whose object fails its content check or
    /// whose object/manifest half is missing.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] on filesystem failures mid-sweep.
    pub fn gc(&self, keep: &[GrammarId]) -> Result<GcReport, RegistryError> {
        let mut report = GcReport::default();
        for id in self.ids()? {
            let stale = self.load_bytes(&id).is_err() || self.manifest(&id).is_err();
            if stale {
                let object = self.object_path(&id);
                let manifest = self.manifest_path(&id);
                let _ = std::fs::remove_file(&object);
                let _ = std::fs::remove_file(&manifest);
                report.pruned_corrupt.push(id.to_hex());
                continue;
            }
            if !keep.is_empty() && !keep.contains(&id) {
                self.remove(&id)?;
                report.removed.push(id);
            }
        }
        // Manifests whose object vanished.
        let dir = self.root.join("manifests");
        let entries = std::fs::read_dir(&dir).map_err(|e| io_err(&dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&dir, e))?;
            let name = entry.file_name();
            let Some(hex) = name.to_str().and_then(|n| n.strip_suffix(".json")) else {
                continue;
            };
            let Some(id) = GrammarId::parse(hex) else {
                continue;
            };
            if !self.object_path(&id).exists() {
                let _ = std::fs::remove_file(entry.path());
                report.pruned_corrupt.push(id.to_hex());
            }
        }
        Ok(report)
    }
}
