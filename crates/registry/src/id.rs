//! Content addressing: [`GrammarId`] is the SHA-256 digest of a
//! grammar's canonical `.pgrg` bytes.
//!
//! The `.pgrg` codec is canonical (`from_bytes(x).to_bytes() == x`), so
//! hashing the file bytes gives every trained grammar exactly one id:
//! store the same grammar twice and you get the same id back; change one
//! rule and the id changes. The id doubles as the integrity check on
//! load (a registry object whose bytes no longer hash to its name is
//! corrupt) and as the link from a compressed image's meta section to
//! the grammar that decodes it.
//!
//! SHA-256 is implemented here directly (FIPS 180-4); the build
//! environment vendors no external crates, and the compression function
//! is ~40 lines. The NIST test vectors below pin it.

use std::fmt;

/// Length of a grammar id in bytes — matches
/// [`pgr_bytecode::GRAMMAR_ID_LEN`] so ids embed in image meta sections.
pub const ID_LEN: usize = 32;

const _: () = assert!(ID_LEN == pgr_bytecode::GRAMMAR_ID_LEN);

/// The content address of a trained grammar: the SHA-256 digest of its
/// canonical `.pgrg` file bytes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GrammarId([u8; ID_LEN]);

impl GrammarId {
    /// Address a grammar file by content.
    pub fn of_bytes(pgrg_bytes: &[u8]) -> GrammarId {
        GrammarId(sha256(pgrg_bytes))
    }

    /// The raw digest, for embedding in an image meta section.
    pub fn as_bytes(&self) -> &[u8; ID_LEN] {
        &self.0
    }

    /// Rebuild an id from raw digest bytes (e.g. out of an image
    /// header).
    pub fn from_raw(bytes: [u8; ID_LEN]) -> GrammarId {
        GrammarId(bytes)
    }

    /// The 64-character lowercase hex form used for file names and wire
    /// messages.
    pub fn to_hex(&self) -> String {
        let mut out = String::with_capacity(ID_LEN * 2);
        for b in self.0 {
            out.push_str(&format!("{b:02x}"));
        }
        out
    }

    /// Parse a full 64-character hex id (case-insensitive). Returns
    /// `None` for anything else — prefix resolution is the registry's
    /// job, not the id type's.
    pub fn parse(hex: &str) -> Option<GrammarId> {
        if hex.len() != ID_LEN * 2 {
            return None;
        }
        let mut out = [0u8; ID_LEN];
        for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
            let s = std::str::from_utf8(chunk).ok()?;
            out[i] = u8::from_str_radix(s, 16).ok()?;
        }
        Some(GrammarId(out))
    }
}

impl fmt::Display for GrammarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::Debug for GrammarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GrammarId({})", &self.to_hex()[..12])
    }
}

// ---- SHA-256 (FIPS 180-4) ----------------------------------------------

const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// The SHA-256 digest of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = H0;

    // Pad: message || 0x80 || zeros || 64-bit bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = Vec::with_capacity(data.len() + 72);
    msg.extend_from_slice(data);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 64];
    for block in msg.chunks_exact(64) {
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(word.try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (slot, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *slot = slot.wrapping_add(v);
        }
    }

    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(digest: [u8; 32]) -> String {
        GrammarId::from_raw(digest).to_hex()
    }

    #[test]
    fn sha256_matches_nist_vectors() {
        assert_eq!(
            hex(sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // A multi-block message exercising padding around 64 bytes.
        let long = vec![b'a'; 1_000];
        assert_eq!(
            hex(sha256(&long)),
            "41edece42d63e8d9bf515a9ba6932e1c20cbc9f5a5d134645adb5db1b9737ea3"
        );
    }

    #[test]
    fn ids_roundtrip_through_hex() {
        let id = GrammarId::of_bytes(b"some grammar bytes");
        assert_eq!(GrammarId::parse(&id.to_hex()), Some(id));
        assert_eq!(GrammarId::parse(&id.to_hex().to_uppercase()), Some(id));
        assert_eq!(GrammarId::parse("abc"), None);
        assert_eq!(GrammarId::parse(&"zz".repeat(32)), None);
        assert_ne!(
            GrammarId::of_bytes(b"some grammar bytes"),
            GrammarId::of_bytes(b"some grammar byteS")
        );
    }
}
