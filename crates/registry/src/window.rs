//! Sliding-window serve statistics: rolling RPS, error rate, and
//! per-op / per-grammar latency quantiles over the last N seconds.
//!
//! The lifetime histograms in the metrics registry answer "since the
//! server started"; operators watching a live service need "right now".
//! [`SlidingWindow`] is a ring of one-second slots keyed by absolute
//! server second — recording into a slot whose second has passed resets
//! it first, so the ring needs no timer thread and costs one modulo per
//! request. [`SlidingWindow::aggregate`] folds the still-fresh slots
//! into a [`WindowStats`] for the `stats` response, which `pgr top`
//! polls and renders.
//!
//! Time is passed in by the caller (seconds since server start), which
//! keeps the ring deterministic and directly testable without clocks.

use pgr_telemetry::names;
use pgr_telemetry::Hist;
use std::collections::BTreeMap;

/// One second's worth of request activity.
#[derive(Debug, Clone, Default)]
struct Slot {
    /// The absolute second (since server start) this slot holds data
    /// for; a slot whose second is stale is logically empty.
    second: u64,
    requests: u64,
    errors: u64,
    /// Requests refused by admission control (a subset of `errors`).
    rejected: u64,
    per_op: BTreeMap<String, Hist>,
    per_grammar: BTreeMap<String, Hist>,
    /// Requests coalesced per engine dispatch (1 = unbatched).
    batch_size: Hist,
    /// Oldest-request wait per dispatched batch, micros.
    batch_wait: Hist,
    /// Hot segments tier-2-compiled by run requests.
    tier2_compiled: u64,
    /// Tiered replays deoptimized to tier-1 by run requests.
    tier2_deopts: u64,
    /// Requests answered in-band with `deadline_exceeded`.
    deadline_exceeded: u64,
    /// Requests force-expired by the reactor watchdog (a subset of
    /// `deadline_exceeded`).
    force_expired: u64,
    /// Connections closed for sitting idle past the idle timeout.
    idle_closed: u64,
    /// Connections closed for exceeding the request-line byte bound.
    line_overflow: u64,
}

impl Slot {
    fn reset(&mut self, second: u64) {
        self.second = second;
        self.requests = 0;
        self.errors = 0;
        self.rejected = 0;
        self.per_op.clear();
        self.per_grammar.clear();
        self.batch_size = Hist::default();
        self.batch_wait = Hist::default();
        self.tier2_compiled = 0;
        self.tier2_deopts = 0;
        self.deadline_exceeded = 0;
        self.force_expired = 0;
        self.idle_closed = 0;
        self.line_overflow = 0;
    }

    /// Whether the slot recorded anything at all (a batch dispatch or a
    /// rejection can land in a second with no completed requests).
    fn live(&self) -> bool {
        self.requests > 0
            || self.rejected > 0
            || self.batch_size.count > 0
            || self.tier2_compiled > 0
            || self.tier2_deopts > 0
            || self.deadline_exceeded > 0
            || self.force_expired > 0
            || self.idle_closed > 0
            || self.line_overflow > 0
    }
}

/// A ring of per-second slots covering the trailing window.
#[derive(Debug)]
pub struct SlidingWindow {
    secs: u64,
    slots: Vec<Slot>,
}

/// The folded view of a window, ready for the `stats` response.
#[derive(Debug, Clone, Default)]
pub struct WindowStats {
    /// Window length in seconds.
    pub window_secs: u64,
    /// Requests completed inside the window.
    pub requests: u64,
    /// Requests answered with an error response inside the window.
    pub errors: u64,
    /// Requests refused by admission control inside the window (also
    /// counted in `errors`).
    pub rejected: u64,
    /// Latency summary per operation (`compress`, `run`, …), micros.
    pub per_op: BTreeMap<String, Hist>,
    /// Latency summary per grammar (hex id), micros.
    pub per_grammar: BTreeMap<String, Hist>,
    /// Requests coalesced per engine dispatch (1 = unbatched).
    pub batch_size: Hist,
    /// Oldest-request wait per dispatched batch, micros.
    pub batch_wait: Hist,
    /// Hot segments tier-2-compiled by run requests inside the window.
    pub tier2_compiled: u64,
    /// Tiered replays deoptimized to tier-1 (telemetry or tracing
    /// active) by run requests inside the window.
    pub tier2_deopts: u64,
    /// Requests answered `deadline_exceeded` inside the window.
    pub deadline_exceeded: u64,
    /// Requests force-expired by the reactor watchdog inside the window
    /// (a subset of `deadline_exceeded`).
    pub force_expired: u64,
    /// Connections closed for idling past the idle timeout inside the
    /// window.
    pub idle_closed: u64,
    /// Connections closed for exceeding the request-line byte bound
    /// inside the window.
    pub line_overflow: u64,
}

impl WindowStats {
    /// Rolling requests per second over the window.
    pub fn rps(&self) -> f64 {
        self.requests as f64 / self.window_secs.max(1) as f64
    }

    /// Fraction of windowed requests that errored (0 when idle).
    pub fn error_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.errors as f64 / self.requests as f64
        }
    }

    /// Serialize as one compact JSON object (the `"window"` field of a
    /// `stats` response).
    pub fn to_json(&self) -> String {
        fn hist_json(h: &Hist) -> String {
            format!(
                "{{\"count\":{},\"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                h.count,
                h.p50(),
                h.p90(),
                h.p95(),
                h.p99(),
                h.max
            )
        }
        fn map_json(map: &BTreeMap<String, Hist>) -> String {
            let fields: Vec<String> = map
                .iter()
                .map(|(k, h)| format!("{}:{}", crate::proto::json_string(k), hist_json(h)))
                .collect();
            format!("{{{}}}", fields.join(","))
        }
        format!(
            "{{\"window_secs\":{},\"requests\":{},\"errors\":{},\"rejected\":{},\
             \"rps\":{:.3},\"error_rate\":{:.4},\"ops\":{},\"grammars\":{},\
             \"batch_size\":{},\"batch_wait\":{},\
             \"tier2_compiled\":{},\"tier2_deopts\":{},\
             \"deadline_exceeded\":{},\"force_expired\":{},\
             \"idle_closed\":{},\"line_overflow\":{}}}",
            self.window_secs,
            self.requests,
            self.errors,
            self.rejected,
            self.rps(),
            self.error_rate(),
            map_json(&self.per_op),
            map_json(&self.per_grammar),
            hist_json(&self.batch_size),
            hist_json(&self.batch_wait),
            self.tier2_compiled,
            self.tier2_deopts,
            self.deadline_exceeded,
            self.force_expired,
            self.idle_closed,
            self.line_overflow,
        )
    }
}

impl SlidingWindow {
    /// A window covering the trailing `secs` seconds (min 1).
    pub fn new(secs: u64) -> SlidingWindow {
        let secs = secs.max(1);
        SlidingWindow {
            secs,
            slots: vec![Slot::default(); secs as usize],
        }
    }

    /// Record one completed request. `now_sec` is seconds since server
    /// start; `grammar` is the request's grammar id hex when one was
    /// resolved; `micros` is end-to-end latency.
    pub fn record(&mut self, now_sec: u64, op: &str, grammar: Option<&str>, micros: u64, ok: bool) {
        let slot = self.slot_at(now_sec);
        slot.requests += 1;
        if !ok {
            slot.errors += 1;
        }
        slot.per_op
            .entry(op.to_string())
            .or_default()
            .observe(micros);
        if let Some(g) = grammar {
            slot.per_grammar
                .entry(g.to_string())
                .or_default()
                .observe(micros);
        }
    }

    /// Record one admission-control rejection (the request was answered
    /// with an in-band `overloaded` error, not handled).
    pub fn record_rejected(&mut self, now_sec: u64) {
        let slot = self.slot_at(now_sec);
        slot.requests += 1;
        slot.errors += 1;
        slot.rejected += 1;
    }

    /// Record one engine dispatch of `size` coalesced requests whose
    /// oldest member waited `wait_micros` between arrival and dispatch.
    pub fn record_batch(&mut self, now_sec: u64, size: u64, wait_micros: u64) {
        let slot = self.slot_at(now_sec);
        slot.batch_size.observe(size);
        slot.batch_wait.observe(wait_micros);
    }

    /// Record one run request's tier-2 activity: segments compiled and
    /// replays deoptimized during that request's execution.
    pub fn record_tier2(&mut self, now_sec: u64, compiled: u64, deopts: u64) {
        if compiled == 0 && deopts == 0 {
            return;
        }
        let slot = self.slot_at(now_sec);
        slot.tier2_compiled += compiled;
        slot.tier2_deopts += deopts;
    }

    /// Record one request answered in-band with `deadline_exceeded`;
    /// `forced` marks a reactor-watchdog force expiry (the worker missed
    /// the deadline by the grace factor) as opposed to a cooperative
    /// cancellation the worker reported itself.
    pub fn record_deadline(&mut self, now_sec: u64, forced: bool) {
        let slot = self.slot_at(now_sec);
        slot.deadline_exceeded += 1;
        if forced {
            slot.force_expired += 1;
        }
    }

    /// Record one connection closed for idling past the idle timeout.
    pub fn record_idle_closed(&mut self, now_sec: u64) {
        self.slot_at(now_sec).idle_closed += 1;
    }

    /// Record one connection closed for exceeding the request-line byte
    /// bound.
    pub fn record_line_overflow(&mut self, now_sec: u64) {
        self.slot_at(now_sec).line_overflow += 1;
    }

    /// The live slot for `now_sec`, reset first if its second is stale.
    fn slot_at(&mut self, now_sec: u64) -> &mut Slot {
        let idx = (now_sec % self.secs) as usize;
        let slot = &mut self.slots[idx];
        if slot.second != now_sec {
            slot.reset(now_sec);
        }
        slot
    }

    /// Fold every slot still inside the trailing window (relative to
    /// `now_sec`) into one [`WindowStats`].
    pub fn aggregate(&self, now_sec: u64) -> WindowStats {
        let oldest = now_sec.saturating_sub(self.secs.saturating_sub(1));
        let mut stats = WindowStats {
            window_secs: self.secs,
            ..WindowStats::default()
        };
        for slot in &self.slots {
            // Slot 0's default second of 0 is only live when second 0
            // really is in the window and something recorded into it.
            if slot.second < oldest || slot.second > now_sec || !slot.live() {
                continue;
            }
            stats.requests += slot.requests;
            stats.errors += slot.errors;
            stats.rejected += slot.rejected;
            stats.tier2_compiled += slot.tier2_compiled;
            stats.tier2_deopts += slot.tier2_deopts;
            stats.deadline_exceeded += slot.deadline_exceeded;
            stats.force_expired += slot.force_expired;
            stats.idle_closed += slot.idle_closed;
            stats.line_overflow += slot.line_overflow;
            stats.batch_size = stats.batch_size.merge(slot.batch_size);
            stats.batch_wait = stats.batch_wait.merge(slot.batch_wait);
            for (k, h) in &slot.per_op {
                let slot = stats.per_op.entry(k.clone()).or_default();
                *slot = slot.merge(*h);
            }
            for (k, h) in &slot.per_grammar {
                let slot = stats.per_grammar.entry(k.clone()).or_default();
                *slot = slot.merge(*h);
            }
        }
        stats
    }
}

/// The default window length served by `stats` (and rendered by
/// `pgr top`).
pub const DEFAULT_WINDOW_SECS: u64 = 60;

/// Convenience: the op token (`"compress"`) behind a
/// `serve.request.<op>.micros` histogram name, if `name` is one.
pub fn op_of_hist_name(name: &str) -> Option<&str> {
    name.strip_prefix(names::SERVE_REQUEST_PREFIX)?
        .strip_suffix(".micros")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_slots_aggregate_and_stale_slots_expire() {
        let mut w = SlidingWindow::new(3);
        w.record(0, "compress", Some("aa"), 100, true);
        w.record(1, "compress", Some("aa"), 200, true);
        w.record(2, "run", None, 300, false);

        let all = w.aggregate(2);
        assert_eq!(all.requests, 3);
        assert_eq!(all.errors, 1);
        assert_eq!(all.per_op["compress"].count, 2);
        assert_eq!(all.per_op["run"].count, 1);
        assert_eq!(all.per_grammar["aa"].count, 2);
        assert!((all.rps() - 1.0).abs() < 1e-9);
        assert!((all.error_rate() - 1.0 / 3.0).abs() < 1e-9);

        // Advance time: second 0 falls out of the 3s window at t=3.
        let later = w.aggregate(3);
        assert_eq!(later.requests, 2);

        // A new record at t=3 reuses (and resets) second 0's slot.
        w.record(3, "stats", None, 50, true);
        let at3 = w.aggregate(3);
        assert_eq!(at3.requests, 3);
        assert_eq!(at3.per_op["stats"].count, 1);
        // Only t=1's compress survives; t=0's was overwritten by t=3.
        assert_eq!(at3.per_op["compress"].count, 1);

        // Far future: everything expired.
        let empty = w.aggregate(100);
        assert_eq!(empty.requests, 0);
        assert_eq!(empty.error_rate(), 0.0);
    }

    #[test]
    fn window_json_parses_and_carries_quantiles() {
        let mut w = SlidingWindow::new(60);
        for i in 0..50 {
            w.record(5, "compress", Some("abcd"), 100 + i, i % 10 != 0);
        }
        let stats = w.aggregate(5);
        let text = stats.to_json();
        let doc = pgr_telemetry::json::parse(&text).expect("window JSON parses");
        use pgr_telemetry::json::Value;
        assert_eq!(doc.get("requests").and_then(Value::as_u64), Some(50));
        assert_eq!(doc.get("errors").and_then(Value::as_u64), Some(5));
        let op = doc.get("ops").unwrap().get("compress").unwrap();
        for field in ["count", "p50", "p90", "p95", "p99", "max"] {
            assert!(op.get(field).is_some(), "window op field {field}");
        }
        let p50 = op.get("p50").unwrap().as_u64().unwrap();
        assert!((100..=149).contains(&p50), "p50 = {p50}");
        assert!(doc.get("grammars").unwrap().get("abcd").is_some());
    }

    #[test]
    fn tier2_counters_roll_through_the_window() {
        let mut w = SlidingWindow::new(3);
        w.record_tier2(0, 2, 5);
        w.record_tier2(1, 1, 0);
        // Zero activity records nothing (and must not keep an otherwise
        // empty slot alive).
        w.record_tier2(2, 0, 0);

        let all = w.aggregate(2);
        assert_eq!(all.tier2_compiled, 3);
        assert_eq!(all.tier2_deopts, 5);

        // Second 0 expires at t=3.
        let later = w.aggregate(3);
        assert_eq!(later.tier2_compiled, 1);
        assert_eq!(later.tier2_deopts, 0);

        let text = all.to_json();
        let doc = pgr_telemetry::json::parse(&text).expect("window JSON parses");
        use pgr_telemetry::json::Value;
        assert_eq!(doc.get("tier2_compiled").and_then(Value::as_u64), Some(3));
        assert_eq!(doc.get("tier2_deopts").and_then(Value::as_u64), Some(5));
    }

    #[test]
    fn robustness_counters_roll_through_the_window() {
        let mut w = SlidingWindow::new(3);
        w.record_deadline(0, false);
        w.record_deadline(0, true);
        w.record_idle_closed(1);
        w.record_line_overflow(1);

        let all = w.aggregate(2);
        assert_eq!(all.deadline_exceeded, 2);
        assert_eq!(all.force_expired, 1, "forced expiry is a subset");
        assert_eq!(all.idle_closed, 1);
        assert_eq!(all.line_overflow, 1);

        // A hygiene-only slot must count as live even with no requests.
        assert_eq!(all.requests, 0);

        // Second 0 expires at t=3.
        let later = w.aggregate(3);
        assert_eq!(later.deadline_exceeded, 0);
        assert_eq!(later.idle_closed, 1);

        let doc = pgr_telemetry::json::parse(&all.to_json()).expect("window JSON parses");
        use pgr_telemetry::json::Value;
        assert_eq!(
            doc.get("deadline_exceeded").and_then(Value::as_u64),
            Some(2)
        );
        assert_eq!(doc.get("force_expired").and_then(Value::as_u64), Some(1));
        assert_eq!(doc.get("idle_closed").and_then(Value::as_u64), Some(1));
        assert_eq!(doc.get("line_overflow").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn hist_names_map_back_to_ops() {
        assert_eq!(
            op_of_hist_name(names::SERVE_REQUEST_COMPRESS_MICROS),
            Some("compress")
        );
        assert_eq!(op_of_hist_name("serve.requests"), None);
        assert_eq!(op_of_hist_name("serve.request.run.errors"), None);
    }
}
