//! The serve wire protocol: newline-delimited JSON over a Unix socket.
//!
//! Each request is one JSON object on one line; each response is one
//! JSON object on one line. Binary payloads (bytecode images, VM input
//! and output) travel as standard base64 strings, so the framing stays
//! plain text and a session can be driven by hand:
//!
//! ```text
//! → {"op":"compress","grammar":"9c0f…","image":"UEdSQg…"}
//! ← {"ok":true,"image":"UEdSQg…","original_bytes":120,"compressed_bytes":61}
//! → {"op":"stats"}
//! ← {"ok":true,"metrics":{ … }}
//! ```
//!
//! Errors are in-band — `{"ok":false,"error":"…"}` — and never tear down
//! the connection; only transport failures do. The base64 codec is
//! implemented here (RFC 4648, standard alphabet with padding) because
//! the build environment vendors no external crates.

/// Standard base64 alphabet (RFC 4648 §4).
const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encode bytes as standard padded base64.
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        let n = u32::from(b[0]) << 16 | u32::from(b[1]) << 8 | u32::from(b[2]);
        let quad = [
            B64[(n >> 18) as usize & 63],
            B64[(n >> 12) as usize & 63],
            B64[(n >> 6) as usize & 63],
            B64[n as usize & 63],
        ];
        let keep = chunk.len() + 1;
        for (i, c) in quad.into_iter().enumerate() {
            out.push(if i < keep { c as char } else { '=' });
        }
    }
    out
}

/// Decode standard base64 (padded or unpadded). Returns `None` on any
/// alphabet violation or impossible length.
pub fn base64_decode(text: &str) -> Option<Vec<u8>> {
    fn val(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some(u32::from(c - b'A')),
            b'a'..=b'z' => Some(u32::from(c - b'a') + 26),
            b'0'..=b'9' => Some(u32::from(c - b'0') + 52),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let trimmed = text.trim_end_matches('=').as_bytes();
    if trimmed.len() % 4 == 1 {
        return None;
    }
    let mut out = Vec::with_capacity(trimmed.len() * 3 / 4);
    for chunk in trimmed.chunks(4) {
        let mut n = 0u32;
        for &c in chunk {
            n = n << 6 | val(c)?;
        }
        n <<= 6 * (4 - chunk.len()) as u32;
        let bytes = n.to_be_bytes();
        out.extend_from_slice(&bytes[1..chunk.len()]);
    }
    Some(out)
}

/// Escape a string for embedding in a JSON document.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a string as a complete JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

/// Incrementally build one response line. Purely syntactic — the field
/// vocabulary lives with each request handler in [`crate::serve`].
#[derive(Debug, Default, Clone)]
pub struct ResponseLine {
    fields: Vec<String>,
}

impl ResponseLine {
    /// Start a success response (`"ok":true`).
    pub fn ok() -> ResponseLine {
        let mut r = ResponseLine::default();
        r.fields.push("\"ok\":true".to_string());
        r
    }

    /// Build a complete error response (`"ok":false` plus the message).
    pub fn err(message: &str) -> String {
        format!("{{\"ok\":false,\"error\":\"{}\"}}", json_escape(message))
    }

    /// Build a complete error response carrying the request's trace id
    /// and end-to-end latency, so a failure line correlates with the
    /// slow-trace dump and server logs.
    pub fn err_traced(message: &str, trace_hex: &str, micros: u64) -> String {
        format!(
            "{{\"ok\":false,\"error\":\"{}\",\"trace\":\"{}\",\"micros\":{micros}}}",
            json_escape(message),
            json_escape(trace_hex),
        )
    }

    /// Build a complete admission-control rejection: an in-band
    /// `overloaded` error telling the client how long to back off before
    /// retrying. The error token is fixed so clients can match on it.
    pub fn overloaded(retry_after_ms: u64, trace_hex: &str) -> String {
        format!(
            "{{\"ok\":false,\"error\":\"overloaded\",\"retry_after_ms\":{retry_after_ms},\
             \"trace\":\"{}\"}}",
            json_escape(trace_hex),
        )
    }

    /// Build a complete deadline-expiry response: an in-band
    /// `deadline_exceeded` error with the elapsed time, so a stuck or
    /// slow request fails its own slot without tearing down the
    /// connection. The error token is fixed so clients can match on it.
    pub fn deadline_exceeded(elapsed_ms: u64, trace_hex: &str) -> String {
        format!(
            "{{\"ok\":false,\"error\":\"deadline_exceeded\",\"elapsed_ms\":{elapsed_ms},\
             \"trace\":\"{}\"}}",
            json_escape(trace_hex),
        )
    }

    /// Append a string field (JSON-escaped).
    pub fn str_field(mut self, key: &str, value: &str) -> ResponseLine {
        self.fields
            .push(format!("\"{key}\":\"{}\"", json_escape(value)));
        self
    }

    /// Append an integer field.
    pub fn num_field(mut self, key: &str, value: u64) -> ResponseLine {
        self.fields.push(format!("\"{key}\":{value}"));
        self
    }

    /// Append a signed integer field.
    pub fn int_field(mut self, key: &str, value: i64) -> ResponseLine {
        self.fields.push(format!("\"{key}\":{value}"));
        self
    }

    /// Append a boolean field.
    pub fn bool_field(mut self, key: &str, value: bool) -> ResponseLine {
        self.fields.push(format!("\"{key}\":{value}"));
        self
    }

    /// Append a field whose value is already serialized JSON (e.g. a
    /// metrics snapshot).
    pub fn raw_field(mut self, key: &str, json: &str) -> ResponseLine {
        self.fields.push(format!("\"{key}\":{json}"));
        self
    }

    /// Close the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base64_matches_rfc4648_vectors() {
        // RFC 4648 §10 test vectors.
        let vectors: &[(&[u8], &str)] = &[
            (b"", ""),
            (b"f", "Zg=="),
            (b"fo", "Zm8="),
            (b"foo", "Zm9v"),
            (b"foob", "Zm9vYg=="),
            (b"fooba", "Zm9vYmE="),
            (b"foobar", "Zm9vYmFy"),
        ];
        for (raw, encoded) in vectors {
            assert_eq!(base64_encode(raw), *encoded);
            assert_eq!(base64_decode(encoded).as_deref(), Some(*raw));
        }
    }

    #[test]
    fn base64_roundtrips_binary_and_rejects_junk() {
        let data: Vec<u8> = (0u16..=255).map(|b| b as u8).cycle().take(1021).collect();
        assert_eq!(base64_decode(&base64_encode(&data)).unwrap(), data);
        assert_eq!(base64_decode("not base64!"), None);
        assert_eq!(base64_decode("Zg"), Some(b"f".to_vec())); // unpadded ok
        assert_eq!(base64_decode("Z"), None); // impossible length
    }

    #[test]
    fn response_lines_are_valid_json() {
        let line = ResponseLine::ok()
            .str_field("image", "AA==")
            .num_field("bytes", 7)
            .int_field("exit_code", -1)
            .bool_field("clamped", false)
            .raw_field("metrics", "{\"counters\":{}}")
            .finish();
        let doc = pgr_telemetry::json::parse(&line).expect("valid JSON");
        assert_eq!(
            doc.get("ok").and_then(pgr_telemetry::json::Value::as_str),
            None
        );
        assert_eq!(
            doc.get("bytes")
                .and_then(pgr_telemetry::json::Value::as_u64),
            Some(7)
        );
        let err = ResponseLine::err("bad \"quote\"\n");
        let doc = pgr_telemetry::json::parse(&err).expect("valid JSON");
        assert_eq!(
            doc.get("error")
                .and_then(pgr_telemetry::json::Value::as_str),
            Some("bad \"quote\"\n")
        );
    }
}
