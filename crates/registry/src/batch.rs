//! Same-grammar request batching for the serve reactor.
//!
//! Compress requests naming the same grammar that arrive within the
//! batch window are coalesced into one engine dispatch: their segments
//! share a single parallel stride over the compressor's worker pool and
//! one derivation-cache epoch, amortizing per-call dispatch overhead the
//! same way the engine's `batch_bytes` machinery amortizes per-segment
//! overhead. The [`Batcher`] only *schedules* — it holds pending
//! requests, enforces the per-grammar admission bound, and surfaces
//! flush deadlines; the reactor decides when to flush (immediately when
//! workers sit idle, at the window deadline otherwise) and the serve
//! layer turns a flushed [`Batch`] into engine work.
//!
//! Batches are keyed by the request's raw `"grammar"` field, so two
//! spellings of the same grammar (full id vs. prefix) conservatively
//! land in different batches rather than paying a registry resolution on
//! the reactor thread. Mixed-grammar requests therefore never share a
//! batch by construction.

use pgr_telemetry::{CancelToken, TraceId};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// One request accepted off a connection, waiting to be handled.
#[derive(Debug)]
pub(crate) struct PendingRequest {
    /// Reactor token of the connection the request arrived on.
    pub conn: u64,
    /// Position in the connection's request order; responses are written
    /// back in `seq` order regardless of completion order.
    pub seq: u64,
    /// The raw NDJSON request line.
    pub line: String,
    /// When the reactor finished framing the line — the zero point for
    /// end-to-end latency and batch wait.
    pub received: Instant,
    /// The request's trace id, minted at intake so even rejections carry
    /// one.
    pub trace: TraceId,
    /// The request's cancellation token, armed at intake with the
    /// effective deadline (per-request `timeout_ms` clamped to the
    /// server ceiling). The reactor's watchdog holds a clone and can
    /// fire it after the worker misses the deadline.
    pub cancel: CancelToken,
}

/// A finished request: the response line to write back, addressed to
/// the connection and sequence slot it answers.
pub(crate) struct Done {
    /// Reactor token of the connection to write to.
    pub conn: u64,
    /// The request's `seq`; the reactor writes responses in `seq` order.
    pub seq: u64,
    /// The serialized NDJSON response (no trailing newline).
    pub response: String,
}

/// A flushed group of same-grammar compress requests, ready for one
/// engine dispatch.
pub(crate) struct Batch {
    /// The raw `"grammar"` field shared by every member.
    pub grammar: String,
    /// The members, in arrival order. Never empty.
    pub requests: Vec<PendingRequest>,
}

struct Pending {
    requests: Vec<PendingRequest>,
    /// First-member arrival; the flush deadline is `opened + window`.
    opened: Instant,
}

/// Accumulates same-grammar compress requests until the reactor flushes
/// them (see the [module docs](self)).
pub(crate) struct Batcher {
    window: Duration,
    max_pending: usize,
    pending: HashMap<String, Pending>,
}

impl Batcher {
    /// A batcher holding at most `max_pending` requests per grammar,
    /// flushing due batches after `window`.
    pub fn new(window: Duration, max_pending: usize) -> Batcher {
        Batcher {
            window,
            max_pending: max_pending.max(1),
            pending: HashMap::new(),
        }
    }

    /// Add a request to its grammar's pending batch. Fails (returning
    /// the request for an in-band `overloaded` response) when the batch
    /// is already at the admission bound.
    pub fn push(&mut self, grammar: &str, request: PendingRequest) -> Result<(), PendingRequest> {
        match self.pending.get_mut(grammar) {
            Some(p) => {
                if p.requests.len() >= self.max_pending {
                    return Err(request);
                }
                p.requests.push(request);
            }
            None => {
                let opened = request.received;
                self.pending.insert(
                    grammar.to_string(),
                    Pending {
                        requests: vec![request],
                        opened,
                    },
                );
            }
        }
        Ok(())
    }

    /// Requests currently held across all grammars.
    pub fn held(&self) -> usize {
        self.pending.values().map(|p| p.requests.len()).sum()
    }

    /// The earliest flush deadline, for the reactor's poll timeout.
    /// `None` when nothing is pending.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.pending.values().map(|p| p.opened + self.window).min()
    }

    /// Flush one grammar's batch immediately (the adaptive path: workers
    /// are idle, so waiting out the window would only add latency).
    pub fn take(&mut self, grammar: &str) -> Option<Batch> {
        self.pending
            .remove_entry(grammar)
            .map(|(grammar, p)| Batch {
                grammar,
                requests: p.requests,
            })
    }

    /// Flush every batch whose window has expired by `now` — or every
    /// batch regardless of age when `force` is set (shutdown drain).
    pub fn take_due(&mut self, now: Instant, force: bool) -> Vec<Batch> {
        let window = self.window;
        let due: Vec<String> = self
            .pending
            .iter()
            .filter(|(_, p)| force || now.duration_since(p.opened) >= window)
            .map(|(g, _)| g.clone())
            .collect();
        due.into_iter().filter_map(|g| self.take(&g)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(seq: u64, received: Instant) -> PendingRequest {
        PendingRequest {
            conn: 1,
            seq,
            line: format!("{{\"op\":\"compress\",\"seq\":{seq}}}"),
            received,
            trace: TraceId::mint(),
            cancel: CancelToken::new(),
        }
    }

    #[test]
    fn same_grammar_coalesces_and_mixed_grammars_never_share() {
        let mut b = Batcher::new(Duration::from_micros(200), 8);
        let t0 = Instant::now();
        b.push("aaaa", req(0, t0)).unwrap();
        b.push("aaaa", req(1, t0)).unwrap();
        b.push("bbbb", req(2, t0)).unwrap();
        assert_eq!(b.held(), 3);

        let mut flushed = b.take_due(t0 + Duration::from_millis(1), false);
        flushed.sort_by(|x, y| x.grammar.cmp(&y.grammar));
        assert_eq!(flushed.len(), 2, "one batch per grammar");
        assert_eq!(flushed[0].grammar, "aaaa");
        assert_eq!(flushed[0].requests.len(), 2);
        assert_eq!(
            flushed[0]
                .requests
                .iter()
                .map(|r| r.seq)
                .collect::<Vec<_>>(),
            vec![0, 1],
            "arrival order preserved"
        );
        assert_eq!(flushed[1].grammar, "bbbb");
        assert_eq!(flushed[1].requests.len(), 1);
        assert_eq!(b.held(), 0);
    }

    #[test]
    fn window_gates_flush_until_deadline_or_force() {
        let mut b = Batcher::new(Duration::from_millis(10), 8);
        let t0 = Instant::now();
        b.push("aaaa", req(0, t0)).unwrap();
        assert_eq!(b.next_deadline(), Some(t0 + Duration::from_millis(10)));

        assert!(
            b.take_due(t0 + Duration::from_millis(1), false).is_empty(),
            "window not expired yet"
        );
        assert_eq!(b.held(), 1);

        let forced = b.take_due(t0 + Duration::from_millis(1), true);
        assert_eq!(forced.len(), 1, "force flushes regardless of age");
        assert!(b.next_deadline().is_none());
    }

    #[test]
    fn per_grammar_bound_rejects_overflow_without_dropping_others() {
        let mut b = Batcher::new(Duration::from_micros(200), 2);
        let t0 = Instant::now();
        b.push("aaaa", req(0, t0)).unwrap();
        b.push("aaaa", req(1, t0)).unwrap();
        let bounced = b.push("aaaa", req(2, t0)).expect_err("bound hit");
        assert_eq!(bounced.seq, 2, "the rejected request comes back");
        // A different grammar still has room.
        b.push("bbbb", req(3, t0)).unwrap();
        assert_eq!(b.held(), 3);
        // Flushing frees the bounded grammar again.
        assert!(b.take("aaaa").is_some());
        b.push("aaaa", req(4, t0)).unwrap();
    }

    #[test]
    fn immediate_take_preserves_singleton_latency() {
        let mut b = Batcher::new(Duration::from_millis(10), 8);
        let t0 = Instant::now();
        b.push("aaaa", req(0, t0)).unwrap();
        let batch = b.take("aaaa").expect("present");
        assert_eq!(batch.requests.len(), 1);
        assert!(b.take("aaaa").is_none());
    }
}
