//! Parser tests: correctness on the initial grammar, optimality on
//! hand-built ambiguous grammars, and property tests against the
//! deterministic forest parser.

use crate::{ChartArena, NoParse, ShortestParser};
use pgr_bytecode::{encode, Instruction, Opcode};
use pgr_grammar::initial::tokenize_segment;
use pgr_grammar::{Derivation, Forest, Grammar, InitialGrammar, RuleOrigin, Symbol, Terminal};
use proptest::prelude::*;

fn paper_segment() -> Vec<Terminal> {
    let code = encode(&[
        Instruction::with_u16(Opcode::ADDRFP, 0),
        Instruction::op(Opcode::INDIRU),
        Instruction::new(Opcode::LIT1, &[0]),
        Instruction::op(Opcode::NEU),
        Instruction::with_u16(Opcode::BrTrue, 0),
        Instruction::new(Opcode::LIT1, &[0]),
        Instruction::op(Opcode::ARGU),
        Instruction::with_u16(Opcode::ADDRGP, 0),
        Instruction::op(Opcode::CALLU),
        Instruction::op(Opcode::POPU),
    ]);
    tokenize_segment(&code).unwrap()
}

#[test]
fn matches_the_unique_parse_under_the_initial_grammar() {
    let ig = InitialGrammar::build();
    let parser = ShortestParser::new(&ig.grammar);
    let tokens = paper_segment();

    let d = parser.parse(ig.nt_start, &tokens).unwrap();
    assert_eq!(d.expand(&ig.grammar, ig.nt_start).unwrap(), tokens);

    // The initial grammar parses valid postfix code uniquely, so the
    // Earley result must equal the deterministic forest parse.
    let mut forest = Forest::new();
    let root = forest.add_segment(&ig, &tokens).unwrap();
    let reference = Derivation::from_tree(&forest, root);
    assert_eq!(d, reference);
}

#[test]
fn empty_input_derives_via_epsilon() {
    let ig = InitialGrammar::build();
    let parser = ShortestParser::new(&ig.grammar);
    let d = parser.parse(ig.nt_start, &[]).unwrap();
    assert_eq!(d.0, vec![ig.start_empty]);
}

#[test]
fn rejects_non_language_input() {
    let ig = InitialGrammar::build();
    let parser = ShortestParser::new(&ig.grammar);
    // A bare binary operator with no operands.
    let tokens = vec![Terminal::Op(Opcode::ADDU)];
    assert_eq!(
        parser.parse(ig.nt_start, &tokens),
        Err(NoParse::NoDerivation { furthest: 0 })
    );
    // Valid prefix, then garbage.
    let mut tokens = paper_segment();
    tokens.push(Terminal::Op(Opcode::MULI));
    let err = parser.parse(ig.nt_start, &tokens).unwrap_err();
    assert!(
        matches!(err, NoParse::NoDerivation { furthest } if furthest >= paper_segment().len() - 1)
    );
}

#[test]
fn prefers_inlined_rules_when_cheaper() {
    let ig = InitialGrammar::build();
    let mut g = ig.grammar.clone();
    // Inline <x> ::= <x0> and <x0> ::= RETV transitively into the spine:
    // <start> ::= <start> RETV.
    let inl1 = g.add_rule(
        ig.nt_x,
        vec![Symbol::op(Opcode::RETV)],
        RuleOrigin::Inlined {
            parent: ig.x_leaf,
            slot: 0,
            child: ig.rule_for_opcode(Opcode::RETV),
        },
    );
    let spine = g.add_rule(
        ig.nt_start,
        vec![Symbol::N(ig.nt_start), Symbol::op(Opcode::RETV)],
        RuleOrigin::Inlined {
            parent: ig.start_rec,
            slot: 1,
            child: inl1,
        },
    );

    let tokens = vec![Terminal::Op(Opcode::RETV); 4];
    let parser = ShortestParser::new(&g);
    let d = parser.parse(ig.nt_start, &tokens).unwrap();
    // Optimal: 4 × (<start> ::= <start> RETV) + ε = 5 rules,
    // versus 1 + 4×3 = 13 under the original grammar.
    assert_eq!(d.len(), 5);
    assert_eq!(d.0.iter().filter(|&&r| r == spine).count(), 4);
    assert_eq!(d.expand(&g, ig.nt_start).unwrap(), tokens);
}

#[test]
fn parse_reports_earley_metrics() {
    use pgr_telemetry::{names, Recorder};

    let ig = InitialGrammar::build();
    let recorder = Recorder::new();
    let parser = ShortestParser::with_recorder(&ig.grammar, recorder.clone());
    let tokens = paper_segment();
    parser.parse(ig.nt_start, &tokens).unwrap();

    let m = recorder.snapshot();
    assert_eq!(m.counter(names::EARLEY_SEGMENTS_PARSED), 1);
    assert_eq!(m.counter(names::EARLEY_TOKENS), tokens.len() as u64);
    assert!(m.counter(names::EARLEY_ITEMS_PREDICTED) > 0);
    assert!(m.counter(names::EARLEY_ITEMS_SCANNED) >= tokens.len() as u64);
    assert!(m.counter(names::EARLEY_ITEMS_COMPLETED) > 0);
    assert_eq!(m.counter(names::EARLEY_NO_PARSE), 0);
    assert!(m.gauge(names::EARLEY_CHART_STATES_PEAK).unwrap_or(0) > 0);

    // A failing parse bumps the failure counter on the same recorder.
    parser
        .parse(ig.nt_x, &[Terminal::Op(Opcode::RETV); 2])
        .unwrap_err();
    assert_eq!(recorder.snapshot().counter(names::EARLEY_NO_PARSE), 1);
    assert_eq!(
        recorder.snapshot().counter(names::EARLEY_SEGMENTS_PARSED),
        2
    );
}

#[test]
fn burnt_literals_participate_in_shortest_parses() {
    let ig = InitialGrammar::build();
    let mut g = ig.grammar.clone();
    // A fused "<start> ::= <start> JUMPV 0 <byte>" rule, as in the
    // paper's partially-inlined-literal example (§5).
    let fused = g.add_rule(
        ig.nt_start,
        vec![
            Symbol::N(ig.nt_start),
            Symbol::op(Opcode::JUMPV),
            Symbol::byte(0),
            Symbol::N(ig.nt_byte),
        ],
        RuleOrigin::Original, // provenance irrelevant here
    );
    let parser = ShortestParser::new(&g);

    // JUMPV 0 7 -> fused rule applies: [fused, ε, <byte>::=7] = 3 rules.
    let t_match = tokenize_segment(&[Opcode::JUMPV as u8, 0, 7]).unwrap();
    let d = parser.parse(ig.nt_start, &t_match).unwrap();
    assert_eq!(d.len(), 3);
    assert!(d.0.contains(&fused));
    assert_eq!(d.expand(&g, ig.nt_start).unwrap(), t_match);

    // JUMPV 1 7 -> first literal differs; fused rule cannot apply.
    let t_miss = tokenize_segment(&[Opcode::JUMPV as u8, 1, 7]).unwrap();
    let d = parser.parse(ig.nt_start, &t_miss).unwrap();
    assert!(!d.0.contains(&fused));
    assert_eq!(d.expand(&g, ig.nt_start).unwrap(), t_miss);
}

#[test]
fn nullable_nonterminals_inside_rules() {
    // S ::= A A 'RETV' ; A ::= ε | 'POPU'... exercised with opcodes as
    // the terminal alphabet.
    let mut g = Grammar::new();
    let s = g.add_nt("S");
    let a = g.add_nt("A");
    let r_s = g.add_rule(
        s,
        vec![Symbol::N(a), Symbol::N(a), Symbol::op(Opcode::RETV)],
        RuleOrigin::Original,
    );
    let r_eps = g.add_rule(a, vec![], RuleOrigin::Original);
    let r_pop = g.add_rule(a, vec![Symbol::op(Opcode::POPU)], RuleOrigin::Original);
    g.set_start(s);

    let parser = ShortestParser::new(&g);
    // "RETV": both A's empty.
    let d = parser.parse(s, &[Terminal::Op(Opcode::RETV)]).unwrap();
    assert_eq!(d.0, vec![r_s, r_eps, r_eps]);
    // "POPU RETV": one A consumes, one is empty (either order parses; the
    // derivation must expand correctly and cost 3 rules).
    let d = parser
        .parse(s, &[Terminal::Op(Opcode::POPU), Terminal::Op(Opcode::RETV)])
        .unwrap();
    assert_eq!(d.len(), 3);
    assert!(d.0.contains(&r_pop));
    // "POPU POPU RETV": both consume.
    let tokens = [
        Terminal::Op(Opcode::POPU),
        Terminal::Op(Opcode::POPU),
        Terminal::Op(Opcode::RETV),
    ];
    let d = parser.parse(s, &tokens).unwrap();
    assert_eq!(d.0, vec![r_s, r_pop, r_pop]);
    assert_eq!(d.expand(&g, s).unwrap(), tokens);
}

#[test]
fn deep_spines_do_not_overflow_the_stack() {
    let ig = InitialGrammar::build();
    let parser = ShortestParser::new(&ig.grammar);
    let tokens = vec![Terminal::Op(Opcode::RETV); 2_000];
    let d = parser.parse(ig.nt_start, &tokens).unwrap();
    assert_eq!(d.len(), 1 + 3 * 2_000);
    assert_eq!(d.expand(&ig.grammar, ig.nt_start).unwrap(), tokens);
}

#[test]
fn item_keys_are_distinct_near_the_packing_limits() {
    use crate::{item_key, MAX_RULE_SLOTS};
    use pgr_grammar::RuleId;
    use std::collections::HashSet;

    // Probe the corners of every lane: a collision there would silently
    // merge unrelated chart items.
    let rules = [
        0u32,
        1,
        (MAX_RULE_SLOTS - 2) as u32,
        (MAX_RULE_SLOTS - 1) as u32,
    ];
    let dots = [0u16, 1, 254, 255];
    let origins = [0u32, 1, u32::MAX - 1, u32::MAX];
    let mut seen = HashSet::new();
    for &r in &rules {
        for &d in &dots {
            for &o in &origins {
                assert!(
                    seen.insert(item_key(RuleId(r), d, o)),
                    "key collision at rule={r} dot={d} origin={o}"
                );
            }
        }
    }
}

#[test]
#[should_panic(expected = "rule slots")]
fn oversized_grammars_fail_loudly_at_parser_construction() {
    crate::assert_key_capacity(crate::MAX_RULE_SLOTS + 1);
}

#[test]
fn grammars_at_the_rule_slot_limit_are_accepted() {
    // Exactly at the limit the guard must stay silent: the largest rule
    // id is MAX_RULE_SLOTS - 1, which fits the 23-bit lane.
    crate::assert_key_capacity(crate::MAX_RULE_SLOTS);
}

#[test]
fn furthest_reports_scan_frontier_under_prediction_pruning() {
    // S ::= POPU B ; B ::= RETV. After scanning POPU the parser sits at
    // position 1; the lookahead-filtered prediction of B sees a token B
    // cannot start with and creates no items at all past position 1.
    // `furthest` must still say the scan frontier (1), not 0.
    let mut g = Grammar::new();
    let s = g.add_nt("S");
    let b = g.add_nt("B");
    g.add_rule(
        s,
        vec![Symbol::op(Opcode::POPU), Symbol::N(b)],
        RuleOrigin::Original,
    );
    g.add_rule(b, vec![Symbol::op(Opcode::RETV)], RuleOrigin::Original);
    g.set_start(s);
    let parser = ShortestParser::new(&g);

    let err = parser
        .parse(s, &[Terminal::Op(Opcode::POPU), Terminal::Op(Opcode::MULI)])
        .unwrap_err();
    assert_eq!(err, NoParse::NoDerivation { furthest: 1 });

    // Same stuck point with more input after it: the dead column ends
    // the parse but must not change the reported frontier.
    let err = parser
        .parse(
            s,
            &[
                Terminal::Op(Opcode::POPU),
                Terminal::Op(Opcode::MULI),
                Terminal::Op(Opcode::RETV),
            ],
        )
        .unwrap_err();
    assert_eq!(err, NoParse::NoDerivation { furthest: 1 });

    // Rejected on the very first token: nothing was ever scanned.
    let err = parser.parse(s, &[Terminal::Op(Opcode::MULI)]).unwrap_err();
    assert_eq!(err, NoParse::NoDerivation { furthest: 0 });
}

#[test]
fn reused_arena_reproduces_fresh_parses_exactly() {
    let ig = InitialGrammar::build();
    let parser = ShortestParser::new(&ig.grammar);
    let mut arena = ChartArena::new();

    // Mix of lengths so later parses reuse columns dirtied by earlier,
    // longer ones.
    let segments: Vec<Vec<Terminal>> = vec![
        paper_segment(),
        vec![],
        vec![Terminal::Op(Opcode::RETV); 64],
        tokenize_segment(&[Opcode::LIT1 as u8, 9, Opcode::POPU as u8]).unwrap(),
        paper_segment(),
    ];
    for tokens in &segments {
        let fresh = parser.parse(ig.nt_start, tokens).unwrap();
        let reused = parser.parse_into(&mut arena, ig.nt_start, tokens).unwrap();
        assert_eq!(fresh, reused);
    }
    // Failures must match too (same furthest position).
    let bad = vec![Terminal::Op(Opcode::ADDU)];
    assert_eq!(
        parser.parse(ig.nt_start, &bad).unwrap_err(),
        parser
            .parse_into(&mut arena, ig.nt_start, &bad)
            .unwrap_err()
    );
    assert!(arena.columns_peak() >= 65);
}

#[test]
fn arena_survives_grammar_size_changes() {
    // An arena warmed on a large grammar must stay correct on a smaller
    // one (fewer non-terminals) and vice versa: `prepare` re-sizes the
    // per-non-terminal tables of every reused column.
    let ig = InitialGrammar::build();
    let big = ShortestParser::new(&ig.grammar);

    let mut small_g = Grammar::new();
    let s = small_g.add_nt("S");
    let r = small_g.add_rule(s, vec![Symbol::op(Opcode::RETV)], RuleOrigin::Original);
    small_g.set_start(s);
    let small = ShortestParser::new(&small_g);

    let mut arena = ChartArena::new();
    let tokens = paper_segment();
    let expect_big = big.parse(ig.nt_start, &tokens).unwrap();

    assert_eq!(
        big.parse_into(&mut arena, ig.nt_start, &tokens).unwrap(),
        expect_big
    );
    let d = small
        .parse_into(&mut arena, s, &[Terminal::Op(Opcode::RETV)])
        .unwrap();
    assert_eq!(d.0, vec![r]);
    assert_eq!(
        big.parse_into(&mut arena, ig.nt_start, &tokens).unwrap(),
        expect_big
    );
}

#[test]
fn arena_reuse_and_table_metrics_are_reported() {
    use pgr_telemetry::{names, Recorder};

    let ig = InitialGrammar::build();
    let recorder = Recorder::new();
    let parser = ShortestParser::with_recorder(&ig.grammar, recorder.clone());
    assert_eq!(
        recorder.snapshot().gauge(names::EARLEY_TABLE_BYTES),
        Some(parser.table_bytes() as u64)
    );

    let tokens = paper_segment();
    let mut arena = ChartArena::new();
    parser.parse_into(&mut arena, ig.nt_start, &tokens).unwrap();
    // First use of a fresh arena is not a reuse, but the counter key must
    // exist so metric consumers always see it.
    let m = recorder.snapshot();
    assert_eq!(m.counter(names::EARLEY_ARENA_REUSE), 0);
    assert!(m.counters().contains_key(names::EARLEY_ARENA_REUSE));
    assert_eq!(
        m.gauge(names::EARLEY_CHART_COLUMNS_PEAK),
        Some(tokens.len() as u64 + 1)
    );

    parser.parse_into(&mut arena, ig.nt_start, &tokens).unwrap();
    parser.parse_into(&mut arena, ig.nt_start, &[]).unwrap();
    let m = recorder.snapshot();
    assert_eq!(m.counter(names::EARLEY_ARENA_REUSE), 2);
    // The columns gauge tracks the arena's lifetime high-water mark, so
    // the short follow-up parses don't lower it.
    assert_eq!(
        m.gauge(names::EARLEY_CHART_COLUMNS_PEAK),
        Some(tokens.len() as u64 + 1)
    );
}

/// Generate a random well-formed statement as instruction tokens.
fn arb_statement() -> impl Strategy<Value = Vec<Terminal>> {
    // A value expression of bounded depth, then a statement operator.
    fn value(depth: u32) -> BoxedStrategy<Vec<Terminal>> {
        let leaf = prop_oneof![
            any::<u8>().prop_map(|b| vec![Terminal::Op(Opcode::LIT1), Terminal::Byte(b)]),
            (any::<u8>(), any::<u8>()).prop_map(|(a, b)| vec![
                Terminal::Op(Opcode::ADDRLP),
                Terminal::Byte(a),
                Terminal::Byte(b)
            ]),
        ];
        if depth == 0 {
            leaf.boxed()
        } else {
            prop_oneof![
                3 => leaf,
                1 => value(depth - 1).prop_map(|mut v| {
                    v.push(Terminal::Op(Opcode::INDIRU));
                    v
                }),
                1 => (value(depth - 1), value(depth - 1)).prop_map(|(mut a, b)| {
                    a.extend(b);
                    a.push(Terminal::Op(Opcode::ADDU));
                    a
                }),
            ]
            .boxed()
        }
    }
    prop_oneof![
        value(2).prop_map(|mut v| {
            v.push(Terminal::Op(Opcode::POPU));
            v
        }),
        (value(2), value(2)).prop_map(|(mut a, b)| {
            a.extend(b);
            a.push(Terminal::Op(Opcode::ASGNU));
            a
        }),
        Just(vec![Terminal::Op(Opcode::RETV)]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_segments_parse_to_the_reference_derivation(
        stmts in prop::collection::vec(arb_statement(), 0..8)
    ) {
        let tokens: Vec<Terminal> = stmts.into_iter().flatten().collect();
        let ig = InitialGrammar::build();
        let parser = ShortestParser::new(&ig.grammar);
        let d = parser.parse(ig.nt_start, &tokens).unwrap();
        prop_assert_eq!(d.expand(&ig.grammar, ig.nt_start).unwrap(), tokens.clone());

        let mut forest = Forest::new();
        let root = forest.add_segment(&ig, &tokens).unwrap();
        let reference = Derivation::from_tree(&forest, root);
        prop_assert_eq!(d.len(), reference.len());
    }

    #[test]
    fn parse_cost_never_exceeds_reference_under_expanded_grammars(
        stmts in prop::collection::vec(arb_statement(), 1..6),
        seed in any::<u64>(),
    ) {
        let tokens: Vec<Terminal> = stmts.into_iter().flatten().collect();
        let ig = InitialGrammar::build();

        // Randomly inline a few rule pairs to make the grammar ambiguous.
        let mut g = ig.grammar.clone();
        let mut rng = seed;
        for _ in 0..6 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            let parents: Vec<_> = (0..g.rule_slots() as u32)
                .map(pgr_grammar::RuleId)
                .filter(|&r| g.rule(r).alive && g.rule(r).arity() > 0)
                .collect();
            let p = parents[(rng >> 33) as usize % parents.len()];
            let slot = (rng as usize >> 3) % g.rule(p).arity();
            let nt = g.rule(p).nt_at_slot(slot);
            let kids = g.rules_of(nt).to_vec();
            let c = kids[(rng as usize >> 13) % kids.len()];
            if g.rule(p).rhs.len() + g.rule(c).rhs.len() <= 40
                && g.rules_of(g.rule(p).lhs).len() < 250
            {
                let rhs = g.inlined_rhs(p, slot, c);
                g.add_rule(g.rule(p).lhs, rhs, RuleOrigin::Inlined { parent: p, slot: slot as u32, child: c });
            }
        }

        let parser = ShortestParser::new(&g);
        let d = parser.parse(ig.nt_start, &tokens).unwrap();
        prop_assert_eq!(d.expand(&g, ig.nt_start).unwrap(), tokens.clone());

        let mut forest = Forest::new();
        let root = forest.add_segment(&ig, &tokens).unwrap();
        let reference = Derivation::from_tree(&forest, root);
        // Inlining only ever shortens derivations.
        prop_assert!(d.len() <= reference.len());
    }
}

#[test]
fn budgets_abandon_cleanly_and_never_change_successful_parses() {
    use crate::EarleyBudget;

    let ig = InitialGrammar::build();
    let parser = ShortestParser::new(&ig.grammar);
    let tokens = paper_segment();
    let mut arena = ChartArena::new();

    let unbudgeted = parser.parse(ig.nt_start, &tokens).unwrap();

    // A generous budget changes nothing — same derivation, byte for byte.
    let generous = EarleyBudget::default()
        .max_items(1 << 20)
        .max_columns(1 << 20);
    assert!(generous != EarleyBudget::UNLIMITED);
    assert_eq!(
        parser
            .parse_into_budgeted(&mut arena, ig.nt_start, &tokens, &generous)
            .unwrap(),
        unbudgeted
    );

    // A tiny item budget abandons the parse with the column count intact.
    let tiny = EarleyBudget::default().max_items(2);
    let err = parser
        .parse_into_budgeted(&mut arena, ig.nt_start, &tokens, &tiny)
        .unwrap_err();
    match err {
        NoParse::BudgetExceeded { items, columns } => {
            assert!(items > 2);
            assert_eq!(columns, tokens.len() + 1);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }

    // The column cap trips before any chart work happens.
    let narrow = EarleyBudget::default().max_columns(tokens.len());
    assert_eq!(
        parser.parse_into_budgeted(&mut arena, ig.nt_start, &tokens, &narrow),
        Err(NoParse::BudgetExceeded {
            items: 0,
            columns: tokens.len() + 1,
        })
    );

    // An abandoned parse leaves the arena fully reusable.
    assert_eq!(
        parser.parse_into(&mut arena, ig.nt_start, &tokens).unwrap(),
        unbudgeted
    );
}
