//! FIRST-filtered prediction tables.
//!
//! After expansion a non-terminal can hold up to 256 rules (§4.1);
//! predicting all of them at every chart position would dominate the
//! parse. Instead we precompute, per non-terminal and per possible next
//! terminal, the rules whose right-hand side can begin with that terminal
//! (including through nullable prefixes), plus — always — the rules that
//! derive the empty string.
//!
//! The table is flattened into two dense arrays: one `u32` offset per
//! `(non-terminal, lookahead)` bucket and one shared candidate pool, so a
//! prediction in the parse hot loop is two array indexings and a slice —
//! no nested-`Vec` pointer chasing. The extra bucket per non-terminal
//! (index [`TERMINAL_SPACE`]) holds the end-of-input candidates: rules
//! that derive ε, the only ones worth predicting when no input remains.

use pgr_grammar::symbol::TERMINAL_SPACE;
use pgr_grammar::{Grammar, Nt, RuleId, Symbol, Terminal};

/// Buckets per non-terminal: one per terminal, plus end-of-input.
const STRIDE: usize = TERMINAL_SPACE + 1;

/// Per-(non-terminal, lookahead) prediction candidates, flattened.
#[derive(Debug, Clone)]
pub struct PredictTable {
    /// `candidates[offsets[nt * STRIDE + b] .. offsets[nt * STRIDE + b + 1]]`
    /// is the candidate list for non-terminal `nt` and lookahead bucket
    /// `b` (a terminal index, or `TERMINAL_SPACE` for end of input).
    offsets: Vec<u32>,
    candidates: Vec<RuleId>,
}

impl PredictTable {
    /// Precompute the table for a grammar snapshot.
    pub fn build(grammar: &Grammar) -> PredictTable {
        let firsts = grammar.first_sets();
        let nts = grammar.nt_count();
        let mut buckets: Vec<Vec<RuleId>> = vec![Vec::new(); nts * STRIDE];
        let mut nullable_rules: Vec<Vec<RuleId>> = vec![Vec::new(); nts];

        for nt in 0..nts {
            let nt = Nt(nt as u16);
            for &rule_id in grammar.rules_of(nt) {
                let rule = grammar.rule(rule_id);
                let mut rule_nullable = true;
                let mut first = vec![false; TERMINAL_SPACE];
                for sym in &rule.rhs {
                    match *sym {
                        Symbol::T(t) => {
                            first[t.index()] = true;
                            rule_nullable = false;
                            break;
                        }
                        Symbol::N(b) => {
                            for (i, f) in first.iter_mut().enumerate() {
                                if !*f && firsts.can_start(b, Terminal::from_index(i)) {
                                    *f = true;
                                }
                            }
                            if !firsts.nullable(b) {
                                rule_nullable = false;
                                break;
                            }
                        }
                    }
                }
                for (i, f) in first.iter().enumerate() {
                    if *f {
                        buckets[nt.index() * STRIDE + i].push(rule_id);
                    }
                }
                if rule_nullable {
                    nullable_rules[nt.index()].push(rule_id);
                }
            }
        }

        // Nullable rules must be predicted regardless of lookahead: they
        // can complete over an empty span in front of any next token, and
        // they are the only candidates at end of input (the extra
        // `TERMINAL_SPACE` bucket). Appending after the FIRST-filtered
        // candidates keeps prediction order identical to lookahead-free
        // prediction of the same rules.
        for nt in 0..nts {
            for b in 0..STRIDE {
                let bucket = &mut buckets[nt * STRIDE + b];
                for &r in &nullable_rules[nt] {
                    if !bucket.contains(&r) {
                        bucket.push(r);
                    }
                }
            }
        }

        let mut offsets = Vec::with_capacity(buckets.len() + 1);
        let mut candidates = Vec::new();
        offsets.push(0);
        for bucket in &buckets {
            candidates.extend_from_slice(bucket);
            offsets.push(candidates.len() as u32);
        }
        PredictTable {
            offsets,
            candidates,
        }
    }

    /// Candidate rules for expanding `nt` when the next input terminal is
    /// `next` (`None` at end of input).
    #[inline]
    pub fn candidates(&self, nt: Nt, next: Option<Terminal>) -> &[RuleId] {
        let bucket = next.map_or(TERMINAL_SPACE, Terminal::index);
        self.candidates_by_bucket(nt, bucket)
    }

    /// Candidate rules by raw lookahead bucket: a dense
    /// [`Terminal::index`], or [`TERMINAL_SPACE`] for end of input. The
    /// hot loop keeps the bucket as an integer to avoid re-deriving it
    /// per prediction.
    #[inline]
    pub fn candidates_by_bucket(&self, nt: Nt, bucket: usize) -> &[RuleId] {
        let i = nt.index() * STRIDE + bucket;
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.candidates[lo..hi]
    }

    /// Approximate resident size in bytes (for the `earley.table.bytes`
    /// gauge).
    pub fn table_bytes(&self) -> usize {
        self.offsets.len() * size_of::<u32>() + self.candidates.len() * size_of::<RuleId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgr_bytecode::Opcode;
    use pgr_grammar::InitialGrammar;

    #[test]
    fn byte_rules_predict_exactly_one_candidate() {
        let ig = InitialGrammar::build();
        let pt = PredictTable::build(&ig.grammar);
        let c = pt.candidates(ig.nt_byte, Some(Terminal::Byte(17)));
        assert_eq!(c, &[ig.byte_rules[17]]);
        assert!(pt
            .candidates(ig.nt_byte, Some(Terminal::Op(Opcode::ADDU)))
            .is_empty());
        assert!(pt.candidates(ig.nt_byte, None).is_empty());
    }

    #[test]
    fn start_predictions_include_spine_and_epsilon() {
        let ig = InitialGrammar::build();
        let pt = PredictTable::build(&ig.grammar);
        // A statement can start with LIT1 -> both start rules apply
        // (the spine via FIRST, ε because it is nullable).
        let c = pt.candidates(ig.nt_start, Some(Terminal::Op(Opcode::LIT1)));
        assert!(c.contains(&ig.start_rec));
        assert!(c.contains(&ig.start_empty));
        // At end of input only ε survives.
        assert_eq!(pt.candidates(ig.nt_start, None), &[ig.start_empty]);
    }

    #[test]
    fn v_rules_filtered_by_leading_leaf() {
        let ig = InitialGrammar::build();
        let pt = PredictTable::build(&ig.grammar);
        // Expressions start with v0 opcodes only.
        let c = pt.candidates(ig.nt_v, Some(Terminal::Op(Opcode::ADDRLP)));
        assert_eq!(c.len(), 3, "all three <v> rules can start with a leaf");
        assert!(pt
            .candidates(ig.nt_v, Some(Terminal::Op(Opcode::ADDU)))
            .is_empty());
    }

    #[test]
    fn bucket_lookup_matches_typed_lookup() {
        let ig = InitialGrammar::build();
        let pt = PredictTable::build(&ig.grammar);
        for nt in 0..ig.grammar.nt_count() {
            let nt = Nt(nt as u16);
            for i in 0..TERMINAL_SPACE {
                assert_eq!(
                    pt.candidates(nt, Some(Terminal::from_index(i))),
                    pt.candidates_by_bucket(nt, i)
                );
            }
            assert_eq!(
                pt.candidates(nt, None),
                pt.candidates_by_bucket(nt, TERMINAL_SPACE)
            );
        }
        assert!(pt.table_bytes() > 0);
    }
}
