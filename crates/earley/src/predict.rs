//! FIRST-filtered prediction tables.
//!
//! After expansion a non-terminal can hold up to 256 rules (§4.1);
//! predicting all of them at every chart position would dominate the
//! parse. Instead we precompute, per non-terminal and per possible next
//! terminal, the rules whose right-hand side can begin with that terminal
//! (including through nullable prefixes), plus — always — the rules that
//! derive the empty string.

use pgr_grammar::symbol::TERMINAL_SPACE;
use pgr_grammar::{Grammar, Nt, RuleId, Symbol, Terminal};

/// Per-(non-terminal, lookahead) prediction candidates.
#[derive(Debug, Clone)]
pub struct PredictTable {
    /// `table[nt][terminal_index]`: rules of `nt` that can start with the
    /// terminal, with nullable rules appended.
    table: Vec<Vec<Vec<RuleId>>>,
    /// Rules of `nt` that derive ε (the only candidates when no input
    /// remains).
    nullable_rules: Vec<Vec<RuleId>>,
}

impl PredictTable {
    /// Precompute the table for a grammar snapshot.
    pub fn build(grammar: &Grammar) -> PredictTable {
        let firsts = grammar.first_sets();
        let nts = grammar.nt_count();
        let mut table: Vec<Vec<Vec<RuleId>>> =
            (0..nts).map(|_| vec![Vec::new(); TERMINAL_SPACE]).collect();
        let mut nullable_rules: Vec<Vec<RuleId>> = vec![Vec::new(); nts];

        for nt in 0..nts {
            let nt = Nt(nt as u16);
            for &rule_id in grammar.rules_of(nt) {
                let rule = grammar.rule(rule_id);
                let mut rule_nullable = true;
                let mut first = vec![false; TERMINAL_SPACE];
                for sym in &rule.rhs {
                    match *sym {
                        Symbol::T(t) => {
                            first[t.index()] = true;
                            rule_nullable = false;
                            break;
                        }
                        Symbol::N(b) => {
                            for (i, f) in first.iter_mut().enumerate() {
                                if !*f && firsts.can_start(b, Terminal::from_index(i)) {
                                    *f = true;
                                }
                            }
                            if !firsts.nullable(b) {
                                rule_nullable = false;
                                break;
                            }
                        }
                    }
                }
                for (i, f) in first.iter().enumerate() {
                    if *f {
                        table[nt.index()][i].push(rule_id);
                    }
                }
                if rule_nullable {
                    nullable_rules[nt.index()].push(rule_id);
                }
            }
        }

        // Nullable rules must be predicted regardless of lookahead: they
        // can complete over an empty span in front of any next token.
        for nt in 0..nts {
            for per_terminal in table[nt].iter_mut() {
                for &r in &nullable_rules[nt] {
                    if !per_terminal.contains(&r) {
                        per_terminal.push(r);
                    }
                }
            }
        }

        PredictTable {
            table,
            nullable_rules,
        }
    }

    /// Candidate rules for expanding `nt` when the next input terminal is
    /// `next` (`None` at end of input).
    pub fn candidates(&self, nt: Nt, next: Option<Terminal>) -> &[RuleId] {
        match next {
            Some(t) => &self.table[nt.index()][t.index()],
            None => &self.nullable_rules[nt.index()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgr_bytecode::Opcode;
    use pgr_grammar::InitialGrammar;

    #[test]
    fn byte_rules_predict_exactly_one_candidate() {
        let ig = InitialGrammar::build();
        let pt = PredictTable::build(&ig.grammar);
        let c = pt.candidates(ig.nt_byte, Some(Terminal::Byte(17)));
        assert_eq!(c, &[ig.byte_rules[17]]);
        assert!(pt
            .candidates(ig.nt_byte, Some(Terminal::Op(Opcode::ADDU)))
            .is_empty());
        assert!(pt.candidates(ig.nt_byte, None).is_empty());
    }

    #[test]
    fn start_predictions_include_spine_and_epsilon() {
        let ig = InitialGrammar::build();
        let pt = PredictTable::build(&ig.grammar);
        // A statement can start with LIT1 -> both start rules apply
        // (the spine via FIRST, ε because it is nullable).
        let c = pt.candidates(ig.nt_start, Some(Terminal::Op(Opcode::LIT1)));
        assert!(c.contains(&ig.start_rec));
        assert!(c.contains(&ig.start_empty));
        // At end of input only ε survives.
        assert_eq!(pt.candidates(ig.nt_start, None), &[ig.start_empty]);
    }

    #[test]
    fn v_rules_filtered_by_leading_leaf() {
        let ig = InitialGrammar::build();
        let pt = PredictTable::build(&ig.grammar);
        // Expressions start with v0 opcodes only.
        let c = pt.candidates(ig.nt_v, Some(Terminal::Op(Opcode::ADDRLP)));
        assert_eq!(c.len(), 3, "all three <v> rules can start with a leaf");
        assert!(pt
            .candidates(ig.nt_v, Some(Terminal::Op(Opcode::ADDU)))
            .is_empty());
    }
}
