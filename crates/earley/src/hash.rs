//! A small open-addressing `u64 → u32` map.
//!
//! The parser's hot loops do millions of item lookups; `std`'s default
//! SipHash is measurably slower than a multiplicative hash here, and the
//! keys are already well-mixed small integers. Keys must never equal
//! `u64::MAX` (the empty sentinel), which the packed item keys guarantee.

const EMPTY: u64 = u64::MAX;

/// Open-addressing hash map from `u64` keys to `u32` values.
#[derive(Debug, Clone, Default)]
pub struct U64Map {
    keys: Vec<u64>,
    vals: Vec<u32>,
    len: usize,
}

#[inline]
fn hash(key: u64) -> u64 {
    // Fibonacci hashing with an extra xor-shift mix.
    let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^ (h >> 29)
}

impl U64Map {
    /// Create an empty map.
    pub fn new() -> U64Map {
        U64Map::default()
    }

    /// Number of entries.
    #[allow(dead_code)] // exercised by tests
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    #[allow(dead_code)] // exercised by tests
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove every entry, keeping the allocated table. Re-filling a
    /// cleared map never rehashes until it outgrows its previous
    /// capacity, which is what makes chart arenas reusable.
    pub fn clear(&mut self) {
        if self.len > 0 {
            self.keys.fill(EMPTY);
            self.len = 0;
        }
    }

    /// Look up a key.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u32> {
        debug_assert_ne!(key, EMPTY);
        if self.keys.is_empty() {
            return None;
        }
        let mask = self.keys.len() - 1;
        let mut i = (hash(key) as usize) & mask;
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.vals[i]);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Insert a key/value pair. Overwrites any existing value.
    #[inline]
    pub fn insert(&mut self, key: u64, val: u32) {
        debug_assert_ne!(key, EMPTY);
        if self.keys.is_empty() || self.len * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = (hash(key) as usize) & mask;
        loop {
            let k = self.keys[i];
            if k == EMPTY {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return;
            }
            if k == key {
                self.vals[i] = val;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.keys.len() * 2).max(16);
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_vals = std::mem::take(&mut self.vals);
        self.vals = vec![0; new_cap];
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY {
                self.insert(k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_overwrite() {
        let mut m = U64Map::new();
        assert!(m.is_empty());
        assert_eq!(m.get(42), None);
        m.insert(42, 1);
        m.insert(43, 2);
        assert_eq!(m.get(42), Some(1));
        assert_eq!(m.get(43), Some(2));
        m.insert(42, 9);
        assert_eq!(m.get(42), Some(9));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn survives_growth() {
        let mut m = U64Map::new();
        for i in 0..10_000u64 {
            m.insert(i * 7 + 1, i as u32);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(i * 7 + 1), Some(i as u32));
        }
        assert_eq!(m.get(5), None);
    }

    #[test]
    fn clear_keeps_capacity_and_empties() {
        let mut m = U64Map::new();
        for i in 0..1000u64 {
            m.insert(i + 1, i as u32);
        }
        let cap = m.keys.len();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(1), None);
        assert_eq!(m.keys.len(), cap, "clear must not release the table");
        for i in 0..1000u64 {
            m.insert(i + 1, (i + 7) as u32);
        }
        assert_eq!(m.keys.len(), cap, "refill within capacity must not grow");
        assert_eq!(m.get(10), Some(16));
    }

    #[test]
    fn colliding_keys_probe_linearly() {
        // Keys that collide modulo small table sizes.
        let mut m = U64Map::new();
        for i in 0..64u64 {
            m.insert(i << 32, i as u32);
        }
        for i in 0..64u64 {
            assert_eq!(m.get(i << 32), Some(i as u32));
        }
    }
}
