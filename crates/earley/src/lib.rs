//! # pgr-earley
//!
//! A cost-weighted Earley parser that finds *shortest derivations*.
//!
//! "We use Earley's parsing algorithm, slightly modified, to obtain a
//! shortest derivation for a given sequence" (Evans & Fraser, PLDI 2001,
//! §4.1). The expanded grammar is deliberately ambiguous — the original
//! rules stay alongside the inlined ones — and the compressor is "free to
//! choose any derivation …; since our goal is compression, we want a
//! minimum length derivation", where length is the number of rules used
//! (one output byte per rule).
//!
//! The modification is a min-plus (tropical) cost semiring over classic
//! Earley items: every rule application costs 1, completions keep the
//! cheapest derivation per `(non-terminal, origin, end)` span, and cost
//! improvements re-propagate through a per-position worklist until
//! fixpoint, which handles the grammar's left recursion and the nullable
//! start symbol. Prediction is filtered by one-token lookahead using a
//! flattened per-`(non-terminal, next-terminal)` index over per-rule
//! FIRST sets, which keeps the chart small for grammars with hundreds of
//! rules per non-terminal.
//!
//! The hot path never touches the mutable [`Grammar`] representation:
//! construction snapshots it into a dense
//! [`RuleTable`](pgr_grammar::RuleTable) (`u32` right-hand sides, packed
//! symbols), and all per-parse scratch lives in a reusable [`ChartArena`]
//! that is cleared — not reallocated — between segments. Batch callers
//! hold one arena per worker and call [`ShortestParser::parse_into`];
//! [`ShortestParser::parse`] is the convenience form that pays a fresh
//! allocation per call.
//!
//! The main entry point is [`ShortestParser`]:
//!
//! ```
//! use pgr_grammar::{InitialGrammar, initial::tokenize_segment};
//! use pgr_earley::{ChartArena, ShortestParser};
//! use pgr_bytecode::Opcode;
//!
//! let ig = InitialGrammar::build();
//! let parser = ShortestParser::new(&ig.grammar);
//! let tokens = tokenize_segment(&[Opcode::RETV as u8]).unwrap();
//! let d = parser.parse(ig.nt_start, &tokens).unwrap();
//! // <start> ::= <start> <x>, <start> ::= ε, <x> ::= <x0>, <x0> ::= RETV
//! assert_eq!(d.len(), 4);
//! assert_eq!(d.expand(&ig.grammar, ig.nt_start).unwrap(), tokens);
//!
//! // The reusable form: one arena, many segments, no per-parse setup.
//! let mut arena = ChartArena::new();
//! assert_eq!(parser.parse_into(&mut arena, ig.nt_start, &tokens).unwrap(), d);
//! assert_eq!(parser.parse_into(&mut arena, ig.nt_start, &tokens).unwrap(), d);
//! ```

#![warn(missing_docs)]

mod hash;
mod predict;

#[cfg(test)]
mod tests;

pub use predict::PredictTable;

use hash::U64Map;
use pgr_grammar::symbol::TERMINAL_SPACE;
use pgr_grammar::{Derivation, Grammar, Nt, RuleId, RuleTable, Terminal};
use pgr_telemetry::{names, CancelToken, Metrics, Recorder};
use std::fmt;

/// An error from the shortest-derivation parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoParse {
    /// The input is not in the grammar's language.
    NoDerivation {
        /// The furthest token position the parser scanned to before
        /// failing: tokens `0..furthest` are a viable prefix, and the
        /// input is not in the grammar's language at or near token
        /// `furthest`. Lookahead pruning may reject a continuation at
        /// prediction time without ever creating items beyond this
        /// position; the reported position is the furthest *scanned* one
        /// either way.
        furthest: usize,
    },
    /// The parse was abandoned because it hit an [`EarleyBudget`] limit
    /// before reaching a verdict. This is a resource decision, not a
    /// language one: the input may or may not be derivable.
    BudgetExceeded {
        /// Chart items created when the budget tripped.
        items: usize,
        /// Chart columns the parse required (`tokens + 1`).
        columns: usize,
    },
    /// The parse was abandoned because its [`CancelToken`] fired —
    /// the request's deadline passed or the owner cancelled it. Like
    /// [`NoParse::BudgetExceeded`], this is a resource decision, not a
    /// language one.
    Cancelled {
        /// Milliseconds between the token's creation (request arrival)
        /// and the cancellation check that fired.
        elapsed_ms: u64,
    },
}

impl fmt::Display for NoParse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoParse::NoDerivation { furthest } => {
                write!(f, "input has no derivation (stuck near token {furthest})")
            }
            NoParse::BudgetExceeded { items, columns } => write!(
                f,
                "parse abandoned: Earley budget exceeded ({items} chart items, {columns} columns)"
            ),
            NoParse::Cancelled { elapsed_ms } => write!(
                f,
                "parse abandoned: request cancelled after {elapsed_ms} ms"
            ),
        }
    }
}

impl std::error::Error for NoParse {}

/// A work budget for one parse: caps on chart growth that turn a
/// pathological segment into a clean [`NoParse::BudgetExceeded`] instead
/// of an unbounded chart. The expanded grammar is deliberately ambiguous,
/// so grammar-fitting has bad worst cases; a budget makes the compressor
/// total over them (callers degrade to the verbatim-escape fallback).
///
/// The default budget is unlimited; limited budgets cost one integer
/// compare per worklist pop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EarleyBudget {
    /// Maximum chart items (states across all columns) a parse may
    /// create.
    pub max_items: usize,
    /// Maximum chart columns (`segment tokens + 1`) a parse may use;
    /// checked up front, so over-long segments fail before any chart
    /// work.
    pub max_columns: usize,
}

impl Default for EarleyBudget {
    fn default() -> EarleyBudget {
        EarleyBudget::UNLIMITED
    }
}

impl EarleyBudget {
    /// No limits (the default): the parser behaves exactly as if no
    /// budget existed.
    pub const UNLIMITED: EarleyBudget = EarleyBudget {
        max_items: usize::MAX,
        max_columns: usize::MAX,
    };

    /// Whether this budget can never trip.
    pub fn is_unlimited(&self) -> bool {
        *self == EarleyBudget::UNLIMITED
    }

    /// Cap chart items (builder-style).
    pub fn max_items(mut self, items: usize) -> EarleyBudget {
        self.max_items = items;
        self
    }

    /// Cap chart columns (builder-style).
    pub fn max_columns(mut self, columns: usize) -> EarleyBudget {
        self.max_columns = columns;
        self
    }
}

// ---- item-key packing --------------------------------------------------
//
// Chart items are deduplicated by a packed 64-bit key: origin in the top
// 32 bits, rule id in the middle 23, dot position in the low 9. The
// packing is only collision-free while every field fits its lane, so the
// limits are enforced loudly: at compile time for the dot (the grammar
// caps right-hand sides at `MAX_RHS_LEN`), and at parser construction for
// the rule count (`assert_key_capacity`).

/// Bits reserved for the dot position in an item key.
const DOT_BITS: u32 = 9;
/// Bits reserved for the rule id in an item key.
const RULE_BITS: u32 = 23;
/// Exclusive upper bound on dot positions an item key can hold.
const MAX_DOT: usize = 1 << DOT_BITS;
/// Maximum rule slots (live or tombstoned) an item key can address.
pub const MAX_RULE_SLOTS: usize = 1 << RULE_BITS;

// A dot ranges over 0..=rhs.len(), so the grammar's RHS cap must leave
// one spare value below the lane size.
const _: () = assert!(pgr_grammar::grammar::MAX_RHS_LEN < MAX_DOT);
// The two packed fields must exactly fill the low half of the key.
const _: () = assert!(DOT_BITS + RULE_BITS == 32);

/// Panic (loudly, with the offending count) if a grammar has too many
/// rule slots for the 23-bit rule lane of the packed item keys.
fn assert_key_capacity(rule_slots: usize) {
    assert!(
        rule_slots <= MAX_RULE_SLOTS,
        "grammar has {rule_slots} rule slots but chart item keys pack rule \
         ids into {RULE_BITS} bits (max {MAX_RULE_SLOTS}); a parser over \
         this grammar would silently collide chart keys"
    );
}

fn item_key(rule: RuleId, dot: u16, origin: u32) -> u64 {
    debug_assert!((rule.0 as usize) < MAX_RULE_SLOTS, "rule id overflows key");
    debug_assert!((dot as usize) < MAX_DOT, "dot overflows key");
    (u64::from(origin) << 32) | (u64::from(rule.0) << DOT_BITS) | u64::from(dot)
}

fn completed_key(nt: Nt, origin: u32) -> u64 {
    (u64::from(origin) << 16) | u64::from(nt.0)
}

/// How an item instance was reached (for derivation reconstruction).
#[derive(Debug, Clone, Copy)]
enum Back {
    /// Fresh prediction (dot at 0).
    Predicted,
    /// Advanced over a terminal from the same item at the previous
    /// position.
    Scan { prev: u32 },
    /// Advanced over a completed non-terminal: `prev` (in
    /// `chart[prev_pos]`) is the item before the non-terminal, and the
    /// child is the best completion of `(nt, child_origin)` ending at
    /// this item's position.
    Complete {
        prev_pos: u32,
        prev: u32,
        nt: Nt,
        child_origin: u32,
    },
}

#[derive(Debug, Clone, Copy)]
struct State {
    rule: RuleId,
    dot: u16,
    origin: u32,
    cost: u32,
    back: Back,
}

/// One chart column. Lives inside a [`ChartArena`]; `clear` empties every
/// container while keeping its allocation.
struct Column {
    states: Vec<State>,
    index: U64Map,
    /// Items whose next symbol is a non-terminal, grouped by it.
    waiting: Vec<Vec<u32>>,
    /// Parallel to `states`: already registered in a waiting list (a
    /// state's next symbol is fixed, so one flag replaces the linear
    /// `waiting[nt].contains` scan on every reprocessing).
    in_waiting: Vec<bool>,
    /// `(nt, origin)` → slot into `completed_info`.
    completed: U64Map,
    /// `(best cost, completed-state index)` per slot.
    completed_info: Vec<(u32, u32)>,
    predicted: Vec<bool>,
}

impl Column {
    fn new(nt_count: usize) -> Column {
        Column {
            states: Vec::new(),
            index: U64Map::new(),
            waiting: vec![Vec::new(); nt_count],
            in_waiting: Vec::new(),
            completed: U64Map::new(),
            completed_info: Vec::new(),
            predicted: vec![false; nt_count],
        }
    }

    /// Empty the column for reuse, keeping allocations, and make its
    /// per-non-terminal tables match `nt_count` (the arena may be reused
    /// across grammars).
    fn clear(&mut self, nt_count: usize) {
        self.states.clear();
        self.index.clear();
        for w in &mut self.waiting {
            w.clear();
        }
        self.waiting.resize_with(nt_count, Vec::new);
        self.in_waiting.clear();
        self.completed.clear();
        self.completed_info.clear();
        self.predicted.clear();
        self.predicted.resize(nt_count, false);
    }
}

/// Reusable per-parse scratch: chart columns, their index maps, waiting
/// lists, and the propagation worklist.
///
/// A fresh arena allocates nothing; the first parse grows it to the
/// segment's size and subsequent parses reuse (and only clear) that
/// memory, so a long-lived arena reaches a steady state with zero
/// allocation per parse. Arenas are cheap to create but expensive to
/// warm — hold one per worker thread and feed it to
/// [`ShortestParser::parse_into`].
///
/// An arena is not tied to a parser or grammar: reusing it across
/// grammars is correct (per-grammar tables are re-sized on the fly), just
/// less effective.
#[derive(Default)]
pub struct ChartArena {
    columns: Vec<Column>,
    work: Vec<u32>,
    /// Columns used by the most recent parse (the only dirty ones).
    touched: usize,
    /// Whether any parse has used this arena (drives `earley.arena.reuse`).
    warm: bool,
    /// High-water mark of columns ever used.
    columns_peak: usize,
}

impl ChartArena {
    /// Create an empty arena. No memory is allocated until the first
    /// parse.
    pub fn new() -> ChartArena {
        ChartArena::default()
    }

    /// High-water mark of chart columns (longest segment + 1) this arena
    /// has served.
    pub fn columns_peak(&self) -> usize {
        self.columns_peak
    }

    /// Clear the dirty prefix and guarantee `cols` usable columns sized
    /// for `nt_count` non-terminals.
    fn prepare(&mut self, cols: usize, nt_count: usize) {
        for col in self.columns.iter_mut().take(self.touched) {
            col.clear(nt_count);
        }
        // Columns beyond the dirty prefix are already empty but may carry
        // per-non-terminal tables from a differently-sized grammar.
        for col in self.columns.iter_mut().take(cols).skip(self.touched) {
            if col.waiting.len() != nt_count {
                col.clear(nt_count);
            }
        }
        while self.columns.len() < cols {
            self.columns.push(Column::new(nt_count));
        }
        self.touched = cols;
        self.columns_peak = self.columns_peak.max(cols);
        self.work.clear();
    }
}

/// Per-parse item tallies, accumulated in locals and flushed to the
/// recorder once per parse call.
#[derive(Default)]
struct ParseCounts {
    predicted: u64,
    scanned: u64,
    completed: u64,
    /// Distinct chart items created (inserts, not cost improvements);
    /// this is what [`EarleyBudget::max_items`] meters.
    items: usize,
}

/// A shortest-derivation Earley parser for a fixed grammar snapshot.
///
/// Construction snapshots the grammar into flat tables (dense right-hand
/// sides plus the FIRST-filtered prediction index), so build it once and
/// reuse it across many segments. The parser borrows the grammar;
/// rebuild it after the grammar changes.
pub struct ShortestParser<'g> {
    grammar: &'g Grammar,
    tables: RuleTable,
    predict: PredictTable,
    recorder: Recorder,
}

impl<'g> ShortestParser<'g> {
    /// Build a parser (and its flattened tables) for `grammar`.
    ///
    /// # Panics
    ///
    /// Panics if the grammar has more rule slots than the packed chart
    /// keys can address ([`MAX_RULE_SLOTS`]).
    pub fn new(grammar: &'g Grammar) -> ShortestParser<'g> {
        ShortestParser::with_recorder(grammar, Recorder::disabled())
    }

    /// Build a parser that reports `earley.*` metrics (items predicted /
    /// scanned / completed, chart high-water marks, arena reuse, table
    /// footprint) into `recorder`.
    ///
    /// # Panics
    ///
    /// See [`ShortestParser::new`].
    pub fn with_recorder(grammar: &'g Grammar, recorder: Recorder) -> ShortestParser<'g> {
        assert_key_capacity(grammar.rule_slots());
        let parser = ShortestParser {
            grammar,
            tables: RuleTable::build(grammar),
            predict: PredictTable::build(grammar),
            recorder,
        };
        if parser.recorder.is_enabled() {
            parser
                .recorder
                .gauge_max(names::EARLEY_TABLE_BYTES, parser.table_bytes() as u64);
        }
        parser
    }

    /// The underlying grammar.
    pub fn grammar(&self) -> &'g Grammar {
        self.grammar
    }

    /// Resident size of the precomputed tables (dense rules plus the
    /// prediction index) in bytes.
    pub fn table_bytes(&self) -> usize {
        self.tables.table_bytes() + self.predict.table_bytes()
    }

    /// Whether `tokens` is derivable from `start` at all.
    pub fn recognizes(&self, start: Nt, tokens: &[Terminal]) -> bool {
        self.parse(start, tokens).is_ok()
    }

    /// Find a minimum-length leftmost derivation of `tokens` from
    /// `start`, allocating fresh scratch for this call.
    ///
    /// Batch callers should hold a [`ChartArena`] and use
    /// [`ShortestParser::parse_into`] instead; the results are identical.
    ///
    /// # Errors
    ///
    /// Returns [`NoParse`] if the tokens are not in the language of
    /// `start`.
    pub fn parse(&self, start: Nt, tokens: &[Terminal]) -> Result<Derivation, NoParse> {
        self.parse_into(&mut ChartArena::new(), start, tokens)
    }

    /// Find a minimum-length leftmost derivation of `tokens` from
    /// `start`, using (and warming) `arena` for all per-parse state.
    ///
    /// The derivation returned is byte-identical to what a fresh
    /// [`ShortestParser::parse`] call produces, for any prior arena use —
    /// the proptests pin this.
    ///
    /// # Errors
    ///
    /// Returns [`NoParse`] if the tokens are not in the language of
    /// `start`.
    pub fn parse_into(
        &self,
        arena: &mut ChartArena,
        start: Nt,
        tokens: &[Terminal],
    ) -> Result<Derivation, NoParse> {
        self.parse_into_budgeted(arena, start, tokens, &EarleyBudget::UNLIMITED)
    }

    /// Like [`ShortestParser::parse_into`], but abandon the parse with
    /// [`NoParse::BudgetExceeded`] if chart growth crosses `budget`.
    ///
    /// A successful parse under any budget is byte-identical to the
    /// unbudgeted one: the budget can only convert a (possibly very
    /// expensive) verdict into an early abandonment, never change which
    /// derivation is found.
    ///
    /// # Errors
    ///
    /// Returns [`NoParse::NoDerivation`] if the tokens are not in the
    /// language of `start`, or [`NoParse::BudgetExceeded`] if the chart
    /// outgrew `budget` first.
    pub fn parse_into_budgeted(
        &self,
        arena: &mut ChartArena,
        start: Nt,
        tokens: &[Terminal],
        budget: &EarleyBudget,
    ) -> Result<Derivation, NoParse> {
        self.parse_into_cancellable(arena, start, tokens, budget, None)
    }

    /// Like [`ShortestParser::parse_into_budgeted`], but additionally
    /// abandon the parse with [`NoParse::Cancelled`] if `cancel` fires.
    ///
    /// The token is polled once per chart column (segment tokens are
    /// capped at a few hundred, so the poll granularity is microseconds
    /// of parser work, while an unarmed token costs one relaxed load).
    /// A parse that completes is byte-identical to the uncancelled one.
    ///
    /// # Errors
    ///
    /// [`NoParse::NoDerivation`], [`NoParse::BudgetExceeded`], or
    /// [`NoParse::Cancelled`] when `cancel` fired first.
    pub fn parse_into_cancellable(
        &self,
        arena: &mut ChartArena,
        start: Nt,
        tokens: &[Terminal],
        budget: &EarleyBudget,
        cancel: Option<&CancelToken>,
    ) -> Result<Derivation, NoParse> {
        let n = tokens.len();
        if n + 1 > budget.max_columns {
            // Over-long segments fail before any chart work (or arena
            // growth) happens; the telemetry contract below still holds.
            let outcome = Err(NoParse::BudgetExceeded {
                items: 0,
                columns: n + 1,
            });
            self.flush_parse_metrics(n, false, &ParseCounts::default(), 0, 0, &outcome);
            return outcome;
        }

        let reused = arena.warm;
        arena.warm = true;
        arena.prepare(n + 1, self.grammar.nt_count());

        let mut counts = ParseCounts::default();
        let (outcome, chart_peak) = {
            let ChartArena { columns, work, .. } = &mut *arena;
            let chart = &mut columns[..=n];
            let outcome = self.run(chart, work, start, tokens, budget, cancel, &mut counts);
            let peak = chart.iter().map(|c| c.states.len()).max().unwrap_or(0);
            (outcome, peak)
        };

        self.flush_parse_metrics(
            n,
            reused,
            &counts,
            chart_peak,
            arena.columns_peak(),
            &outcome,
        );
        outcome
    }

    fn flush_parse_metrics(
        &self,
        tokens: usize,
        reused: bool,
        counts: &ParseCounts,
        chart_peak: usize,
        columns_peak: usize,
        outcome: &Result<Derivation, NoParse>,
    ) {
        if !self.recorder.is_enabled() {
            return;
        }
        let mut batch = Metrics::new();
        batch.add(names::EARLEY_SEGMENTS_PARSED, 1);
        batch.add(names::EARLEY_TOKENS, tokens as u64);
        batch.add(names::EARLEY_ITEMS_PREDICTED, counts.predicted);
        batch.add(names::EARLEY_ITEMS_SCANNED, counts.scanned);
        batch.add(names::EARLEY_ITEMS_COMPLETED, counts.completed);
        batch.add(names::EARLEY_ARENA_REUSE, u64::from(reused));
        if outcome.is_err() {
            batch.add(names::EARLEY_NO_PARSE, 1);
        }
        // Pinned by the metrics schema: emitted (possibly as zero) on
        // every parse so schema validation sees the key even in runs
        // where no budget ever trips.
        batch.add(
            names::EARLEY_BUDGET_EXCEEDED,
            u64::from(matches!(outcome, Err(NoParse::BudgetExceeded { .. }))),
        );
        if matches!(outcome, Err(NoParse::Cancelled { .. })) {
            batch.add(names::EARLEY_CANCELLED, 1);
        }
        batch.gauge_max(names::EARLEY_CHART_STATES_PEAK, chart_peak as u64);
        batch.gauge_max(names::EARLEY_CHART_COLUMNS_PEAK, columns_peak as u64);
        self.recorder.record(batch);
    }

    /// The chart fixpoint proper. `chart` has `tokens.len() + 1` cleared
    /// columns; `work` is the (empty) shared worklist.
    #[allow(clippy::too_many_arguments)]
    fn run(
        &self,
        chart: &mut [Column],
        work: &mut Vec<u32>,
        start: Nt,
        tokens: &[Terminal],
        budget: &EarleyBudget,
        cancel: Option<&CancelToken>,
        counts: &mut ParseCounts,
    ) -> Result<Derivation, NoParse> {
        let n = tokens.len();
        let tables = &self.tables;
        let mut furthest = 0usize;

        self.predict_nt(
            &mut chart[0],
            0,
            start,
            lookahead_bucket(tokens.first().copied()),
            work,
            counts,
        );

        for k in 0..=n {
            // Cancellation is polled at column boundaries: frequent
            // enough that a fired deadline stops the parse within one
            // column's work, cheap enough (one relaxed load when the
            // token is unarmed) that the hot per-item loop never pays.
            if let Some(token) = cancel {
                if token.is_cancelled() {
                    return Err(NoParse::Cancelled {
                        elapsed_ms: token.elapsed_ms(),
                    });
                }
            }
            // Items scanned in from k-1 seed the worklist (for k = 0 the
            // predictions above already queued themselves).
            if k > 0 {
                if chart[k].states.is_empty() {
                    // No item scanned to position k; no later column can
                    // ever gain an item either, so the parse is dead.
                    break;
                }
                work.extend(0..chart[k].states.len() as u32);
            }
            let next_bucket = lookahead_bucket(tokens.get(k).copied());
            // Terminal indices are < 2^31; the end-of-input bucket never
            // equals one, so a plain equality test decides every scan.
            let next_t = next_bucket as u32;
            while let Some(si) = work.pop() {
                // The budget check sits on the worklist pop — the one
                // place every chart item (and every cost improvement)
                // flows through — so a limited budget costs exactly one
                // compare per unit of parser work.
                if counts.items > budget.max_items {
                    return Err(NoParse::BudgetExceeded {
                        items: counts.items,
                        columns: n + 1,
                    });
                }
                let s = chart[k].states[si as usize];
                match tables.sym_at(s.rule, s.dot as usize) {
                    Some(sym) => match sym.nt() {
                        None => {
                            if sym.terminal_index() == Some(next_t) {
                                counts.scanned += 1;
                                furthest = furthest.max(k + 1);
                                Self::add_state(
                                    &mut chart[k + 1],
                                    State {
                                        rule: s.rule,
                                        dot: s.dot + 1,
                                        origin: s.origin,
                                        cost: s.cost,
                                        back: Back::Scan { prev: si },
                                    },
                                    &mut counts.items,
                                );
                            }
                        }
                        Some(b) => {
                            if !chart[k].predicted[b.index()] {
                                self.predict_nt(
                                    &mut chart[k],
                                    k as u32,
                                    b,
                                    next_bucket,
                                    work,
                                    counts,
                                );
                            }
                            if !chart[k].in_waiting[si as usize] {
                                chart[k].in_waiting[si as usize] = true;
                                chart[k].waiting[b.index()].push(si);
                            }
                            // An empty-span completion of `b` at `k` may
                            // already exist (nullable non-terminals).
                            if let Some(slot) = chart[k].completed.get(completed_key(b, k as u32)) {
                                let (ccost, _) = chart[k].completed_info[slot as usize];
                                let st = State {
                                    rule: s.rule,
                                    dot: s.dot + 1,
                                    origin: s.origin,
                                    cost: s.cost + ccost,
                                    back: Back::Complete {
                                        prev_pos: k as u32,
                                        prev: si,
                                        nt: b,
                                        child_origin: k as u32,
                                    },
                                };
                                if let Some(idx) =
                                    Self::add_state(&mut chart[k], st, &mut counts.items)
                                {
                                    work.push(idx);
                                }
                            }
                        }
                    },
                    None => {
                        // Completion: `lhs` spans (origin, k) with cost
                        // s.cost.
                        counts.completed += 1;
                        let b = tables.lhs(s.rule);
                        let ckey = completed_key(b, s.origin);
                        let improved = match chart[k].completed.get(ckey) {
                            Some(slot) => {
                                let entry = &mut chart[k].completed_info[slot as usize];
                                if s.cost < entry.0 {
                                    *entry = (s.cost, si);
                                    true
                                } else {
                                    false
                                }
                            }
                            None => {
                                let slot = chart[k].completed_info.len() as u32;
                                chart[k].completed_info.push((s.cost, si));
                                chart[k].completed.insert(ckey, slot);
                                true
                            }
                        };
                        if improved {
                            // Advance every item waiting on `b` at the
                            // origin column. The list cannot grow while
                            // this loop runs (registration only happens
                            // when an item is popped from the worklist),
                            // so indexed iteration replaces the snapshot
                            // clone the old implementation paid per
                            // improvement.
                            let origin = s.origin as usize;
                            let mut i = 0;
                            while let Some(&wi) = chart[origin].waiting[b.index()].get(i) {
                                i += 1;
                                let w = chart[origin].states[wi as usize];
                                let st = State {
                                    rule: w.rule,
                                    dot: w.dot + 1,
                                    origin: w.origin,
                                    cost: w.cost + s.cost,
                                    back: Back::Complete {
                                        prev_pos: origin as u32,
                                        prev: wi,
                                        nt: b,
                                        child_origin: s.origin,
                                    },
                                };
                                if let Some(idx) =
                                    Self::add_state(&mut chart[k], st, &mut counts.items)
                                {
                                    work.push(idx);
                                }
                            }
                        }
                    }
                }
            }
        }

        let goal = completed_key(start, 0);
        match chart[n].completed.get(goal) {
            Some(slot) => {
                let (_, root_idx) = chart[n].completed_info[slot as usize];
                Ok(self.reconstruct(chart, n, root_idx))
            }
            None => Err(NoParse::NoDerivation { furthest }),
        }
    }

    fn predict_nt(
        &self,
        col: &mut Column,
        position: u32,
        nt: Nt,
        bucket: usize,
        work: &mut Vec<u32>,
        counts: &mut ParseCounts,
    ) {
        col.predicted[nt.index()] = true;
        for &rule in self.predict.candidates_by_bucket(nt, bucket) {
            counts.predicted += 1;
            let st = State {
                rule,
                dot: 0,
                origin: position,
                cost: 1,
                back: Back::Predicted,
            };
            if let Some(idx) = Self::add_state(col, st, &mut counts.items) {
                work.push(idx);
            }
        }
    }

    /// Insert or improve an item; returns its index when the column
    /// changed (new item, or cheaper cost) so the caller can requeue it.
    /// Fresh inserts bump `items`, the quantity metered by
    /// [`EarleyBudget::max_items`].
    fn add_state(col: &mut Column, st: State, items: &mut usize) -> Option<u32> {
        let k = item_key(st.rule, st.dot, st.origin);
        match col.index.get(k) {
            Some(idx) => {
                let existing = &mut col.states[idx as usize];
                if st.cost < existing.cost {
                    *existing = st;
                    Some(idx)
                } else {
                    None
                }
            }
            None => {
                let idx = col.states.len() as u32;
                col.states.push(st);
                col.in_waiting.push(false);
                col.index.insert(k, idx);
                *items += 1;
                Some(idx)
            }
        }
    }

    /// Rebuild the leftmost derivation (preorder rule sequence) from
    /// backpointers, iteratively.
    fn reconstruct(&self, chart: &[Column], end: usize, root: u32) -> Derivation {
        let mut out: Vec<RuleId> = Vec::new();
        let mut stack: Vec<(usize, u32)> = vec![(end, root)];
        while let Some((pos, idx)) = stack.pop() {
            let s = chart[pos].states[idx as usize];
            out.push(s.rule);
            // Walk the back chain, collecting completed children
            // rightmost-first; pushing them in that order leaves the
            // leftmost child on top of the stack, giving preorder.
            let mut cur = (pos, idx);
            loop {
                let st = chart[cur.0].states[cur.1 as usize];
                match st.back {
                    Back::Predicted => break,
                    Back::Scan { prev } => cur = (cur.0 - 1, prev),
                    Back::Complete {
                        prev_pos,
                        prev,
                        nt,
                        child_origin,
                    } => {
                        let slot = chart[cur.0]
                            .completed
                            .get(completed_key(nt, child_origin))
                            .expect("completed child recorded in chart");
                        let (_, child_idx) = chart[cur.0].completed_info[slot as usize];
                        stack.push((cur.0, child_idx));
                        cur = (prev_pos as usize, prev);
                    }
                }
            }
        }
        Derivation(out)
    }
}

/// The dense lookahead bucket for a next token: its terminal index, or
/// [`TERMINAL_SPACE`] at end of input.
#[inline]
fn lookahead_bucket(next: Option<Terminal>) -> usize {
    next.map_or(TERMINAL_SPACE, Terminal::index)
}
