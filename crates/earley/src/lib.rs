//! # pgr-earley
//!
//! A cost-weighted Earley parser that finds *shortest derivations*.
//!
//! "We use Earley's parsing algorithm, slightly modified, to obtain a
//! shortest derivation for a given sequence" (Evans & Fraser, PLDI 2001,
//! §4.1). The expanded grammar is deliberately ambiguous — the original
//! rules stay alongside the inlined ones — and the compressor is "free to
//! choose any derivation …; since our goal is compression, we want a
//! minimum length derivation", where length is the number of rules used
//! (one output byte per rule).
//!
//! The modification is a min-plus (tropical) cost semiring over classic
//! Earley items: every rule application costs 1, completions keep the
//! cheapest derivation per `(non-terminal, origin, end)` span, and cost
//! improvements re-propagate through a per-position worklist until
//! fixpoint, which handles the grammar's left recursion and the nullable
//! start symbol. Prediction is filtered by one-token lookahead using
//! per-rule FIRST sets, which keeps the chart small for grammars with
//! hundreds of rules per non-terminal.
//!
//! The main entry point is [`ShortestParser`]:
//!
//! ```
//! use pgr_grammar::{InitialGrammar, initial::tokenize_segment};
//! use pgr_earley::ShortestParser;
//! use pgr_bytecode::Opcode;
//!
//! let ig = InitialGrammar::build();
//! let parser = ShortestParser::new(&ig.grammar);
//! let tokens = tokenize_segment(&[Opcode::RETV as u8]).unwrap();
//! let d = parser.parse(ig.nt_start, &tokens).unwrap();
//! // <start> ::= <start> <x>, <start> ::= ε, <x> ::= <x0>, <x0> ::= RETV
//! assert_eq!(d.len(), 4);
//! assert_eq!(d.expand(&ig.grammar, ig.nt_start).unwrap(), tokens);
//! ```

#![warn(missing_docs)]

mod hash;
mod predict;

#[cfg(test)]
mod tests;

pub use predict::PredictTable;

use hash::U64Map;
use pgr_grammar::{Derivation, Grammar, Nt, RuleId, Symbol, Terminal};
use pgr_telemetry::{names, Metrics, Recorder};
use std::fmt;

/// An error from the shortest-derivation parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoParse {
    /// The furthest token position the parser reached before failing; the
    /// input is not in the grammar's language at or near this position.
    pub furthest: usize,
}

impl fmt::Display for NoParse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "input has no derivation (stuck near token {})",
            self.furthest
        )
    }
}

impl std::error::Error for NoParse {}

/// How an item instance was reached (for derivation reconstruction).
#[derive(Debug, Clone, Copy)]
enum Back {
    /// Fresh prediction (dot at 0).
    Predicted,
    /// Advanced over a terminal from the same item at the previous
    /// position.
    Scan { prev: u32 },
    /// Advanced over a completed non-terminal: `prev` (in
    /// `chart[prev_pos]`) is the item before the non-terminal, and the
    /// child is the best completion of `(nt, child_origin)` ending at
    /// this item's position.
    Complete {
        prev_pos: u32,
        prev: u32,
        nt: Nt,
        child_origin: u32,
    },
}

#[derive(Debug, Clone, Copy)]
struct State {
    rule: RuleId,
    dot: u16,
    origin: u32,
    cost: u32,
    back: Back,
}

fn item_key(rule: RuleId, dot: u16, origin: u32) -> u64 {
    (u64::from(origin) << 32) | (u64::from(rule.0) << 9) | u64::from(dot)
}

fn completed_key(nt: Nt, origin: u32) -> u64 {
    (u64::from(origin) << 16) | u64::from(nt.0)
}

/// One chart column.
struct Column {
    states: Vec<State>,
    index: U64Map,
    /// Items whose next symbol is a non-terminal, grouped by it.
    waiting: Vec<Vec<u32>>,
    /// `(nt, origin)` → slot into `completed_info`.
    completed: U64Map,
    /// `(best cost, completed-state index)` per slot.
    completed_info: Vec<(u32, u32)>,
    predicted: Vec<bool>,
}

impl Column {
    fn new(nt_count: usize) -> Column {
        Column {
            states: Vec::new(),
            index: U64Map::new(),
            waiting: vec![Vec::new(); nt_count],
            completed: U64Map::new(),
            completed_info: Vec::new(),
            predicted: vec![false; nt_count],
        }
    }
}

/// Per-parse item tallies, accumulated in locals and flushed to the
/// recorder once per [`ShortestParser::parse`] call.
#[derive(Default)]
struct ParseCounts {
    predicted: u64,
    scanned: u64,
    completed: u64,
}

/// A shortest-derivation Earley parser for a fixed grammar snapshot.
///
/// Construction precomputes FIRST-filtered prediction tables, so build it
/// once and reuse it across many segments. The parser borrows the
/// grammar; rebuild it after the grammar changes.
pub struct ShortestParser<'g> {
    grammar: &'g Grammar,
    predict: PredictTable,
    recorder: Recorder,
}

impl<'g> ShortestParser<'g> {
    /// Build a parser (and its prediction tables) for `grammar`.
    pub fn new(grammar: &'g Grammar) -> ShortestParser<'g> {
        ShortestParser::with_recorder(grammar, Recorder::disabled())
    }

    /// Build a parser that reports `earley.*` metrics (items predicted /
    /// scanned / completed, chart high-water mark) into `recorder`.
    pub fn with_recorder(grammar: &'g Grammar, recorder: Recorder) -> ShortestParser<'g> {
        ShortestParser {
            grammar,
            predict: PredictTable::build(grammar),
            recorder,
        }
    }

    /// The underlying grammar.
    pub fn grammar(&self) -> &'g Grammar {
        self.grammar
    }

    /// Whether `tokens` is derivable from `start` at all.
    pub fn recognizes(&self, start: Nt, tokens: &[Terminal]) -> bool {
        self.parse(start, tokens).is_ok()
    }

    /// Find a minimum-length leftmost derivation of `tokens` from
    /// `start`.
    ///
    /// # Errors
    ///
    /// Returns [`NoParse`] if the tokens are not in the language of
    /// `start`.
    pub fn parse(&self, start: Nt, tokens: &[Terminal]) -> Result<Derivation, NoParse> {
        let n = tokens.len();
        let nt_count = self.grammar.nt_count();
        let mut chart: Vec<Column> = (0..=n).map(|_| Column::new(nt_count)).collect();
        let mut work: Vec<u32> = Vec::new();
        let mut furthest = 0usize;
        let mut counts = ParseCounts::default();

        self.predict_nt(
            &mut chart[0],
            0,
            start,
            tokens.first().copied(),
            &mut work,
            &mut counts,
        );

        for k in 0..=n {
            // Items scanned in from k-1 seed the worklist (for k = 0 the
            // predictions above already queued themselves).
            if k > 0 {
                work.extend(0..chart[k].states.len() as u32);
            }
            if !work.is_empty() {
                furthest = k;
            }
            let next_tok = tokens.get(k).copied();
            while let Some(si) = work.pop() {
                let s = chart[k].states[si as usize];
                let rule = self.grammar.rule(s.rule);
                if (s.dot as usize) < rule.rhs.len() {
                    match rule.rhs[s.dot as usize] {
                        Symbol::T(t) => {
                            if next_tok == Some(t) {
                                counts.scanned += 1;
                                let mut sink = Vec::new();
                                Self::add_state(
                                    &mut chart[k + 1],
                                    State {
                                        rule: s.rule,
                                        dot: s.dot + 1,
                                        origin: s.origin,
                                        cost: s.cost,
                                        back: Back::Scan { prev: si },
                                    },
                                    &mut sink,
                                );
                            }
                        }
                        Symbol::N(b) => {
                            if !chart[k].predicted[b.index()] {
                                self.predict_nt(
                                    &mut chart[k],
                                    k as u32,
                                    b,
                                    next_tok,
                                    &mut work,
                                    &mut counts,
                                );
                            }
                            if !chart[k].waiting[b.index()].contains(&si) {
                                chart[k].waiting[b.index()].push(si);
                            }
                            // An empty-span completion of `b` at `k` may
                            // already exist (nullable non-terminals).
                            if let Some(slot) = chart[k].completed.get(completed_key(b, k as u32)) {
                                let (ccost, _) = chart[k].completed_info[slot as usize];
                                let st = State {
                                    rule: s.rule,
                                    dot: s.dot + 1,
                                    origin: s.origin,
                                    cost: s.cost + ccost,
                                    back: Back::Complete {
                                        prev_pos: k as u32,
                                        prev: si,
                                        nt: b,
                                        child_origin: k as u32,
                                    },
                                };
                                Self::add_state(&mut chart[k], st, &mut work);
                            }
                        }
                    }
                } else {
                    // Completion: `lhs` spans (origin, k) with cost s.cost.
                    counts.completed += 1;
                    let b = rule.lhs;
                    let ckey = completed_key(b, s.origin);
                    let improved = match chart[k].completed.get(ckey) {
                        Some(slot) => {
                            let entry = &mut chart[k].completed_info[slot as usize];
                            if s.cost < entry.0 {
                                *entry = (s.cost, si);
                                true
                            } else {
                                false
                            }
                        }
                        None => {
                            let slot = chart[k].completed_info.len() as u32;
                            chart[k].completed_info.push((s.cost, si));
                            chart[k].completed.insert(ckey, slot);
                            true
                        }
                    };
                    if improved {
                        let origin = s.origin as usize;
                        let waiters: Vec<u32> = chart[origin].waiting[b.index()].clone();
                        for wi in waiters {
                            let w = chart[origin].states[wi as usize];
                            let st = State {
                                rule: w.rule,
                                dot: w.dot + 1,
                                origin: w.origin,
                                cost: w.cost + s.cost,
                                back: Back::Complete {
                                    prev_pos: origin as u32,
                                    prev: wi,
                                    nt: b,
                                    child_origin: s.origin,
                                },
                            };
                            Self::add_state(&mut chart[k], st, &mut work);
                        }
                    }
                }
            }
        }

        let goal = completed_key(start, 0);
        let outcome = match chart[n].completed.get(goal) {
            Some(slot) => {
                let (_, root_idx) = chart[n].completed_info[slot as usize];
                Ok(self.reconstruct(&chart, n, root_idx))
            }
            None => Err(NoParse { furthest }),
        };

        if self.recorder.is_enabled() {
            let peak = chart.iter().map(|c| c.states.len()).max().unwrap_or(0);
            let mut batch = Metrics::new();
            batch.add(names::EARLEY_SEGMENTS_PARSED, 1);
            batch.add(names::EARLEY_TOKENS, n as u64);
            batch.add(names::EARLEY_ITEMS_PREDICTED, counts.predicted);
            batch.add(names::EARLEY_ITEMS_SCANNED, counts.scanned);
            batch.add(names::EARLEY_ITEMS_COMPLETED, counts.completed);
            if outcome.is_err() {
                batch.add(names::EARLEY_NO_PARSE, 1);
            }
            batch.gauge_max(names::EARLEY_CHART_STATES_PEAK, peak as u64);
            self.recorder.record(batch);
        }

        outcome
    }

    fn predict_nt(
        &self,
        col: &mut Column,
        position: u32,
        nt: Nt,
        next: Option<Terminal>,
        work: &mut Vec<u32>,
        counts: &mut ParseCounts,
    ) {
        col.predicted[nt.index()] = true;
        for &rule in self.predict.candidates(nt, next) {
            counts.predicted += 1;
            let st = State {
                rule,
                dot: 0,
                origin: position,
                cost: 1,
                back: Back::Predicted,
            };
            Self::add_state(col, st, work);
        }
    }

    fn add_state(col: &mut Column, st: State, work: &mut Vec<u32>) {
        let k = item_key(st.rule, st.dot, st.origin);
        match col.index.get(k) {
            Some(idx) => {
                let existing = &mut col.states[idx as usize];
                if st.cost < existing.cost {
                    *existing = st;
                    work.push(idx);
                }
            }
            None => {
                let idx = col.states.len() as u32;
                col.states.push(st);
                col.index.insert(k, idx);
                work.push(idx);
            }
        }
    }

    /// Rebuild the leftmost derivation (preorder rule sequence) from
    /// backpointers, iteratively.
    fn reconstruct(&self, chart: &[Column], end: usize, root: u32) -> Derivation {
        let mut out: Vec<RuleId> = Vec::new();
        let mut stack: Vec<(usize, u32)> = vec![(end, root)];
        while let Some((pos, idx)) = stack.pop() {
            let s = chart[pos].states[idx as usize];
            out.push(s.rule);
            // Walk the back chain, collecting completed children
            // rightmost-first; pushing them in that order leaves the
            // leftmost child on top of the stack, giving preorder.
            let mut cur = (pos, idx);
            loop {
                let st = chart[cur.0].states[cur.1 as usize];
                match st.back {
                    Back::Predicted => break,
                    Back::Scan { prev } => cur = (cur.0 - 1, prev),
                    Back::Complete {
                        prev_pos,
                        prev,
                        nt,
                        child_origin,
                    } => {
                        let slot = chart[cur.0]
                            .completed
                            .get(completed_key(nt, child_origin))
                            .expect("completed child recorded in chart");
                        let (_, child_idx) = chart[cur.0].completed_info[slot as usize];
                        stack.push((cur.0, child_idx));
                        cur = (prev_pos as usize, prev);
                    }
                }
            }
        }
        Derivation(out)
    }
}
