//! Stress and adversarial tests for the shortest-derivation parser:
//! heavy ambiguity, deep nesting, and grammars engineered to tempt a
//! non-optimal search into the wrong derivation.

use pgr_bytecode::Opcode;
use pgr_earley::ShortestParser;
use pgr_grammar::{Grammar, InitialGrammar, RuleOrigin, Symbol, Terminal};

/// A grammar with exponentially many parses: S -> S S | 'POPU' | ε-free
/// chains. The parser must stay polynomial and return the minimum.
#[test]
fn exponentially_ambiguous_grammar_stays_fast() {
    let mut g = Grammar::new();
    let s = g.add_nt("S");
    g.set_start(s);
    let pair = g.add_rule(s, vec![s.into(), s.into()], RuleOrigin::Original);
    let leaf = g.add_rule(s, vec![Symbol::op(Opcode::POPU)], RuleOrigin::Original);
    // A fused rule covering three leaves at once.
    let triple = g.add_rule(
        s,
        vec![
            Symbol::op(Opcode::POPU),
            Symbol::op(Opcode::POPU),
            Symbol::op(Opcode::POPU),
        ],
        RuleOrigin::Original,
    );
    let parser = ShortestParser::new(&g);
    let tokens = vec![Terminal::Op(Opcode::POPU); 60];
    let d = parser.parse(s, &tokens).unwrap();
    // Optimal: 20 triples + 19 pair-nodes = 39 rules (any bracketing of
    // 20 leaves via binary pairs costs 19 internal nodes).
    assert_eq!(
        d.0.iter().filter(|&&r| r == triple).count(),
        20,
        "must use the fused rule throughout"
    );
    assert_eq!(d.0.iter().filter(|&&r| r == pair).count(), 19);
    assert_eq!(d.0.iter().filter(|&&r| r == leaf).count(), 0);
    assert_eq!(d.len(), 39);
    assert_eq!(d.expand(&g, s).unwrap(), tokens);
}

/// The greedy-looking choice is a trap: a long rule matches a prefix but
/// forces an expensive continuation; the optimal derivation uses the
/// short rules. Min-cost search must not take the bait.
#[test]
fn local_greed_is_globally_suboptimal() {
    use Opcode::{ARGU, POPU, RETV};
    let mut g = Grammar::new();
    let s = g.add_nt("S");
    g.set_start(s);
    // Trap: covers POPU POPU cheaply...
    let trap = g.add_rule(
        s,
        vec![Symbol::op(POPU), Symbol::op(POPU)],
        RuleOrigin::Original,
    );
    // ...but then ARGU RETV must be covered by two singles (2 rules):
    let argu = g.add_rule(s, vec![Symbol::op(ARGU)], RuleOrigin::Original);
    let retv = g.add_rule(s, vec![Symbol::op(RETV)], RuleOrigin::Original);
    let popu = g.add_rule(s, vec![Symbol::op(POPU)], RuleOrigin::Original);
    // While POPU + (POPU ARGU RETV) covers everything in two rules:
    let fused = g.add_rule(
        s,
        vec![Symbol::op(POPU), Symbol::op(ARGU), Symbol::op(RETV)],
        RuleOrigin::Original,
    );
    // Glue: S -> S S.
    let glue = g.add_rule(s, vec![s.into(), s.into()], RuleOrigin::Original);

    let parser = ShortestParser::new(&g);
    let tokens = [
        Terminal::Op(POPU),
        Terminal::Op(POPU),
        Terminal::Op(ARGU),
        Terminal::Op(RETV),
    ];
    let d = parser.parse(s, &tokens).unwrap();
    // Optimal: glue(popu, fused) = 3 rules. Trap path: glue(trap,
    // glue(argu, retv)) = 5 rules.
    assert_eq!(d.len(), 3, "{:?}", d.0);
    assert!(d.0.contains(&fused));
    assert!(d.0.contains(&popu));
    assert!(!d.0.contains(&trap));
    let _ = (argu, retv, glue);
}

/// Deeply right-nested expressions under the real initial grammar: a
/// 400-operand ADDU comb. Exercises long chart rows and reconstruction.
#[test]
fn deep_expression_combs() {
    let ig = InitialGrammar::build();
    let parser = ShortestParser::new(&ig.grammar);
    let mut tokens = vec![Terminal::Op(Opcode::LIT1), Terminal::Byte(1)];
    for _ in 0..400 {
        tokens.push(Terminal::Op(Opcode::LIT1));
        tokens.push(Terminal::Byte(2));
        tokens.push(Terminal::Op(Opcode::ADDU));
    }
    tokens.push(Terminal::Op(Opcode::POPU));
    let d = parser.parse(ig.nt_start, &tokens).unwrap();
    assert_eq!(d.expand(&ig.grammar, ig.nt_start).unwrap(), tokens);
}

/// A grammar where the same non-terminal must be completed at many
/// origins with different costs (regression guard for the worklist's
/// cost re-propagation).
#[test]
fn cost_improvements_propagate_across_completions() {
    use Opcode::POPU;
    let mut g = Grammar::new();
    let s = g.add_nt("S");
    let a = g.add_nt("A");
    g.set_start(s);
    // S -> A A ; A -> 'p' | 'p' 'p' | A A (ambiguous sizes).
    g.add_rule(s, vec![a.into(), a.into()], RuleOrigin::Original);
    let single = g.add_rule(a, vec![Symbol::op(POPU)], RuleOrigin::Original);
    let double = g.add_rule(
        a,
        vec![Symbol::op(POPU), Symbol::op(POPU)],
        RuleOrigin::Original,
    );
    g.add_rule(a, vec![a.into(), a.into()], RuleOrigin::Original);
    let parser = ShortestParser::new(&g);

    for n in 2..14usize {
        let tokens = vec![Terminal::Op(POPU); n];
        let d = parser.parse(s, &tokens).unwrap();
        assert_eq!(d.expand(&g, s).unwrap(), tokens, "n={n}");
        // Lower bound: S plus at least ceil(n/2) A-rules.
        assert!(d.len() > n.div_ceil(2), "n={n}, got {}", d.len());
        let _ = (single, double);
    }
}

/// Unused non-terminals and rules in the grammar must not confuse the
/// prediction tables.
#[test]
fn dead_grammar_regions_are_harmless() {
    let ig = InitialGrammar::build();
    let mut g = ig.grammar.clone();
    let junk = g.add_nt("junk");
    g.add_rule(
        junk,
        vec![junk.into(), Symbol::op(Opcode::ADDU)],
        RuleOrigin::Original,
    ); // left-recursive, never reachable from start, not even terminating
    let parser = ShortestParser::new(&g);
    let tokens = [Terminal::Op(Opcode::RETV)];
    let d = parser.parse(ig.nt_start, &tokens).unwrap();
    assert_eq!(d.len(), 4);
}

/// Performance guard: compressing a realistic large segment must finish
/// promptly even in debug builds (catches accidental quadratic or
/// exponential blowups in the chart).
#[test]
fn large_segment_parse_time_guard() {
    let ig = InitialGrammar::build();
    let parser = ShortestParser::new(&ig.grammar);
    // 1,200 statements: ADDRLP k INDIRU POPU.
    let mut tokens = Vec::new();
    for k in 0..1200u32 {
        tokens.push(Terminal::Op(Opcode::ADDRLP));
        tokens.push(Terminal::Byte((k % 250) as u8));
        tokens.push(Terminal::Byte(0));
        tokens.push(Terminal::Op(Opcode::INDIRU));
        tokens.push(Terminal::Op(Opcode::POPU));
    }
    let start = std::time::Instant::now();
    let d = parser.parse(ig.nt_start, &tokens).unwrap();
    let elapsed = start.elapsed();
    assert_eq!(d.expand(&ig.grammar, ig.nt_start).unwrap(), tokens);
    assert!(
        elapsed < std::time::Duration::from_secs(20),
        "parse took {elapsed:?}"
    );
}
