//! Leftmost derivations: the compressed representation of a program.
//!
//! "We describe a sequence by its leftmost derivation with respect to the
//! grammar. The derivation is a list of the rules used to expand the
//! leftmost non-terminal in each sentential form, where each rule is
//! represented as an index: the *i*th rule for a non-terminal represented
//! as the index *i*" (§4.1). With every non-terminal holding at most 256
//! rules, each step encodes as one byte — the compressed bytecode.

use crate::forest::{Forest, NodeId};
use crate::grammar::{Grammar, RuleId};
use crate::symbol::{Nt, Symbol, Terminal};
use std::fmt;

/// A leftmost derivation: the rule sequence of a preorder traversal of a
/// parse tree.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Derivation(pub Vec<RuleId>);

/// An error expanding or decoding a derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DerivationError {
    /// A derivation step's rule does not expand the leftmost
    /// non-terminal.
    WrongNonTerminal {
        /// The failing step.
        step: usize,
        /// The leftmost pending non-terminal.
        expected: Nt,
        /// The rule's left-hand side.
        found: Nt,
    },
    /// The derivation ended with non-terminals still unexpanded.
    Incomplete {
        /// How many non-terminals remain.
        remaining: usize,
    },
    /// A byte index named a rule the non-terminal does not have.
    BadRuleIndex {
        /// The failing step.
        step: usize,
        /// The non-terminal being expanded.
        nt: Nt,
        /// The out-of-range rule index.
        index: u8,
    },
    /// The byte stream ended mid-derivation.
    Truncated {
        /// The step at which bytes ran out.
        step: usize,
    },
}

impl fmt::Display for DerivationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DerivationError::WrongNonTerminal {
                step,
                expected,
                found,
            } => write!(
                f,
                "step {step}: rule expands {found} but leftmost non-terminal is {expected}"
            ),
            DerivationError::Incomplete { remaining } => {
                write!(
                    f,
                    "derivation ends with {remaining} unexpanded non-terminals"
                )
            }
            DerivationError::BadRuleIndex { step, nt, index } => {
                write!(f, "step {step}: {nt} has no rule {index}")
            }
            DerivationError::Truncated { step } => {
                write!(f, "byte stream ends at derivation step {step}")
            }
        }
    }
}

impl std::error::Error for DerivationError {}

impl Derivation {
    /// Number of derivation steps (= compressed size in bytes).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the derivation has no steps.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Extract the leftmost derivation of the parse tree rooted at
    /// `root`: the preorder rule sequence (§4.1).
    pub fn from_tree(forest: &Forest, root: NodeId) -> Derivation {
        let mut rules = Vec::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let node = forest.node(id);
            rules.push(node.rule);
            stack.extend(node.children.iter().rev());
        }
        Derivation(rules)
    }

    /// Expand the derivation into its terminal string.
    ///
    /// # Errors
    ///
    /// Fails if the rule sequence is not a valid leftmost derivation of
    /// `start` (wrong non-terminal at a step, or unexpanded non-terminals
    /// at the end).
    pub fn expand(&self, grammar: &Grammar, start: Nt) -> Result<Vec<Terminal>, DerivationError> {
        let mut out = Vec::new();
        // Sentential-form suffix, in reverse (top = leftmost pending).
        let mut pending: Vec<Symbol> = vec![Symbol::N(start)];
        let mut steps = self.0.iter();
        let mut step = 0usize;
        while let Some(sym) = pending.pop() {
            match sym {
                Symbol::T(t) => out.push(t),
                Symbol::N(nt) => {
                    let Some(&rule_id) = steps.next() else {
                        return Err(DerivationError::Incomplete {
                            remaining: 1 + pending
                                .iter()
                                .filter(|s| s.nonterminal().is_some())
                                .count(),
                        });
                    };
                    let rule = grammar.rule(rule_id);
                    if rule.lhs != nt {
                        return Err(DerivationError::WrongNonTerminal {
                            step,
                            expected: nt,
                            found: rule.lhs,
                        });
                    }
                    pending.extend(rule.rhs.iter().rev());
                    step += 1;
                }
            }
        }
        if steps.next().is_some() {
            // Extra trailing rules: treat as incomplete usage error.
            return Err(DerivationError::Incomplete { remaining: 0 });
        }
        Ok(out)
    }

    /// Encode the derivation as one byte per step, using each rule's
    /// index within its non-terminal. `index_map` comes from
    /// [`Grammar::rule_index_map`].
    ///
    /// # Panics
    ///
    /// Panics if a rule has been removed from the grammar (its index is
    /// unknown) or its index exceeds 255.
    pub fn to_bytes(&self, index_map: &[usize]) -> Vec<u8> {
        self.0
            .iter()
            .map(|id| {
                let idx = index_map[id.index()];
                assert!(idx <= 255, "rule index {idx} does not fit a byte");
                idx as u8
            })
            .collect()
    }

    /// Decode one complete derivation of `start` from the front of
    /// `bytes`; returns the derivation and the number of bytes consumed.
    ///
    /// This is the decompressor's core loop and mirrors what the
    /// compressed-bytecode interpreter does when it walks a derivation.
    ///
    /// # Errors
    ///
    /// Fails if a byte names a rule its non-terminal does not have, or if
    /// the stream ends mid-derivation.
    pub fn from_bytes(
        grammar: &Grammar,
        start: Nt,
        bytes: &[u8],
    ) -> Result<(Derivation, usize), DerivationError> {
        let mut rules = Vec::new();
        let mut pending: Vec<Nt> = vec![start];
        let mut pos = 0usize;
        while let Some(nt) = pending.pop() {
            let Some(&b) = bytes.get(pos) else {
                return Err(DerivationError::Truncated { step: rules.len() });
            };
            let of_nt = grammar.rules_of(nt);
            let Some(&rule_id) = of_nt.get(b as usize) else {
                return Err(DerivationError::BadRuleIndex {
                    step: rules.len(),
                    nt,
                    index: b,
                });
            };
            pos += 1;
            rules.push(rule_id);
            let rule = grammar.rule(rule_id);
            pending.extend(rule.rhs.iter().rev().filter_map(|s| s.nonterminal()));
        }
        Ok((Derivation(rules), pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::Forest;
    use crate::initial::{tokenize_segment, InitialGrammar};
    use pgr_bytecode::{encode, Instruction, Opcode};

    fn sample_tokens() -> Vec<Terminal> {
        let code = encode(&[
            Instruction::with_u16(Opcode::ADDRFP, 0),
            Instruction::op(Opcode::INDIRU),
            Instruction::new(Opcode::LIT1, &[0]),
            Instruction::op(Opcode::NEU),
            Instruction::with_u16(Opcode::BrTrue, 0),
        ]);
        tokenize_segment(&code).unwrap()
    }

    #[test]
    fn tree_derivation_expands_to_the_input() {
        let ig = InitialGrammar::build();
        let mut forest = Forest::new();
        let tokens = sample_tokens();
        let root = forest.add_segment(&ig, &tokens).unwrap();
        let d = Derivation::from_tree(&forest, root);
        assert_eq!(d.expand(&ig.grammar, ig.nt_start).unwrap(), tokens);
        // Derivation length = number of live nodes in the tree.
        assert_eq!(d.len(), forest.live_count());
    }

    #[test]
    fn bytes_roundtrip() {
        let ig = InitialGrammar::build();
        let mut forest = Forest::new();
        let tokens = sample_tokens();
        let root = forest.add_segment(&ig, &tokens).unwrap();
        let d = Derivation::from_tree(&forest, root);
        let index_map = ig.grammar.rule_index_map();
        let bytes = d.to_bytes(&index_map);
        assert_eq!(bytes.len(), d.len());
        let (back, consumed) = Derivation::from_bytes(&ig.grammar, ig.nt_start, &bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(back, d);
        assert_eq!(back.expand(&ig.grammar, ig.nt_start).unwrap(), tokens);
    }

    #[test]
    fn concatenated_segments_decode_in_sequence() {
        let ig = InitialGrammar::build();
        let mut forest = Forest::new();
        let t1 = sample_tokens();
        let t2 = tokenize_segment(&[Opcode::RETV as u8]).unwrap();
        let r1 = forest.add_segment(&ig, &t1).unwrap();
        let r2 = forest.add_segment(&ig, &t2).unwrap();
        let index_map = ig.grammar.rule_index_map();
        let mut bytes = Derivation::from_tree(&forest, r1).to_bytes(&index_map);
        let first_len = bytes.len();
        bytes.extend(Derivation::from_tree(&forest, r2).to_bytes(&index_map));

        let (d1, used1) = Derivation::from_bytes(&ig.grammar, ig.nt_start, &bytes).unwrap();
        assert_eq!(used1, first_len);
        assert_eq!(d1.expand(&ig.grammar, ig.nt_start).unwrap(), t1);
        let (d2, used2) =
            Derivation::from_bytes(&ig.grammar, ig.nt_start, &bytes[used1..]).unwrap();
        assert_eq!(used1 + used2, bytes.len());
        assert_eq!(d2.expand(&ig.grammar, ig.nt_start).unwrap(), t2);
    }

    #[test]
    fn wrong_rule_is_rejected() {
        let ig = InitialGrammar::build();
        // <start> expanded by a <v> rule.
        let d = Derivation(vec![ig.v_leaf]);
        assert!(matches!(
            d.expand(&ig.grammar, ig.nt_start),
            Err(DerivationError::WrongNonTerminal { step: 0, .. })
        ));
    }

    #[test]
    fn truncated_bytes_are_rejected() {
        let ig = InitialGrammar::build();
        // Start rule 1 = <start> <x>, then nothing.
        let bytes = [1u8];
        assert!(matches!(
            Derivation::from_bytes(&ig.grammar, ig.nt_start, &bytes),
            Err(DerivationError::Truncated { .. })
        ));
    }

    #[test]
    fn incomplete_derivation_is_rejected() {
        let ig = InitialGrammar::build();
        let d = Derivation(vec![ig.start_rec]);
        assert!(matches!(
            d.expand(&ig.grammar, ig.nt_start),
            Err(DerivationError::Incomplete { .. })
        ));
    }

    #[test]
    fn empty_segment_is_one_byte() {
        let ig = InitialGrammar::build();
        let index_map = ig.grammar.rule_index_map();
        let d = Derivation(vec![ig.start_empty]);
        let bytes = d.to_bytes(&index_map);
        assert_eq!(bytes, vec![0]);
        let (back, used) = Derivation::from_bytes(&ig.grammar, ig.nt_start, &bytes).unwrap();
        assert_eq!(used, 1);
        assert!(back.expand(&ig.grammar, ig.nt_start).unwrap().is_empty());
    }
}
