//! Flattened, read-only grammar tables for hot-path consumers.
//!
//! The [`Grammar`](crate::Grammar) arena is built for mutation: rules are
//! `Vec<Symbol>` right-hand sides behind a `Vec<Rule>`, so walking a rule
//! during a parse costs two pointer chases and a 8-byte-enum decode per
//! symbol. The cost-weighted Earley parser walks rules millions of times
//! per corpus, so it consumes this snapshot instead: every right-hand
//! side packed into one dense `u32` array with per-rule bounds, left-hand
//! sides in a parallel `u16` array, and the live rules of each
//! non-terminal as one contiguous range. Build it once per grammar
//! snapshot (it is invalidated by any rule mutation) and index it
//! branch-free from then on.

use crate::grammar::{Grammar, RuleId};
use crate::symbol::{Nt, Symbol, Terminal};

/// A grammar symbol packed into 32 bits: the high bit distinguishes
/// non-terminals (low 16 bits: [`Nt`] index) from terminals (low bits:
/// the dense [`Terminal::index`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedSym(u32);

const NT_BIT: u32 = 1 << 31;

impl PackedSym {
    /// Pack a symbol.
    pub fn pack(sym: Symbol) -> PackedSym {
        match sym {
            Symbol::T(t) => PackedSym(t.index() as u32),
            Symbol::N(n) => PackedSym(NT_BIT | u32::from(n.0)),
        }
    }

    /// Whether this is a non-terminal.
    #[inline]
    pub fn is_nt(self) -> bool {
        self.0 & NT_BIT != 0
    }

    /// The non-terminal, if this symbol is one.
    #[inline]
    pub fn nt(self) -> Option<Nt> {
        self.is_nt().then_some(Nt((self.0 & !NT_BIT) as u16))
    }

    /// The dense terminal index, if this symbol is a terminal. Compare
    /// against `Terminal::index` directly — no enum round-trip needed.
    #[inline]
    pub fn terminal_index(self) -> Option<u32> {
        (!self.is_nt()).then_some(self.0)
    }

    /// Unpack back into a [`Symbol`].
    pub fn unpack(self) -> Symbol {
        match self.nt() {
            Some(n) => Symbol::N(n),
            None => Symbol::T(Terminal::from_index(self.0 as usize)),
        }
    }
}

/// Flattened rule storage: dense right-hand sides, per-rule bounds, and
/// per-non-terminal live-rule ranges. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct RuleTable {
    /// Left-hand side of every rule slot (tombstones included).
    lhs: Vec<u16>,
    /// `syms[rhs_bounds[r] .. rhs_bounds[r + 1]]` is rule `r`'s RHS
    /// (empty for tombstones).
    rhs_bounds: Vec<u32>,
    syms: Vec<PackedSym>,
    /// `nt_rules[nt_bounds[nt] .. nt_bounds[nt + 1]]` are the live rules
    /// of `nt`, in encoding-index order.
    nt_bounds: Vec<u32>,
    nt_rules: Vec<RuleId>,
}

impl RuleTable {
    /// Snapshot `grammar` into flat tables.
    pub fn build(grammar: &Grammar) -> RuleTable {
        let slots = grammar.rule_slots();
        let mut lhs = Vec::with_capacity(slots);
        let mut rhs_bounds = Vec::with_capacity(slots + 1);
        let mut syms = Vec::new();
        rhs_bounds.push(0);
        for r in 0..slots {
            let rule = grammar.rule(RuleId(r as u32));
            lhs.push(rule.lhs.0);
            if rule.alive {
                syms.extend(rule.rhs.iter().map(|&s| PackedSym::pack(s)));
            }
            rhs_bounds.push(syms.len() as u32);
        }
        let mut nt_bounds = Vec::with_capacity(grammar.nt_count() + 1);
        let mut nt_rules = Vec::with_capacity(slots);
        nt_bounds.push(0);
        for nt in 0..grammar.nt_count() {
            nt_rules.extend_from_slice(grammar.rules_of(Nt(nt as u16)));
            nt_bounds.push(nt_rules.len() as u32);
        }
        RuleTable {
            lhs,
            rhs_bounds,
            syms,
            nt_bounds,
            nt_rules,
        }
    }

    /// Number of rule slots snapshotted (tombstones included).
    pub fn rule_slots(&self) -> usize {
        self.lhs.len()
    }

    /// Number of non-terminals snapshotted.
    pub fn nt_count(&self) -> usize {
        self.nt_bounds.len() - 1
    }

    /// Left-hand side of a rule.
    #[inline]
    pub fn lhs(&self, rule: RuleId) -> Nt {
        Nt(self.lhs[rule.index()])
    }

    /// Right-hand side of a rule as packed symbols.
    #[inline]
    pub fn rhs(&self, rule: RuleId) -> &[PackedSym] {
        let lo = self.rhs_bounds[rule.index()] as usize;
        let hi = self.rhs_bounds[rule.index() + 1] as usize;
        &self.syms[lo..hi]
    }

    /// Right-hand-side length of a rule.
    #[inline]
    pub fn rhs_len(&self, rule: RuleId) -> usize {
        (self.rhs_bounds[rule.index() + 1] - self.rhs_bounds[rule.index()]) as usize
    }

    /// The symbol at `dot`, or `None` when the dot is at the end.
    #[inline]
    pub fn sym_at(&self, rule: RuleId, dot: usize) -> Option<PackedSym> {
        let lo = self.rhs_bounds[rule.index()] as usize;
        let hi = self.rhs_bounds[rule.index() + 1] as usize;
        let i = lo + dot;
        (i < hi).then(|| self.syms[i])
    }

    /// Live rules of `nt`, in encoding-index order (the same order as
    /// [`Grammar::rules_of`] at snapshot time).
    #[inline]
    pub fn rules_of(&self, nt: Nt) -> &[RuleId] {
        let lo = self.nt_bounds[nt.index()] as usize;
        let hi = self.nt_bounds[nt.index() + 1] as usize;
        &self.nt_rules[lo..hi]
    }

    /// Approximate resident size of the tables in bytes (for the
    /// `earley.table.bytes` gauge).
    pub fn table_bytes(&self) -> usize {
        self.lhs.len() * size_of::<u16>()
            + self.rhs_bounds.len() * size_of::<u32>()
            + self.syms.len() * size_of::<PackedSym>()
            + self.nt_bounds.len() * size_of::<u32>()
            + self.nt_rules.len() * size_of::<RuleId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::RuleOrigin;
    use crate::InitialGrammar;
    use pgr_bytecode::Opcode;

    #[test]
    fn packed_symbols_roundtrip() {
        let cases = [
            Symbol::op(Opcode::ADDU),
            Symbol::byte(0),
            Symbol::byte(255),
            Symbol::N(Nt(0)),
            Symbol::N(Nt(u16::MAX)),
        ];
        for sym in cases {
            let p = PackedSym::pack(sym);
            assert_eq!(p.unpack(), sym);
            assert_eq!(p.is_nt(), matches!(sym, Symbol::N(_)));
        }
    }

    #[test]
    fn table_mirrors_the_grammar() {
        let ig = InitialGrammar::build();
        let t = RuleTable::build(&ig.grammar);
        assert_eq!(t.rule_slots(), ig.grammar.rule_slots());
        assert_eq!(t.nt_count(), ig.grammar.nt_count());
        for r in 0..ig.grammar.rule_slots() {
            let id = RuleId(r as u32);
            let rule = ig.grammar.rule(id);
            assert_eq!(t.lhs(id), rule.lhs);
            assert_eq!(t.rhs_len(id), rule.rhs.len());
            for (dot, &sym) in rule.rhs.iter().enumerate() {
                assert_eq!(t.sym_at(id, dot).unwrap().unpack(), sym);
            }
            assert_eq!(t.sym_at(id, rule.rhs.len()), None);
        }
        for nt in 0..ig.grammar.nt_count() {
            let nt = Nt(nt as u16);
            assert_eq!(t.rules_of(nt), ig.grammar.rules_of(nt));
        }
        assert!(t.table_bytes() > 0);
    }

    #[test]
    fn tombstones_have_empty_rhs_ranges() {
        let ig = InitialGrammar::build();
        let mut g = ig.grammar.clone();
        let dead = g.add_rule(
            ig.nt_x,
            vec![Symbol::op(Opcode::RETV)],
            RuleOrigin::Inlined {
                parent: ig.x_leaf,
                slot: 0,
                child: ig.rule_for_opcode(Opcode::RETV),
            },
        );
        g.remove_rule(dead);
        let t = RuleTable::build(&g);
        assert_eq!(t.rhs_len(dead), 0);
        assert!(!t.rules_of(ig.nt_x).contains(&dead));
    }
}
