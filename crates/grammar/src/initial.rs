//! The initial bytecode grammar (Appendix 2) and its lookup tables.
//!
//! The grammar groups operators by their effect on the evaluation stack:
//! `<v0>`/`<v1>`/`<v2>` collect leaf/unary/binary operators that yield a
//! value, `<x0>`/`<x1>`/`<x2>` collect operators executed for a side
//! effect, and `<start>` derives a sequence of statements:
//!
//! ```text
//! <start> ::= ε | <start> <x>
//! <v> ::= <v0> | <v> <v1> | <v> <v> <v2>
//! <x> ::= <x0> | <v> <x1> | <v> <v> <x2>
//! ```
//!
//! Operators with literal operands (the prefix-format operators of §3)
//! carry one `<byte>` non-terminal per operand byte, and `<byte>` has one
//! rule per value: `<byte> ::= 0 | 1 | … | 255`.

use crate::grammar::{Grammar, RuleId, RuleOrigin};
use crate::symbol::{Nt, Symbol, Terminal};
use pgr_bytecode::{decode, DecodeError, Opcode, StackKind};
use std::fmt;

/// The initial grammar plus the lookup tables used by the deterministic
/// forest parser.
#[derive(Debug, Clone)]
pub struct InitialGrammar {
    /// The grammar itself. The expander extends it; the original rules
    /// stay put.
    pub grammar: Grammar,
    /// `<start>`.
    pub nt_start: Nt,
    /// `<v>`.
    pub nt_v: Nt,
    /// `<x>`.
    pub nt_x: Nt,
    /// `<v0>`, `<v1>`, `<v2>`.
    pub nt_v0: Nt,
    /// See [`InitialGrammar::nt_v0`].
    pub nt_v1: Nt,
    /// See [`InitialGrammar::nt_v0`].
    pub nt_v2: Nt,
    /// `<x0>`, `<x1>`, `<x2>`.
    pub nt_x0: Nt,
    /// See [`InitialGrammar::nt_x0`].
    pub nt_x1: Nt,
    /// See [`InitialGrammar::nt_x0`].
    pub nt_x2: Nt,
    /// `<byte>`.
    pub nt_byte: Nt,
    /// `<start> ::= ε`.
    pub start_empty: RuleId,
    /// `<start> ::= <start> <x>`.
    pub start_rec: RuleId,
    /// `<v> ::= <v0>`.
    pub v_leaf: RuleId,
    /// `<v> ::= <v> <v1>`.
    pub v_unary: RuleId,
    /// `<v> ::= <v> <v> <v2>`.
    pub v_binary: RuleId,
    /// `<x> ::= <x0>`.
    pub x_leaf: RuleId,
    /// `<x> ::= <v> <x1>`.
    pub x_unary: RuleId,
    /// `<x> ::= <v> <v> <x2>`.
    pub x_binary: RuleId,
    /// For each opcode byte, the rule of its stack-kind group (e.g.
    /// `<v2> ::= ADDU` for `ADDU`); `None` for `LABELV`, which is not in
    /// the grammar.
    pub opcode_rule: Vec<Option<RuleId>>,
    /// `byte_rules[b]` is `<byte> ::= b`.
    pub byte_rules: Vec<RuleId>,
}

impl InitialGrammar {
    /// Build the Appendix 2 grammar.
    pub fn build() -> InitialGrammar {
        let mut g = Grammar::new();
        let nt_start = g.add_nt("start");
        let nt_v = g.add_nt("v");
        let nt_x = g.add_nt("x");
        let nt_v0 = g.add_nt("v0");
        let nt_v1 = g.add_nt("v1");
        let nt_v2 = g.add_nt("v2");
        let nt_x0 = g.add_nt("x0");
        let nt_x1 = g.add_nt("x1");
        let nt_x2 = g.add_nt("x2");
        let nt_byte = g.add_nt("byte");
        g.set_start(nt_start);

        let o = RuleOrigin::Original;
        let start_empty = g.add_rule(nt_start, vec![], o);
        let start_rec = g.add_rule(nt_start, vec![nt_start.into(), nt_x.into()], o);
        let v_leaf = g.add_rule(nt_v, vec![nt_v0.into()], o);
        let v_unary = g.add_rule(nt_v, vec![nt_v.into(), nt_v1.into()], o);
        let v_binary = g.add_rule(nt_v, vec![nt_v.into(), nt_v.into(), nt_v2.into()], o);
        let x_leaf = g.add_rule(nt_x, vec![nt_x0.into()], o);
        let x_unary = g.add_rule(nt_x, vec![nt_v.into(), nt_x1.into()], o);
        let x_binary = g.add_rule(nt_x, vec![nt_v.into(), nt_v.into(), nt_x2.into()], o);

        let mut opcode_rule = vec![None; Opcode::COUNT];
        for &op in Opcode::ALL {
            let lhs = match op.kind() {
                StackKind::V0 => nt_v0,
                StackKind::V1 => nt_v1,
                StackKind::V2 => nt_v2,
                StackKind::X0 => nt_x0,
                StackKind::X1 => nt_x1,
                StackKind::X2 => nt_x2,
                StackKind::Label => continue,
            };
            let mut rhs = vec![Symbol::op(op)];
            rhs.extend(std::iter::repeat_n(Symbol::N(nt_byte), op.operand_bytes()));
            opcode_rule[op as usize] = Some(g.add_rule(lhs, rhs, o));
        }

        let byte_rules: Vec<RuleId> = (0..=255u8)
            .map(|b| g.add_rule(nt_byte, vec![Symbol::byte(b)], o))
            .collect();

        InitialGrammar {
            grammar: g,
            nt_start,
            nt_v,
            nt_x,
            nt_v0,
            nt_v1,
            nt_v2,
            nt_x0,
            nt_x1,
            nt_x2,
            nt_byte,
            start_empty,
            start_rec,
            v_leaf,
            v_unary,
            v_binary,
            x_leaf,
            x_unary,
            x_binary,
            opcode_rule,
            byte_rules,
        }
    }

    /// The `<x?>`/`<v?>` group rule for an opcode.
    ///
    /// # Panics
    ///
    /// Panics for `LABELV`, which has no rule.
    pub fn rule_for_opcode(&self, op: Opcode) -> RuleId {
        self.opcode_rule[op as usize].expect("LABELV has no grammar rule")
    }
}

/// An error tokenizing a code segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenizeError {
    /// The segment does not decode as instructions.
    Decode(DecodeError),
    /// A `LABELV` appeared inside a segment (segments must be split at
    /// labels first; see `Procedure::segments`).
    LabelInSegment {
        /// Byte offset of the marker.
        offset: usize,
    },
}

impl fmt::Display for TokenizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenizeError::Decode(e) => write!(f, "{e}"),
            TokenizeError::LabelInSegment { offset } => {
                write!(f, "LABELV inside segment at offset {offset}")
            }
        }
    }
}

impl std::error::Error for TokenizeError {}

impl From<DecodeError> for TokenizeError {
    fn from(e: DecodeError) -> TokenizeError {
        TokenizeError::Decode(e)
    }
}

/// Tokenize one straight-line code segment into grammar terminals.
///
/// Each opcode byte becomes a [`Terminal::Op`] and each literal operand
/// byte a [`Terminal::Byte`], so the token count equals the segment's byte
/// length.
///
/// # Errors
///
/// Fails if the bytes do not decode or if the segment contains a
/// `LABELV`.
pub fn tokenize_segment(code: &[u8]) -> Result<Vec<Terminal>, TokenizeError> {
    let mut tokens = Vec::with_capacity(code.len());
    for insn in decode(code) {
        let insn = insn?;
        if insn.opcode == Opcode::LABELV {
            return Err(TokenizeError::LabelInSegment {
                offset: insn.offset,
            });
        }
        tokens.push(Terminal::Op(insn.opcode));
        for &b in insn.operand_slice() {
            tokens.push(Terminal::Byte(b));
        }
    }
    Ok(tokens)
}

/// Render a token sequence back into code bytes (the inverse of
/// [`tokenize_segment`] for well-formed sequences).
pub fn detokenize(tokens: &[Terminal]) -> Vec<u8> {
    tokens
        .iter()
        .map(|t| match t {
            Terminal::Op(op) => *op as u8,
            Terminal::Byte(b) => *b,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_counts_match_appendix_2() {
        let ig = InitialGrammar::build();
        let g = &ig.grammar;
        assert_eq!(g.rules_of(ig.nt_start).len(), 2);
        assert_eq!(g.rules_of(ig.nt_v).len(), 3);
        assert_eq!(g.rules_of(ig.nt_x).len(), 3);
        assert_eq!(g.rules_of(ig.nt_v2).len(), 45);
        assert_eq!(g.rules_of(ig.nt_v1).len(), 22);
        assert_eq!(g.rules_of(ig.nt_v0).len(), 10);
        assert_eq!(g.rules_of(ig.nt_x2).len(), 6);
        assert_eq!(g.rules_of(ig.nt_x1).len(), 12);
        assert_eq!(g.rules_of(ig.nt_x0).len(), 3);
        assert_eq!(g.rules_of(ig.nt_byte).len(), 256);
    }

    #[test]
    fn prefix_operators_get_byte_slots() {
        let ig = InitialGrammar::build();
        let r = ig.grammar.rule(ig.rule_for_opcode(Opcode::ADDRGP));
        assert_eq!(r.lhs, ig.nt_v0);
        assert_eq!(r.rhs.len(), 3);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.nt_at_slot(0), ig.nt_byte);
        let r = ig.grammar.rule(ig.rule_for_opcode(Opcode::LIT4));
        assert_eq!(r.arity(), 4);
        let r = ig.grammar.rule(ig.rule_for_opcode(Opcode::ADDU));
        assert_eq!(r.arity(), 0);
    }

    #[test]
    fn start_is_nullable_and_firsts_are_sane() {
        let ig = InitialGrammar::build();
        let fs = ig.grammar.first_sets();
        assert!(fs.nullable(ig.nt_start));
        assert!(!fs.nullable(ig.nt_x));
        // A statement can start with a value leaf or an x0 opcode.
        assert!(fs.can_start(ig.nt_x, Terminal::Op(Opcode::LIT1)));
        assert!(fs.can_start(ig.nt_x, Terminal::Op(Opcode::RETV)));
        assert!(!fs.can_start(ig.nt_x, Terminal::Op(Opcode::ADDU)));
        // But a statement cannot start with a binary operator.
        assert!(fs.can_start(ig.nt_v, Terminal::Op(Opcode::ADDRLP)));
    }

    #[test]
    fn tokenize_roundtrips() {
        use pgr_bytecode::Instruction;
        let code = pgr_bytecode::encode(&[
            Instruction::with_u16(Opcode::ADDRFP, 0),
            Instruction::op(Opcode::INDIRU),
            Instruction::new(Opcode::LIT1, &[0]),
            Instruction::op(Opcode::NEU),
            Instruction::with_u16(Opcode::BrTrue, 0),
        ]);
        let tokens = tokenize_segment(&code).unwrap();
        assert_eq!(tokens.len(), code.len());
        assert_eq!(tokens[0], Terminal::Op(Opcode::ADDRFP));
        assert_eq!(tokens[1], Terminal::Byte(0));
        assert_eq!(detokenize(&tokens), code);
    }

    #[test]
    fn tokenize_rejects_labels() {
        let code = [Opcode::LABELV as u8];
        assert!(matches!(
            tokenize_segment(&code),
            Err(TokenizeError::LabelInSegment { offset: 0 })
        ));
    }
}
