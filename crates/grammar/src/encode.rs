//! Compact binary grammar serialization.
//!
//! The expanded grammar ships with the compressed-bytecode interpreter
//! ("a table encodes for each rule the sequence of terminals and
//! non-terminals on the rule's right-hand side", §5) and dominates the
//! interpreter's size growth (§6: the grammar occupies 10,525 bytes of
//! the 11KB interpreter delta). This module defines the byte format whose
//! size those experiments report.
//!
//! Format:
//!
//! ```text
//! u8                      non-terminal count (start symbol is entry 0's id)
//! u8                      start non-terminal id
//! per non-terminal:
//!   u16le                 rule count
//!   per rule:
//!     u8                  right-hand-side length
//!     per symbol:         1 byte, or 2 for escaped literal bytes:
//!       0 .. nts-1            -> that non-terminal
//!       nts .. nts+ops-1      -> opcode terminal
//!       nts+ops .. 254        -> literal byte terminal (small values)
//!       255, b                -> literal byte terminal b (escape)
//! ```

use crate::grammar::{Grammar, RuleOrigin};
use crate::symbol::{Nt, Symbol, Terminal};
use pgr_bytecode::Opcode;
use std::fmt;

/// An error decoding a serialized grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrammarDecodeError {
    /// The byte stream ended early.
    Truncated,
    /// A symbol byte referenced a non-existent opcode.
    BadSymbol {
        /// Offset of the bad symbol byte.
        offset: usize,
    },
    /// The header's start symbol is not a declared non-terminal.
    BadStart,
    /// A non-terminal claims more rules than one byte can index.
    TooManyRules {
        /// The offending non-terminal's id.
        nt: usize,
    },
}

impl fmt::Display for GrammarDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrammarDecodeError::Truncated => write!(f, "truncated grammar"),
            GrammarDecodeError::BadSymbol { offset } => {
                write!(f, "bad symbol byte at offset {offset}")
            }
            GrammarDecodeError::BadStart => write!(f, "start symbol out of range"),
            GrammarDecodeError::TooManyRules { nt } => {
                write!(f, "non-terminal {nt} claims more than 256 rules")
            }
        }
    }
}

impl std::error::Error for GrammarDecodeError {}

fn symbol_bytes(nts: usize, sym: Symbol, out: &mut Vec<u8>) {
    let op_base = nts;
    let byte_base = op_base + Opcode::COUNT;
    match sym {
        Symbol::N(n) => out.push(n.0 as u8),
        Symbol::T(Terminal::Op(op)) => out.push((op_base + op as usize) as u8),
        Symbol::T(Terminal::Byte(b)) => {
            let v = byte_base + b as usize;
            if v < 255 {
                out.push(v as u8);
            } else {
                out.push(255);
                out.push(b);
            }
        }
    }
}

/// Serialize a grammar (live rules only).
///
/// # Panics
///
/// Panics if the grammar has more than 200 non-terminals (the symbol
/// byte space would overflow; real grammars here have 10).
pub fn encode_grammar(grammar: &Grammar) -> Vec<u8> {
    let nts = grammar.nt_count();
    assert!(nts <= 200, "too many non-terminals for the symbol encoding");
    let mut out = Vec::new();
    out.push(nts as u8);
    out.push(grammar.start().0 as u8);
    for nt in 0..nts {
        let rules = grammar.rules_of(Nt(nt as u16));
        out.extend_from_slice(&(rules.len() as u16).to_le_bytes());
        for &id in rules {
            let rule = grammar.rule(id);
            out.push(rule.rhs.len() as u8);
            for &sym in &rule.rhs {
                symbol_bytes(nts, sym, &mut out);
            }
        }
    }
    out
}

/// Size in bytes of the serialized grammar, as reported by the
/// interpreter-size experiments.
pub fn grammar_size(grammar: &Grammar) -> usize {
    encode_grammar(grammar).len()
}

/// Deserialize a grammar. Rule provenance is not stored, so every decoded
/// rule reports [`RuleOrigin::Original`]. Non-terminal names are
/// synthesized as `n0`, `n1`, ….
///
/// # Errors
///
/// See [`GrammarDecodeError`].
pub fn decode_grammar(bytes: &[u8]) -> Result<Grammar, GrammarDecodeError> {
    struct Cursor<'a> {
        bytes: &'a [u8],
        pos: usize,
    }
    impl<'a> Cursor<'a> {
        fn take(&mut self, n: usize) -> Result<&'a [u8], GrammarDecodeError> {
            if self.pos + n > self.bytes.len() {
                return Err(GrammarDecodeError::Truncated);
            }
            let s = &self.bytes[self.pos..self.pos + n];
            self.pos += n;
            Ok(s)
        }
    }
    let mut cur = Cursor { bytes, pos: 0 };

    let nts = cur.take(1)?[0] as usize;
    let start = cur.take(1)?[0] as u16;
    if usize::from(start) >= nts {
        return Err(GrammarDecodeError::BadStart);
    }
    let mut grammar = Grammar::new();
    for i in 0..nts {
        grammar.add_nt(format!("n{i}"));
    }
    grammar.set_start(Nt(start));
    let op_base = nts;
    let byte_base = op_base + Opcode::COUNT;
    for nt in 0..nts {
        let count = {
            let s = cur.take(2)?;
            u16::from_le_bytes([s[0], s[1]]) as usize
        };
        if count > crate::grammar::MAX_RULES_PER_NT {
            return Err(GrammarDecodeError::TooManyRules { nt });
        }
        for _ in 0..count {
            let len = cur.take(1)?[0] as usize;
            let mut rhs = Vec::with_capacity(len);
            for _ in 0..len {
                let offset = cur.pos;
                let b = cur.take(1)?[0] as usize;
                let sym = if b < nts {
                    Symbol::N(Nt(b as u16))
                } else if b < byte_base {
                    match Opcode::from_u8((b - op_base) as u8) {
                        Some(op) => Symbol::op(op),
                        None => return Err(GrammarDecodeError::BadSymbol { offset }),
                    }
                } else if b < 255 {
                    Symbol::byte((b - byte_base) as u8)
                } else {
                    Symbol::byte(cur.take(1)?[0])
                };
                rhs.push(sym);
            }
            grammar.add_rule(Nt(nt as u16), rhs, RuleOrigin::Original);
        }
    }
    Ok(grammar)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::initial::InitialGrammar;

    #[test]
    fn initial_grammar_roundtrips() {
        let ig = InitialGrammar::build();
        let bytes = encode_grammar(&ig.grammar);
        assert_eq!(bytes.len(), grammar_size(&ig.grammar));
        let back = decode_grammar(&bytes).unwrap();
        assert_eq!(back.nt_count(), ig.grammar.nt_count());
        assert_eq!(back.start(), ig.grammar.start());
        for nt in 0..back.nt_count() {
            let nt = Nt(nt as u16);
            let a = ig.grammar.rules_of(nt);
            let b = back.rules_of(nt);
            assert_eq!(a.len(), b.len());
            for (&ra, &rb) in a.iter().zip(b) {
                assert_eq!(ig.grammar.rule(ra).rhs, back.rule(rb).rhs);
            }
        }
    }

    #[test]
    fn expanded_rules_with_escaped_bytes_roundtrip() {
        let ig = InitialGrammar::build();
        let mut g = ig.grammar.clone();
        // A rule with both a small and a large literal byte burnt in.
        g.add_rule(
            ig.nt_start,
            vec![
                Symbol::N(ig.nt_start),
                Symbol::op(pgr_bytecode::Opcode::JUMPV),
                Symbol::byte(3),
                Symbol::byte(250),
            ],
            RuleOrigin::Original,
        );
        let bytes = encode_grammar(&g);
        let back = decode_grammar(&bytes).unwrap();
        let last = *back.rules_of(ig.nt_start).last().unwrap();
        assert_eq!(
            back.rule(last).rhs,
            vec![
                Symbol::N(ig.nt_start),
                Symbol::op(pgr_bytecode::Opcode::JUMPV),
                Symbol::byte(3),
                Symbol::byte(250),
            ]
        );
    }

    #[test]
    fn size_grows_with_rules() {
        let ig = InitialGrammar::build();
        let before = grammar_size(&ig.grammar);
        let mut g = ig.grammar.clone();
        g.add_rule(
            ig.nt_start,
            vec![Symbol::N(ig.nt_start), Symbol::N(ig.nt_x)],
            RuleOrigin::Original,
        );
        assert!(grammar_size(&g) > before);
    }

    #[test]
    fn truncation_is_detected() {
        let ig = InitialGrammar::build();
        let bytes = encode_grammar(&ig.grammar);
        for cut in [0, 1, 5, bytes.len() - 1] {
            assert!(decode_grammar(&bytes[..cut]).is_err());
        }
    }
}
