//! The symbol alphabet: terminals (opcodes and literal bytes) and
//! non-terminals.

use pgr_bytecode::Opcode;
use std::fmt;

/// A terminal symbol of the bytecode grammar.
///
/// The terminal alphabet is the union of the opcode set and the 256
/// literal byte values (the `<byte>` terminals `0 | 1 | ... | 255` of
/// Appendix 2). An opcode byte in the instruction stream and a literal
/// byte with the same numeric value are *different* terminals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Terminal {
    /// An operator.
    Op(Opcode),
    /// A literal operand byte.
    Byte(u8),
}

/// Size of the dense terminal index space ([`Terminal::index`]).
pub const TERMINAL_SPACE: usize = Opcode::COUNT + 256;

impl Terminal {
    /// Dense index for table lookups: opcodes first, then byte values.
    pub fn index(self) -> usize {
        match self {
            Terminal::Op(op) => op as usize,
            Terminal::Byte(b) => Opcode::COUNT + b as usize,
        }
    }

    /// Inverse of [`Terminal::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= TERMINAL_SPACE`.
    pub fn from_index(index: usize) -> Terminal {
        if index < Opcode::COUNT {
            Terminal::Op(Opcode::from_u8(index as u8).expect("opcode index in range"))
        } else {
            let b = index - Opcode::COUNT;
            assert!(b < 256, "terminal index {index} out of range");
            Terminal::Byte(b as u8)
        }
    }
}

impl fmt::Display for Terminal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminal::Op(op) => write!(f, "{op}"),
            Terminal::Byte(b) => write!(f, "{b}"),
        }
    }
}

impl From<Opcode> for Terminal {
    fn from(op: Opcode) -> Terminal {
        Terminal::Op(op)
    }
}

/// A non-terminal, identified by its index in the grammar's non-terminal
/// table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Nt(pub u16);

impl Nt {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Nt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// A grammar symbol: terminal or non-terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Symbol {
    /// Terminal.
    T(Terminal),
    /// Non-terminal.
    N(Nt),
}

impl Symbol {
    /// The terminal, if this symbol is one.
    pub fn terminal(self) -> Option<Terminal> {
        match self {
            Symbol::T(t) => Some(t),
            Symbol::N(_) => None,
        }
    }

    /// The non-terminal, if this symbol is one.
    pub fn nonterminal(self) -> Option<Nt> {
        match self {
            Symbol::N(n) => Some(n),
            Symbol::T(_) => None,
        }
    }

    /// Shorthand for `Symbol::T(Terminal::Op(op))`.
    pub fn op(op: Opcode) -> Symbol {
        Symbol::T(Terminal::Op(op))
    }

    /// Shorthand for `Symbol::T(Terminal::Byte(b))`.
    pub fn byte(b: u8) -> Symbol {
        Symbol::T(Terminal::Byte(b))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Symbol::T(t) => write!(f, "{t}"),
            Symbol::N(n) => write!(f, "{n}"),
        }
    }
}

impl From<Terminal> for Symbol {
    fn from(t: Terminal) -> Symbol {
        Symbol::T(t)
    }
}

impl From<Nt> for Symbol {
    fn from(n: Nt) -> Symbol {
        Symbol::N(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_index_roundtrips() {
        for i in 0..TERMINAL_SPACE {
            assert_eq!(Terminal::from_index(i).index(), i);
        }
    }

    #[test]
    fn opcode_and_byte_terminals_are_distinct() {
        // Opcode 0 (ADDD) and literal byte 0 must not collide.
        let op = Terminal::Op(Opcode::from_u8(0).unwrap());
        let byte = Terminal::Byte(0);
        assert_ne!(op, byte);
        assert_ne!(op.index(), byte.index());
    }

    #[test]
    fn symbol_accessors() {
        let s = Symbol::op(Opcode::ADDU);
        assert_eq!(s.terminal(), Some(Terminal::Op(Opcode::ADDU)));
        assert_eq!(s.nonterminal(), None);
        let n = Symbol::N(Nt(3));
        assert_eq!(n.nonterminal(), Some(Nt(3)));
        assert_eq!(n.terminal(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Symbol::op(Opcode::ADDU).to_string(), "ADDU");
        assert_eq!(Symbol::byte(7).to_string(), "7");
        assert_eq!(Symbol::N(Nt(2)).to_string(), "N2");
    }
}
