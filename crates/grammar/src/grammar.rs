//! The mutable grammar: a rule arena with per-non-terminal rule order.
//!
//! A rule's *index* within its non-terminal is its representation in a
//! derivation ("the *i*th rule for a non-terminal represented as the index
//! *i*", §4.1); with at most 256 rules per non-terminal each derivation
//! step costs exactly one byte.

use crate::symbol::{Nt, Symbol, Terminal, TERMINAL_SPACE};
use std::fmt;

/// Identifier of a rule in the grammar's arena. Stable across rule
/// removal (removed rules leave a tombstone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(pub u32);

impl RuleId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Where a rule came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleOrigin {
    /// A rule of the initial grammar. Never removable: removing one could
    /// change the grammar's language (§4.1).
    Original,
    /// A rule created by inlining `child` into `parent` at the given
    /// non-terminal slot (the `slot`-th non-terminal occurrence of the
    /// parent's right-hand side). Removable if it becomes unused.
    Inlined {
        /// The rule whose right-hand side was extended.
        parent: RuleId,
        /// Index among the parent right-hand side's non-terminal
        /// occurrences (not raw positions).
        slot: u32,
        /// The rule whose right-hand side was spliced in.
        child: RuleId,
    },
}

/// A grammar rule `lhs → rhs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Left-hand side.
    pub lhs: Nt,
    /// Right-hand side (possibly empty).
    pub rhs: Vec<Symbol>,
    /// Provenance.
    pub origin: RuleOrigin,
    /// Right-hand-side positions of the non-terminal occurrences, in
    /// left-to-right order; `rhs[nt_slots[k]]` is the `k`-th non-terminal.
    pub nt_slots: Vec<u32>,
    /// False once the rule has been removed.
    pub alive: bool,
}

impl Rule {
    /// Number of non-terminal occurrences on the right-hand side.
    pub fn arity(&self) -> usize {
        self.nt_slots.len()
    }

    /// The non-terminal at the `slot`-th occurrence.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.arity()`.
    pub fn nt_at_slot(&self, slot: usize) -> Nt {
        self.rhs[self.nt_slots[slot] as usize]
            .nonterminal()
            .expect("nt_slots points at non-terminals")
    }
}

/// Maximum rules per non-terminal compatible with one-byte rule indices.
pub const MAX_RULES_PER_NT: usize = 256;

/// Maximum right-hand-side length (kept encodable in one length byte).
pub const MAX_RHS_LEN: usize = 255;

/// A context-free grammar over the bytecode alphabet.
#[derive(Debug, Clone)]
pub struct Grammar {
    nt_names: Vec<String>,
    start: Nt,
    rules: Vec<Rule>,
    by_nt: Vec<Vec<RuleId>>,
}

impl Grammar {
    /// Create an empty grammar; `start` must be added first via
    /// [`Grammar::add_nt`].
    pub fn new() -> Grammar {
        Grammar {
            nt_names: Vec::new(),
            start: Nt(0),
            rules: Vec::new(),
            by_nt: Vec::new(),
        }
    }

    /// Add a non-terminal and return its handle. The first non-terminal
    /// added becomes the start symbol (override with
    /// [`Grammar::set_start`]).
    pub fn add_nt(&mut self, name: impl Into<String>) -> Nt {
        let nt = Nt(self.nt_names.len() as u16);
        self.nt_names.push(name.into());
        self.by_nt.push(Vec::new());
        nt
    }

    /// Set the start symbol.
    pub fn set_start(&mut self, start: Nt) {
        assert!(start.index() < self.nt_names.len());
        self.start = start;
    }

    /// The start symbol.
    pub fn start(&self) -> Nt {
        self.start
    }

    /// Number of non-terminals.
    pub fn nt_count(&self) -> usize {
        self.nt_names.len()
    }

    /// Name of a non-terminal.
    pub fn nt_name(&self, nt: Nt) -> &str {
        &self.nt_names[nt.index()]
    }

    /// Append a rule `lhs → rhs` and return its id.
    ///
    /// # Panics
    ///
    /// Panics if the non-terminal already has [`MAX_RULES_PER_NT`] rules,
    /// if the right-hand side is longer than [`MAX_RHS_LEN`], or if it
    /// mentions an unknown non-terminal.
    pub fn add_rule(&mut self, lhs: Nt, rhs: Vec<Symbol>, origin: RuleOrigin) -> RuleId {
        assert!(
            self.by_nt[lhs.index()].len() < MAX_RULES_PER_NT,
            "non-terminal {} already has {MAX_RULES_PER_NT} rules",
            self.nt_name(lhs)
        );
        assert!(rhs.len() <= MAX_RHS_LEN, "right-hand side too long");
        let nt_slots: Vec<u32> = rhs
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.nonterminal().map(|n| {
                    assert!(n.index() < self.nt_names.len(), "unknown non-terminal");
                    i as u32
                })
            })
            .collect();
        let id = RuleId(self.rules.len() as u32);
        self.rules.push(Rule {
            lhs,
            rhs,
            origin,
            nt_slots,
            alive: true,
        });
        self.by_nt[lhs.index()].push(id);
        id
    }

    /// Access a rule (tombstones included; check [`Rule::alive`]).
    pub fn rule(&self, id: RuleId) -> &Rule {
        &self.rules[id.index()]
    }

    /// Total number of rule slots ever allocated (including tombstones).
    pub fn rule_slots(&self) -> usize {
        self.rules.len()
    }

    /// Live rules of a non-terminal, in index order.
    pub fn rules_of(&self, nt: Nt) -> &[RuleId] {
        &self.by_nt[nt.index()]
    }

    /// Number of live rules overall.
    pub fn live_rule_count(&self) -> usize {
        self.by_nt.iter().map(|v| v.len()).sum()
    }

    /// Index of a live rule within its non-terminal (its encoding byte).
    ///
    /// # Panics
    ///
    /// Panics if the rule has been removed.
    pub fn rule_index(&self, id: RuleId) -> usize {
        let rule = self.rule(id);
        assert!(rule.alive, "rule was removed");
        self.by_nt[rule.lhs.index()]
            .iter()
            .position(|&r| r == id)
            .expect("live rule is listed under its non-terminal")
    }

    /// Map from `RuleId` index to rule index within its non-terminal
    /// (usize::MAX for tombstones). Build once before encoding many
    /// derivations.
    pub fn rule_index_map(&self) -> Vec<usize> {
        let mut map = vec![usize::MAX; self.rules.len()];
        for ids in &self.by_nt {
            for (idx, id) in ids.iter().enumerate() {
                map[id.index()] = idx;
            }
        }
        map
    }

    /// Remove an inlined rule that is no longer used ("we are free to
    /// remove it from the grammar", §4.1).
    ///
    /// # Panics
    ///
    /// Panics if the rule is an original rule (removing one could change
    /// the language) or already removed.
    pub fn remove_rule(&mut self, id: RuleId) {
        let rule = &mut self.rules[id.index()];
        assert!(rule.alive, "rule already removed");
        assert!(
            !matches!(rule.origin, RuleOrigin::Original),
            "original rules are never removed"
        );
        rule.alive = false;
        let lhs = rule.lhs;
        self.by_nt[lhs.index()].retain(|&r| r != id);
    }

    /// The right-hand side produced by inlining `child` into `parent` at
    /// the parent's `slot`-th non-terminal occurrence (Fig. 2:
    /// `A → α B β` + `B → γ` gives `A → α γ β`).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range or the non-terminal at `slot`
    /// differs from the child's left-hand side.
    pub fn inlined_rhs(&self, parent: RuleId, slot: usize, child: RuleId) -> Vec<Symbol> {
        let p = self.rule(parent);
        let c = self.rule(child);
        assert_eq!(
            p.nt_at_slot(slot),
            c.lhs,
            "child rule does not expand the slot's non-terminal"
        );
        let pos = p.nt_slots[slot] as usize;
        let mut rhs = Vec::with_capacity(p.rhs.len() - 1 + c.rhs.len());
        rhs.extend_from_slice(&p.rhs[..pos]);
        rhs.extend_from_slice(&c.rhs);
        rhs.extend_from_slice(&p.rhs[pos + 1..]);
        rhs
    }

    /// Compute, for every non-terminal, whether it derives the empty
    /// string.
    pub fn nullable(&self) -> Vec<bool> {
        let mut nullable = vec![false; self.nt_count()];
        let mut changed = true;
        while changed {
            changed = false;
            for rule in self.rules.iter().filter(|r| r.alive) {
                if nullable[rule.lhs.index()] {
                    continue;
                }
                let all_null = rule.rhs.iter().all(|s| match s {
                    Symbol::T(_) => false,
                    Symbol::N(n) => nullable[n.index()],
                });
                if all_null {
                    nullable[rule.lhs.index()] = true;
                    changed = true;
                }
            }
        }
        nullable
    }

    /// FIRST sets as terminal bitsets, plus nullability.
    pub fn first_sets(&self) -> FirstSets {
        let nullable = self.nullable();
        let words = TERMINAL_SPACE.div_ceil(64);
        let mut first = vec![0u64; self.nt_count() * words];
        let mut changed = true;
        while changed {
            changed = false;
            for rule in self.rules.iter().filter(|r| r.alive) {
                let lhs = rule.lhs.index();
                for sym in &rule.rhs {
                    match sym {
                        Symbol::T(t) => {
                            let i = t.index();
                            let w = lhs * words + i / 64;
                            let bit = 1u64 << (i % 64);
                            if first[w] & bit == 0 {
                                first[w] |= bit;
                                changed = true;
                            }
                            break;
                        }
                        Symbol::N(n) => {
                            let src = n.index() * words;
                            let dst = lhs * words;
                            for k in 0..words {
                                let add = first[src + k] & !first[dst + k];
                                if add != 0 {
                                    first[dst + k] |= add;
                                    changed = true;
                                }
                            }
                            if !nullable[n.index()] {
                                break;
                            }
                        }
                    }
                }
            }
        }
        FirstSets {
            words,
            first,
            nullable,
        }
    }

    /// Pretty-print a rule as `<lhs> ::= sym sym …`.
    pub fn display_rule(&self, id: RuleId) -> String {
        let rule = self.rule(id);
        let mut s = format!("<{}> ::=", self.nt_name(rule.lhs));
        if rule.rhs.is_empty() {
            s.push_str(" ε");
        }
        for sym in &rule.rhs {
            match sym {
                Symbol::T(t) => s.push_str(&format!(" {t}")),
                Symbol::N(n) => s.push_str(&format!(" <{}>", self.nt_name(*n))),
            }
        }
        s
    }
}

impl Default for Grammar {
    fn default() -> Grammar {
        Grammar::new()
    }
}

impl fmt::Display for Grammar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for nt in 0..self.nt_count() {
            for &id in &self.by_nt[nt] {
                writeln!(f, "{}", self.display_rule(id))?;
            }
        }
        Ok(())
    }
}

/// FIRST sets and nullability, packed as bitsets over the terminal space.
#[derive(Debug, Clone)]
pub struct FirstSets {
    words: usize,
    first: Vec<u64>,
    nullable: Vec<bool>,
}

impl FirstSets {
    /// Whether terminal `t` can begin a string derived from `nt`.
    pub fn can_start(&self, nt: Nt, t: Terminal) -> bool {
        let i = t.index();
        self.first[nt.index() * self.words + i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Whether `nt` derives the empty string.
    pub fn nullable(&self, nt: Nt) -> bool {
        self.nullable[nt.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgr_bytecode::Opcode;

    /// S → ε | S X ;  X → a | L B ;  B → 0..3
    fn toy() -> (Grammar, Nt, Nt, Nt) {
        let mut g = Grammar::new();
        let s = g.add_nt("start");
        let x = g.add_nt("x");
        let b = g.add_nt("byte");
        g.add_rule(s, vec![], RuleOrigin::Original);
        g.add_rule(s, vec![s.into(), x.into()], RuleOrigin::Original);
        g.add_rule(x, vec![Symbol::op(Opcode::RETV)], RuleOrigin::Original);
        g.add_rule(
            x,
            vec![Symbol::op(Opcode::LIT1), b.into()],
            RuleOrigin::Original,
        );
        for v in 0..4u8 {
            g.add_rule(b, vec![Symbol::byte(v)], RuleOrigin::Original);
        }
        (g, s, x, b)
    }

    #[test]
    fn rule_indices_follow_insertion_order() {
        let (g, s, x, b) = toy();
        assert_eq!(g.rules_of(s).len(), 2);
        assert_eq!(g.rules_of(x).len(), 2);
        assert_eq!(g.rules_of(b).len(), 4);
        let id = g.rules_of(b)[2];
        assert_eq!(g.rule_index(id), 2);
        let map = g.rule_index_map();
        assert_eq!(map[id.index()], 2);
    }

    #[test]
    fn nullable_and_first() {
        let (g, s, x, b) = toy();
        let fs = g.first_sets();
        assert!(fs.nullable(s));
        assert!(!fs.nullable(x));
        assert!(!fs.nullable(b));
        assert!(fs.can_start(s, Terminal::Op(Opcode::RETV)));
        assert!(fs.can_start(s, Terminal::Op(Opcode::LIT1)));
        assert!(!fs.can_start(s, Terminal::Op(Opcode::ADDU)));
        assert!(fs.can_start(b, Terminal::Byte(3)));
        assert!(!fs.can_start(b, Terminal::Byte(200)));
    }

    #[test]
    fn inlining_splices_rhs() {
        let (mut g, s, x, b) = toy();
        let s_rec = g.rules_of(s)[1];
        let x_lit = g.rules_of(x)[1];
        // Inline X → LIT1 <byte> into S → S X.
        let rhs = g.inlined_rhs(s_rec, 1, x_lit);
        assert_eq!(rhs, vec![s.into(), Symbol::op(Opcode::LIT1), b.into()]);
        let new = g.add_rule(
            s,
            rhs,
            RuleOrigin::Inlined {
                parent: s_rec,
                slot: 1,
                child: x_lit,
            },
        );
        assert_eq!(g.rule(new).arity(), 2);
        assert_eq!(g.rule(new).nt_at_slot(0), s);
        assert_eq!(g.rule(new).nt_at_slot(1), b);
    }

    #[test]
    fn removal_shifts_indices() {
        let (mut g, s, x, b) = toy();
        let s_rec = g.rules_of(s)[1];
        let x_ret = g.rules_of(x)[0];
        let rhs = g.inlined_rhs(s_rec, 1, x_ret);
        let new = g.add_rule(
            s,
            rhs,
            RuleOrigin::Inlined {
                parent: s_rec,
                slot: 1,
                child: x_ret,
            },
        );
        let b2 = g.rules_of(b)[2];
        assert_eq!(g.rule_index(new), 2);
        g.remove_rule(new);
        assert_eq!(g.rules_of(s).len(), 2);
        assert!(!g.rule(new).alive);
        // Untouched non-terminals keep their indices.
        assert_eq!(g.rule_index(b2), 2);
        assert_eq!(g.live_rule_count(), 2 + 2 + 4);
    }

    #[test]
    #[should_panic(expected = "original rules are never removed")]
    fn original_rules_cannot_be_removed() {
        let (mut g, s, _, _) = toy();
        let id = g.rules_of(s)[0];
        g.remove_rule(id);
    }

    #[test]
    fn display_rule_is_readable() {
        let (g, s, x, _) = toy();
        assert_eq!(g.display_rule(g.rules_of(s)[0]), "<start> ::= ε");
        assert_eq!(g.display_rule(g.rules_of(s)[1]), "<start> ::= <start> <x>");
        assert_eq!(g.display_rule(g.rules_of(x)[1]), "<x> ::= LIT1 <byte>");
    }
}
