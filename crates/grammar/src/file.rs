//! The `.pgrg` grammar-file codec.
//!
//! A trained grammar travels between pipeline stages (and into the
//! registry) as a small container: magic, version, the two non-terminal
//! handles the compressed interpreter needs, then the compact
//! [`encode`](crate::encode) body. Historically this format lived in the
//! CLI as `write_grammar_file`/`read_grammar_file` returning
//! `Result<_, String>`; [`GrammarFile`] is the typed replacement every
//! embedder (CLI, registry, server) now shares.
//!
//! ```text
//! offset  size  field
//!      0     4  magic "PGRG"
//!      4     1  version (1)
//!      5     1  start non-terminal id
//!      6     1  byte non-terminal id
//!      7     …  encode::encode_grammar body
//! ```
//!
//! The serialization is canonical: `from_bytes(x).to_bytes() == x` for
//! every accepted `x`, which is what makes content-addressing (the
//! registry's `GrammarId` is a digest of these bytes) well-defined.

use crate::encode::{decode_grammar, encode_grammar, GrammarDecodeError};
use crate::grammar::Grammar;
use crate::symbol::Nt;
use std::fmt;

/// Grammar-file magic.
pub const MAGIC: &[u8; 4] = b"PGRG";

/// Current grammar-file version.
pub const VERSION: u8 = 1;

/// Bytes before the encoded grammar body: magic, version, start handle,
/// byte handle.
pub const HEADER_LEN: usize = 7;

/// A failure decoding a `.pgrg` grammar file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrammarFileError {
    /// The magic bytes are wrong (or the file is shorter than a header).
    NotAGrammarFile,
    /// The version byte is not one this build reads.
    UnsupportedVersion(u8),
    /// A non-terminal handle in the header is not declared by the body.
    BadHandle {
        /// Which handle ("start" or "byte").
        handle: &'static str,
        /// The out-of-range id.
        id: u16,
        /// How many non-terminals the body declares.
        nt_count: usize,
    },
    /// The grammar body is malformed.
    Grammar(GrammarDecodeError),
}

impl fmt::Display for GrammarFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrammarFileError::NotAGrammarFile => write!(f, "not a PGRG grammar file"),
            GrammarFileError::UnsupportedVersion(v) => {
                write!(f, "unsupported grammar version {v}")
            }
            GrammarFileError::BadHandle {
                handle,
                id,
                nt_count,
            } => write!(
                f,
                "{handle} non-terminal {id} out of range (grammar declares {nt_count})"
            ),
            GrammarFileError::Grammar(_) => write!(f, "malformed grammar body"),
        }
    }
}

impl std::error::Error for GrammarFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GrammarFileError::Grammar(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GrammarDecodeError> for GrammarFileError {
    fn from(e: GrammarDecodeError) -> GrammarFileError {
        GrammarFileError::Grammar(e)
    }
}

/// A trained grammar plus the two non-terminal handles the compressed
/// interpreter needs, as serialized in a `.pgrg` file.
#[derive(Debug, Clone)]
pub struct GrammarFile {
    /// The expanded grammar.
    pub grammar: Grammar,
    /// The segment start symbol (`<start>` of Appendix 2).
    pub start: Nt,
    /// The literal-byte non-terminal (`<byte>`), used by `interp_nt` for
    /// stream operands.
    pub byte_nt: Nt,
}

impl GrammarFile {
    /// Bundle a grammar with its interpreter handles.
    pub fn new(grammar: Grammar, start: Nt, byte_nt: Nt) -> GrammarFile {
        GrammarFile {
            grammar,
            start,
            byte_nt,
        }
    }

    /// Serialize to the canonical `.pgrg` byte form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.push(self.start.0 as u8);
        out.push(self.byte_nt.0 as u8);
        out.extend_from_slice(&encode_grammar(&self.grammar));
        out
    }

    /// Parse a `.pgrg` file.
    ///
    /// # Errors
    ///
    /// See [`GrammarFileError`]: bad magic/version, an out-of-range
    /// non-terminal handle, or a malformed grammar body.
    pub fn from_bytes(bytes: &[u8]) -> Result<GrammarFile, GrammarFileError> {
        if bytes.len() < HEADER_LEN || &bytes[..4] != MAGIC {
            return Err(GrammarFileError::NotAGrammarFile);
        }
        if bytes[4] != VERSION {
            return Err(GrammarFileError::UnsupportedVersion(bytes[4]));
        }
        let start = Nt(u16::from(bytes[5]));
        let byte_nt = Nt(u16::from(bytes[6]));
        let grammar = decode_grammar(&bytes[HEADER_LEN..])?;
        let nt_count = grammar.nt_count();
        for (handle, nt) in [("start", start), ("byte", byte_nt)] {
            if usize::from(nt.0) >= nt_count {
                return Err(GrammarFileError::BadHandle {
                    handle,
                    id: nt.0,
                    nt_count,
                });
            }
        }
        Ok(GrammarFile {
            grammar,
            start,
            byte_nt,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::initial::InitialGrammar;

    fn sample() -> GrammarFile {
        let ig = InitialGrammar::build();
        GrammarFile::new(ig.grammar, ig.nt_start, ig.nt_byte)
    }

    #[test]
    fn roundtrips_canonically() {
        let file = sample();
        let bytes = file.to_bytes();
        let back = GrammarFile::from_bytes(&bytes).unwrap();
        assert_eq!(back.start, file.start);
        assert_eq!(back.byte_nt, file.byte_nt);
        assert_eq!(back.grammar.nt_count(), file.grammar.nt_count());
        // Canonical: decoding and re-encoding reproduces the bytes, the
        // property content-addressing relies on.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn rejects_bad_headers() {
        let bytes = sample().to_bytes();
        assert_eq!(
            GrammarFile::from_bytes(&bytes[..3]).unwrap_err(),
            GrammarFileError::NotAGrammarFile
        );
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert_eq!(
            GrammarFile::from_bytes(&wrong_magic).unwrap_err(),
            GrammarFileError::NotAGrammarFile
        );
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 9;
        assert_eq!(
            GrammarFile::from_bytes(&wrong_version).unwrap_err(),
            GrammarFileError::UnsupportedVersion(9)
        );
    }

    #[test]
    fn rejects_out_of_range_handles() {
        let mut bytes = sample().to_bytes();
        bytes[5] = 200; // far beyond the initial grammar's NT count
        assert!(matches!(
            GrammarFile::from_bytes(&bytes).unwrap_err(),
            GrammarFileError::BadHandle {
                handle: "start",
                ..
            }
        ));
    }

    #[test]
    fn truncated_bodies_chain_to_the_decoder() {
        let bytes = sample().to_bytes();
        let err = GrammarFile::from_bytes(&bytes[..bytes.len() - 1]).unwrap_err();
        assert_eq!(
            err,
            GrammarFileError::Grammar(GrammarDecodeError::Truncated)
        );
        use std::error::Error as _;
        assert!(err.source().is_some());
    }
}
