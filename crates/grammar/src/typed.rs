//! A typed initial grammar — the paper's §6 exploration:
//!
//! > "The current grammar effectively tracks stack height. A more complex
//! > grammar that tracked the datatype of each element on the stack did
//! > not do significantly better."
//!
//! This variant replaces the single `<v>` non-terminal with one value
//! non-terminal per machine class — `<vi>` (integers and pointers),
//! `<vf>` (floats), `<vd>` (doubles) — and gives every operator one flat
//! rule in its result class (no `<v0>`/`<v1>`/`<v2>` grouping):
//!
//! ```text
//! <start> ::= ε | <start> <x>
//! <vi> ::= <vi> <vi> ADDU | <vd> CVDI | LIT1 <byte> | …
//! <vd> ::= <vd> <vd> ADDD | <vi> CVID | <vi> INDIRD | …
//! <x>  ::= <vi> <vi> ASGNU | <vd> <vi> ASGND | RETV | …
//! ```
//!
//! Valid bytecode still parses deterministically (every operator's
//! operand and result classes are fixed), so the training parser remains
//! a linear stack parser. The A5 ablation trains both grammars on the
//! same corpus and compares.

use crate::forest::{Forest, ForestParseError, NodeId};
use crate::grammar::{Grammar, RuleId, RuleOrigin};
use crate::symbol::{Nt, Symbol, Terminal};
use pgr_bytecode::{Opcode, TypeSuffix};

/// The tracked machine classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// 32-bit integers, pointers, chars, shorts.
    I,
    /// Single-precision floats.
    F,
    /// Double-precision floats.
    D,
}

/// Operand and result classes for one operator.
#[derive(Debug, Clone)]
pub struct OpSig {
    /// Stack operands, in push order (leftmost = pushed first).
    pub operands: Vec<Class>,
    /// Result class (`None` for statements).
    pub result: Option<Class>,
}

/// The class signature of an operator.
///
/// # Panics
///
/// Panics for `LABELV`, which has no signature.
pub fn signature(op: Opcode) -> OpSig {
    use Class::*;
    use Opcode::*;
    let sig = |operands: &[Class], result: Option<Class>| OpSig {
        operands: operands.to_vec(),
        result,
    };
    // Class of this operator's *suffix* where it describes a value.
    let suffix_class = || match op.suffix() {
        TypeSuffix::F => F,
        TypeSuffix::D => D,
        _ => I,
    };
    match op {
        LABELV => panic!("LABELV has no signature"),
        // Binary value operators work within the suffix class, except
        // comparisons, which consume the comparand class and yield a
        // flag (I).
        _ if op.kind() == pgr_bytecode::StackKind::V2 => {
            let name = op.name();
            let is_cmp = ["EQ", "NE", "LT", "LE", "GT", "GE"]
                .iter()
                .any(|p| name.starts_with(p));
            let c = suffix_class();
            if is_cmp {
                sig(&[c, c], Some(I))
            } else {
                sig(&[c, c], Some(c))
            }
        }
        // Conversions and indirections cross classes.
        CVDF => sig(&[D], Some(F)),
        CVDI => sig(&[D], Some(I)),
        CVFD => sig(&[F], Some(D)),
        CVFI => sig(&[F], Some(I)),
        CVID => sig(&[I], Some(D)),
        CVIF => sig(&[I], Some(F)),
        CVI1I4 | CVI2I4 | CVU1U4 | CVU2U4 | BCOMU => sig(&[I], Some(I)),
        INDIRC | INDIRS | INDIRU => sig(&[I], Some(I)),
        INDIRF => sig(&[I], Some(F)),
        INDIRD => sig(&[I], Some(D)),
        NEGD => sig(&[D], Some(D)),
        NEGF => sig(&[F], Some(F)),
        NEGI => sig(&[I], Some(I)),
        // Calls pop a procedure address.
        CALLD => sig(&[I], Some(D)),
        CALLF => sig(&[I], Some(F)),
        CALLU => sig(&[I], Some(I)),
        CALLV => sig(&[I], None),
        // Value leaves.
        ADDRFP | ADDRGP | ADDRLP | LIT1 | LIT2 | LIT3 | LIT4 => sig(&[], Some(I)),
        LocalCALLD => sig(&[], Some(D)),
        LocalCALLF => sig(&[], Some(F)),
        LocalCALLU => sig(&[], Some(I)),
        LocalCALLV => sig(&[], None),
        // Stores pop the value, then the address (value pushed first).
        ASGNB => sig(&[I, I], None),
        ASGNC | ASGNS | ASGNU => sig(&[I, I], None),
        ASGNF => sig(&[F, I], None),
        ASGND => sig(&[D, I], None),
        // Argument/flow statements.
        ARGB | ARGU => sig(&[I], None),
        ARGF => sig(&[F], None),
        ARGD => sig(&[D], None),
        BrTrue => sig(&[I], None),
        POPU => sig(&[I], None),
        POPF => sig(&[F], None),
        POPD => sig(&[D], None),
        RETU => sig(&[I], None),
        RETF => sig(&[F], None),
        RETD => sig(&[D], None),
        JUMPV | RETV => sig(&[], None),
        _ => unreachable!("all opcodes covered"),
    }
}

/// The typed grammar plus the lookup tables for its forest parser.
#[derive(Debug, Clone)]
pub struct TypedGrammar {
    /// The grammar (expandable, like the untyped one).
    pub grammar: Grammar,
    /// `<start>`.
    pub nt_start: Nt,
    /// `<x>`.
    pub nt_x: Nt,
    /// `<vi>`, `<vf>`, `<vd>`.
    pub nt_vi: Nt,
    /// See [`TypedGrammar::nt_vi`].
    pub nt_vf: Nt,
    /// See [`TypedGrammar::nt_vi`].
    pub nt_vd: Nt,
    /// `<byte>`.
    pub nt_byte: Nt,
    /// `<start> ::= ε`.
    pub start_empty: RuleId,
    /// `<start> ::= <start> <x>`.
    pub start_rec: RuleId,
    /// Per opcode, its (single, flat) rule. `LIT4` maps to its `<vi>`
    /// rule here; see [`TypedGrammar::lit4_vf`].
    pub opcode_rule: Vec<Option<RuleId>>,
    /// `<vf> ::= LIT4 <byte> <byte> <byte> <byte>` — a 4-byte literal is
    /// class-flexible (it may materialize a float's bits), so the parser
    /// resolves its class at the consuming operator.
    pub lit4_vf: RuleId,
    /// `byte_rules[b]` is `<byte> ::= b`.
    pub byte_rules: Vec<RuleId>,
}

impl TypedGrammar {
    /// Non-terminal of a class.
    pub fn class_nt(&self, class: Class) -> Nt {
        match class {
            Class::I => self.nt_vi,
            Class::F => self.nt_vf,
            Class::D => self.nt_vd,
        }
    }

    /// Build the typed grammar.
    pub fn build() -> TypedGrammar {
        let mut g = Grammar::new();
        let nt_start = g.add_nt("start");
        let nt_x = g.add_nt("x");
        let nt_vi = g.add_nt("vi");
        let nt_vf = g.add_nt("vf");
        let nt_vd = g.add_nt("vd");
        let nt_byte = g.add_nt("byte");
        g.set_start(nt_start);
        let o = RuleOrigin::Original;
        let start_empty = g.add_rule(nt_start, vec![], o);
        let start_rec = g.add_rule(nt_start, vec![nt_start.into(), nt_x.into()], o);

        let class_nt = |c: Class| match c {
            Class::I => nt_vi,
            Class::F => nt_vf,
            Class::D => nt_vd,
        };
        let mut opcode_rule = vec![None; Opcode::COUNT];
        for &op in Opcode::ALL {
            if op == Opcode::LABELV {
                continue;
            }
            let sig = signature(op);
            let mut rhs: Vec<Symbol> = sig
                .operands
                .iter()
                .map(|&c| Symbol::N(class_nt(c)))
                .collect();
            rhs.push(Symbol::op(op));
            rhs.extend(std::iter::repeat_n(Symbol::N(nt_byte), op.operand_bytes()));
            let lhs = match sig.result {
                Some(c) => class_nt(c),
                None => nt_x,
            };
            opcode_rule[op as usize] = Some(g.add_rule(lhs, rhs, o));
        }
        let lit4_vf = g.add_rule(
            nt_vf,
            vec![
                Symbol::op(Opcode::LIT4),
                Symbol::N(nt_byte),
                Symbol::N(nt_byte),
                Symbol::N(nt_byte),
                Symbol::N(nt_byte),
            ],
            o,
        );
        let byte_rules: Vec<RuleId> = (0..=255u8)
            .map(|b| g.add_rule(nt_byte, vec![Symbol::byte(b)], o))
            .collect();

        TypedGrammar {
            grammar: g,
            nt_start,
            nt_x,
            nt_vi,
            nt_vf,
            nt_vd,
            nt_byte,
            start_empty,
            start_rec,
            opcode_rule,
            lit4_vf,
            byte_rules,
        }
    }

    /// Parse one segment's tokens into `forest` (deterministic typed
    /// stack parse); returns the root.
    ///
    /// # Errors
    ///
    /// Fails on malformed postfix code or a class mismatch (code that is
    /// stack-balanced but type-inconsistent, which compiled code never
    /// is).
    pub fn add_segment(
        &self,
        forest: &mut Forest,
        tokens: &[Terminal],
    ) -> Result<NodeId, ForestParseError> {
        // `None` class = a 4-byte literal whose class (vi or vf) is
        // decided by its consumer.
        let mut stack: Vec<(Option<Class>, NodeId)> = Vec::new();
        let mut statements: Vec<NodeId> = Vec::new();
        let mut i = 0usize;
        while i < tokens.len() {
            let Terminal::Op(op) = tokens[i] else {
                return Err(ForestParseError::UnexpectedToken { position: i });
            };
            let Some(rule) = self.opcode_rule[op as usize] else {
                return Err(ForestParseError::UnexpectedToken { position: i });
            };
            let sig = signature(op);
            let nbytes = op.operand_bytes();

            let mut operands: Vec<NodeId> = Vec::with_capacity(sig.operands.len());
            for &class in sig.operands.iter().rev() {
                let Some((c, node)) = stack.pop() else {
                    return Err(ForestParseError::StackUnderflow { position: i });
                };
                match c {
                    Some(c) if c == class => {}
                    // Resolve a flexible literal at its consumer.
                    None if class == Class::I => {}
                    None if class == Class::F => forest.relabel(node, self.lit4_vf),
                    // Mismatch (or a 4-byte literal used as a double).
                    _ => return Err(ForestParseError::UnexpectedToken { position: i }),
                }
                operands.push(node);
            }
            operands.reverse();
            for k in 1..=nbytes {
                match tokens.get(i + k) {
                    Some(Terminal::Byte(b)) => {
                        operands.push(forest.add_leafless(self.byte_rules[*b as usize]));
                    }
                    _ => return Err(ForestParseError::UnexpectedToken { position: i + k }),
                }
            }
            let node = forest.add_with_children(rule, operands);
            match sig.result {
                Some(c) if op == Opcode::LIT4 => {
                    let _ = c;
                    stack.push((None, node));
                }
                Some(c) => stack.push((Some(c), node)),
                None => statements.push(node),
            }
            i += 1 + nbytes;
        }
        if !stack.is_empty() {
            return Err(ForestParseError::DanglingValues { depth: stack.len() });
        }
        let mut root = forest.add_leafless(self.start_empty);
        for x in statements {
            root = forest.add_with_children(self.start_rec, vec![root, x]);
        }
        forest.finish_root(root);
        Ok(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::initial::tokenize_segment;
    use pgr_bytecode::{encode, Instruction};

    fn tokens(insns: &[Instruction]) -> Vec<Terminal> {
        tokenize_segment(&encode(insns)).unwrap()
    }

    #[test]
    fn grammar_shape() {
        let tg = TypedGrammar::build();
        let g = &tg.grammar;
        assert_eq!(g.rules_of(tg.nt_start).len(), 2);
        // All I-result operators live under <vi>.
        assert!(g.rules_of(tg.nt_vi).len() > 40);
        assert!(g.rules_of(tg.nt_vd).len() >= 10);
        assert_eq!(g.rules_of(tg.nt_byte).len(), 256);
        // Every rule's RHS: operands, op, bytes.
        let r = g.rule(tg.opcode_rule[Opcode::ASGND as usize].unwrap());
        assert_eq!(r.lhs, tg.nt_x);
        assert_eq!(
            r.rhs,
            vec![
                Symbol::N(tg.nt_vd),
                Symbol::N(tg.nt_vi),
                Symbol::op(Opcode::ASGND)
            ]
        );
    }

    #[test]
    fn typed_parse_accepts_compiled_shapes() {
        let tg = TypedGrammar::build();
        let mut forest = Forest::new();
        // x (int local) = (int)(1.5 + 2.5): LIT4 f; CVFD; LIT4 f; CVFD;
        // ADDD; CVDI; ADDRLP; ASGNU
        let toks = tokens(&[
            Instruction::new(Opcode::LIT4, &1.5f32.to_bits().to_le_bytes()),
            Instruction::op(Opcode::CVFD),
            Instruction::new(Opcode::LIT4, &2.5f32.to_bits().to_le_bytes()),
            Instruction::op(Opcode::CVFD),
            Instruction::op(Opcode::ADDD),
            Instruction::op(Opcode::CVDI),
            Instruction::with_u16(Opcode::ADDRLP, 0),
            Instruction::op(Opcode::ASGNU),
        ]);
        let root = tg.add_segment(&mut forest, &toks).unwrap();
        assert_eq!(forest.yield_string(&tg.grammar, root), toks);
    }

    #[test]
    fn class_mismatch_is_rejected() {
        let tg = TypedGrammar::build();
        let mut forest = Forest::new();
        // ADDD on two integer literals: stack-balanced but ill-typed.
        let toks = tokens(&[
            Instruction::new(Opcode::LIT1, &[1]),
            Instruction::new(Opcode::LIT1, &[2]),
            Instruction::op(Opcode::ADDD),
            Instruction::op(Opcode::POPD),
        ]);
        assert!(tg.add_segment(&mut forest, &toks).is_err());
    }

    #[test]
    fn typed_derivations_are_shorter_than_untyped() {
        // The flat rules skip the <v0>/<v1>/<v2> indirection, so even the
        // *initial* typed grammar derives programs in fewer steps.
        let tg = TypedGrammar::build();
        let ig = crate::initial::InitialGrammar::build();
        let toks = tokens(&[
            Instruction::with_u16(Opcode::ADDRLP, 0),
            Instruction::op(Opcode::INDIRU),
            Instruction::new(Opcode::LIT1, &[1]),
            Instruction::op(Opcode::ADDU),
            Instruction::with_u16(Opcode::ADDRLP, 0),
            Instruction::op(Opcode::ASGNU),
        ]);
        let mut tf = Forest::new();
        tg.add_segment(&mut tf, &toks).unwrap();
        let mut uf = Forest::new();
        uf.add_segment(&ig, &toks).unwrap();
        assert!(tf.live_count() < uf.live_count());
    }
}
