//! # pgr-grammar
//!
//! Context-free grammar machinery for *Bytecode Compression via Profiled
//! Grammar Rewriting* (Evans & Fraser, PLDI 2001, §4.1 and Appendix 2).
//!
//! The compression scheme is "based on a grammar that describes the set of
//! legal instruction sequences"; programs are represented by their leftmost
//! derivations. This crate provides:
//!
//! * [`Terminal`], [`Nt`], [`Symbol`] — the symbol alphabet: terminals are
//!   opcodes and literal bytes, non-terminals are small indices,
//! * [`Grammar`], [`Rule`], [`RuleId`] — a mutable rule arena that keeps
//!   per-non-terminal rule order (a rule's *index* within its non-terminal
//!   is its compressed encoding byte),
//! * [`initial::InitialGrammar`] — the paper's Appendix 2 grammar for the
//!   initial bytecode, with opcode→rule lookup tables and a tokenizer,
//! * [`forest`] — parse forests and the deterministic postfix parser that
//!   builds them from training code (restarting at every `LABELV`, §4.1),
//! * [`derivation`] — leftmost derivations: extraction from parse trees,
//!   expansion back to terminal strings, and byte encoding/decoding,
//! * [`encode`] — the compact binary grammar serialization whose byte size
//!   is reported by the interpreter-size experiments (§6),
//! * [`file`] — the `.pgrg` container (`GrammarFile`): the canonical
//!   on-disk form the CLI writes and the registry content-addresses.

#![warn(missing_docs)]

pub mod derivation;
pub mod encode;
pub mod file;
pub mod forest;
pub mod grammar;
pub mod initial;
pub mod symbol;
pub mod tables;
pub mod typed;

pub use derivation::Derivation;
pub use file::{GrammarFile, GrammarFileError};
pub use forest::{Forest, NodeId};
pub use grammar::{Grammar, Rule, RuleId, RuleOrigin};
pub use initial::InitialGrammar;
pub use symbol::{Nt, Symbol, Terminal};
pub use tables::{PackedSym, RuleTable};
