//! Parse forests and the deterministic training parser (§4.1).
//!
//! "The parse produces a forest since we restart the parser from the start
//! non-terminal at every potential branch target (i.e. LABELV)." Each
//! internal node is labeled with a rule; a node's children correspond, in
//! order, to the non-terminal occurrences of the rule's right-hand side
//! (terminal leaves are implicit in the rule itself).
//!
//! Valid postfix bytecode parses *uniquely* under the initial grammar —
//! every opcode belongs to exactly one of the v0/v1/v2/x0/x1/x2 groups —
//! so the builder is a linear-time stack parser, not a general CFG parser.
//! The expander contracts edges of this forest (Fig. 2); the
//! [`Forest::contract`] and [`Forest::relabel`] mutators support exactly
//! that operation.

use crate::grammar::RuleId;
use crate::initial::InitialGrammar;
use crate::symbol::{Symbol, Terminal};
use pgr_bytecode::StackKind;
use std::fmt;

/// Index of a node in a [`Forest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    const NONE: NodeId = NodeId(u32::MAX);

    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A parse-tree node.
#[derive(Debug, Clone)]
pub struct Node {
    /// The rule labeling this node.
    pub rule: RuleId,
    /// One child per non-terminal occurrence of the rule's right-hand
    /// side, in left-to-right order.
    pub children: Vec<NodeId>,
    parent: NodeId,
    alive: bool,
}

impl Node {
    /// The parent node, if any.
    pub fn parent(&self) -> Option<NodeId> {
        (self.parent != NodeId::NONE).then_some(self.parent)
    }

    /// Whether the node is still part of the forest (contracted nodes are
    /// tombstoned).
    pub fn alive(&self) -> bool {
        self.alive
    }
}

/// An error from the deterministic forest parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForestParseError {
    /// A `LABELV` or malformed token stream reached the parser.
    UnexpectedToken {
        /// Token position of the problem.
        position: usize,
    },
    /// An operator needed more stack operands than were available
    /// (ill-formed postfix code).
    StackUnderflow {
        /// Token position of the operator.
        position: usize,
    },
    /// The segment ended with unconsumed values on the stack (an
    /// incomplete statement).
    DanglingValues {
        /// Leftover value count.
        depth: usize,
    },
}

impl fmt::Display for ForestParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForestParseError::UnexpectedToken { position } => {
                write!(f, "unexpected token at position {position}")
            }
            ForestParseError::StackUnderflow { position } => {
                write!(f, "stack underflow at position {position}")
            }
            ForestParseError::DanglingValues { depth } => {
                write!(f, "segment ends with {depth} values on the stack")
            }
        }
    }
}

impl std::error::Error for ForestParseError {}

/// A forest of parse trees, one root per straight-line segment.
#[derive(Debug, Clone, Default)]
pub struct Forest {
    nodes: Vec<Node>,
    roots: Vec<NodeId>,
    live: usize,
}

impl Forest {
    /// Create an empty forest.
    pub fn new() -> Forest {
        Forest::default()
    }

    /// Parse one segment's tokens and add its tree; returns the root.
    ///
    /// # Errors
    ///
    /// See [`ForestParseError`].
    pub fn add_segment(
        &mut self,
        ig: &InitialGrammar,
        tokens: &[Terminal],
    ) -> Result<NodeId, ForestParseError> {
        let mut vstack: Vec<NodeId> = Vec::new();
        let mut statements: Vec<NodeId> = Vec::new();
        let mut i = 0usize;
        while i < tokens.len() {
            let Terminal::Op(op) = tokens[i] else {
                return Err(ForestParseError::UnexpectedToken { position: i });
            };
            let Some(group_rule) = ig.opcode_rule[op as usize] else {
                return Err(ForestParseError::UnexpectedToken { position: i });
            };
            let nbytes = op.operand_bytes();
            let mut operand_children = Vec::with_capacity(nbytes);
            for k in 1..=nbytes {
                match tokens.get(i + k) {
                    Some(Terminal::Byte(b)) => {
                        operand_children.push(self.add_node(ig.byte_rules[*b as usize], vec![]));
                    }
                    _ => return Err(ForestParseError::UnexpectedToken { position: i + k }),
                }
            }
            let group = self.add_node(group_rule, operand_children);
            match op.kind() {
                StackKind::V0 => {
                    let n = self.add_node(ig.v_leaf, vec![group]);
                    vstack.push(n);
                }
                StackKind::V1 => {
                    let a = vstack
                        .pop()
                        .ok_or(ForestParseError::StackUnderflow { position: i })?;
                    vstack.push(self.add_node(ig.v_unary, vec![a, group]));
                }
                StackKind::V2 => {
                    let b = vstack
                        .pop()
                        .ok_or(ForestParseError::StackUnderflow { position: i })?;
                    let a = vstack
                        .pop()
                        .ok_or(ForestParseError::StackUnderflow { position: i })?;
                    vstack.push(self.add_node(ig.v_binary, vec![a, b, group]));
                }
                StackKind::X0 => {
                    statements.push(self.add_node(ig.x_leaf, vec![group]));
                }
                StackKind::X1 => {
                    let a = vstack
                        .pop()
                        .ok_or(ForestParseError::StackUnderflow { position: i })?;
                    statements.push(self.add_node(ig.x_unary, vec![a, group]));
                }
                StackKind::X2 => {
                    let b = vstack
                        .pop()
                        .ok_or(ForestParseError::StackUnderflow { position: i })?;
                    let a = vstack
                        .pop()
                        .ok_or(ForestParseError::StackUnderflow { position: i })?;
                    statements.push(self.add_node(ig.x_binary, vec![a, b, group]));
                }
                StackKind::Label => {
                    return Err(ForestParseError::UnexpectedToken { position: i });
                }
            }
            i += 1 + nbytes;
        }
        if !vstack.is_empty() {
            return Err(ForestParseError::DanglingValues {
                depth: vstack.len(),
            });
        }
        let mut root = self.add_node(ig.start_empty, vec![]);
        for x in statements {
            root = self.add_node(ig.start_rec, vec![root, x]);
        }
        self.roots.push(root);
        Ok(root)
    }

    /// Add a childless node (a leaf rule application). Building blocks
    /// for alternative deterministic parsers (e.g. the typed grammar's).
    pub fn add_leafless(&mut self, rule: RuleId) -> NodeId {
        self.add_node(rule, Vec::new())
    }

    /// Add a node whose children (one per non-terminal occurrence of the
    /// rule's right-hand side, in order) already exist.
    pub fn add_with_children(&mut self, rule: RuleId, children: Vec<NodeId>) -> NodeId {
        self.add_node(rule, children)
    }

    /// Register a fully built tree as a segment root.
    pub fn finish_root(&mut self, root: NodeId) {
        self.roots.push(root);
    }

    fn add_node(&mut self, rule: RuleId, children: Vec<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        for &c in &children {
            self.nodes[c.index()].parent = id;
        }
        self.nodes.push(Node {
            rule,
            children,
            parent: NodeId::NONE,
            alive: true,
        });
        self.live += 1;
        id
    }

    /// Access a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Segment roots, in input order.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Number of live (non-contracted) nodes. This is the length of the
    /// derivation the forest represents; each contraction shrinks it by
    /// one (§4.1).
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Total node slots including tombstones.
    pub fn node_slots(&self) -> usize {
        self.nodes.len()
    }

    /// Relabel a node with a new rule (used together with
    /// [`Forest::contract`] during edge contraction).
    pub fn relabel(&mut self, id: NodeId, rule: RuleId) {
        debug_assert!(self.nodes[id.index()].alive);
        self.nodes[id.index()].rule = rule;
    }

    /// Contract the edge from `child`'s parent to `child` (Fig. 2): the
    /// children of `child` replace `child` in the parent's child list,
    /// and `child` is tombstoned. Returns the parent.
    ///
    /// The caller is responsible for relabeling the parent with the
    /// inlined rule; the forest only performs the structural splice.
    ///
    /// # Panics
    ///
    /// Panics if `child` has no parent or is already dead.
    pub fn contract(&mut self, child: NodeId) -> NodeId {
        let c = &self.nodes[child.index()];
        assert!(c.alive, "contracting a dead node");
        let parent = c.parent;
        assert!(parent != NodeId::NONE, "contracting a root");
        let grandchildren = std::mem::take(&mut self.nodes[child.index()].children);
        self.nodes[child.index()].alive = false;
        self.live -= 1;
        for &gc in &grandchildren {
            self.nodes[gc.index()].parent = parent;
        }
        let p = &mut self.nodes[parent.index()];
        let pos = p
            .children
            .iter()
            .position(|&k| k == child)
            .expect("child is listed under its parent");
        p.children.splice(pos..=pos, grandchildren);
        self.nodes[child.index()].parent = NodeId::NONE;
        parent
    }

    /// Position of `child` among its parent's children (its non-terminal
    /// slot).
    ///
    /// # Panics
    ///
    /// Panics if `child` has no parent.
    pub fn slot_of(&self, child: NodeId) -> usize {
        let parent = self.nodes[child.index()].parent;
        assert!(parent != NodeId::NONE);
        self.nodes[parent.index()]
            .children
            .iter()
            .position(|&k| k == child)
            .expect("child is listed under its parent")
    }

    /// The terminal string derived by the subtree rooted at `id`, given
    /// the grammar the forest's rules live in.
    pub fn yield_string(&self, grammar: &crate::grammar::Grammar, id: NodeId) -> Vec<Terminal> {
        let mut out = Vec::new();
        // Explicit stack of (node, next RHS position, next child slot).
        let mut stack = vec![(id, 0usize, 0usize)];
        while let Some((node_id, mut pos, slot)) = stack.pop() {
            let node = self.node(node_id);
            let rule = grammar.rule(node.rule);
            while pos < rule.rhs.len() {
                match rule.rhs[pos] {
                    Symbol::T(t) => {
                        out.push(t);
                        pos += 1;
                    }
                    Symbol::N(_) => {
                        let child = node.children[slot];
                        stack.push((node_id, pos + 1, slot + 1));
                        stack.push((child, 0, 0));
                        break;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::initial::tokenize_segment;
    use pgr_bytecode::{encode, Instruction, Opcode};

    fn paper_example_tokens() -> Vec<Terminal> {
        // First segment of the paper's `check` example (§4):
        // ADDRFP 0 0  INDIRU  LIT1 0  NEU  BrTrue 0 0  LIT1 0  ARGU
        // ADDRGP 0 0  CALLU  POPU
        let code = encode(&[
            Instruction::with_u16(Opcode::ADDRFP, 0),
            Instruction::op(Opcode::INDIRU),
            Instruction::new(Opcode::LIT1, &[0]),
            Instruction::op(Opcode::NEU),
            Instruction::with_u16(Opcode::BrTrue, 0),
            Instruction::new(Opcode::LIT1, &[0]),
            Instruction::op(Opcode::ARGU),
            Instruction::with_u16(Opcode::ADDRGP, 0),
            Instruction::op(Opcode::CALLU),
            Instruction::op(Opcode::POPU),
        ]);
        tokenize_segment(&code).unwrap()
    }

    #[test]
    fn parses_the_paper_example() {
        let ig = InitialGrammar::build();
        let mut forest = Forest::new();
        let tokens = paper_example_tokens();
        let root = forest.add_segment(&ig, &tokens).unwrap();
        // The yield must reproduce the token string exactly.
        assert_eq!(forest.yield_string(&ig.grammar, root), tokens);
        // Three statements -> the start spine has 3 recursive nodes + ε.
        let mut spine = 0;
        let mut n = root;
        loop {
            let node = forest.node(n);
            if node.rule == ig.start_empty {
                break;
            }
            assert_eq!(node.rule, ig.start_rec);
            spine += 1;
            n = node.children[0];
        }
        assert_eq!(spine, 3);
    }

    #[test]
    fn second_segment_is_a_separate_tree() {
        let ig = InitialGrammar::build();
        let mut forest = Forest::new();
        let t1 = paper_example_tokens();
        let t2 = tokenize_segment(&[Opcode::RETV as u8]).unwrap();
        let r1 = forest.add_segment(&ig, &t1).unwrap();
        let r2 = forest.add_segment(&ig, &t2).unwrap();
        assert_eq!(forest.roots(), &[r1, r2]);
        assert_eq!(forest.yield_string(&ig.grammar, r2), t2);
    }

    #[test]
    fn underflow_is_reported() {
        let ig = InitialGrammar::build();
        let mut forest = Forest::new();
        let tokens = tokenize_segment(&[Opcode::ADDU as u8]).unwrap();
        assert!(matches!(
            forest.add_segment(&ig, &tokens),
            Err(ForestParseError::StackUnderflow { position: 0 })
        ));
    }

    #[test]
    fn dangling_value_is_reported() {
        let ig = InitialGrammar::build();
        let mut forest = Forest::new();
        let tokens = tokenize_segment(&[Opcode::LIT1 as u8, 7]).unwrap();
        assert!(matches!(
            forest.add_segment(&ig, &tokens),
            Err(ForestParseError::DanglingValues { depth: 1 })
        ));
    }

    #[test]
    fn contraction_preserves_yield_and_shrinks_derivation() {
        let ig = InitialGrammar::build();
        let mut forest = Forest::new();
        let tokens = paper_example_tokens();
        let root = forest.add_segment(&ig, &tokens).unwrap();
        let before = forest.live_count();

        // Contract the edge from the root (start_rec) to its <x> child,
        // mimicking one inline step. We relabel with an actual inlined
        // rule so the yield stays well-defined.
        let x_child = forest.node(root).children[1];
        let x_rule = forest.node(x_child).rule;
        let mut g2 = ig.grammar.clone();
        let new_rhs = g2.inlined_rhs(ig.start_rec, 1, x_rule);
        let new_rule = g2.add_rule(
            ig.nt_start,
            new_rhs,
            crate::grammar::RuleOrigin::Inlined {
                parent: ig.start_rec,
                slot: 1,
                child: x_rule,
            },
        );
        let parent = forest.contract(x_child);
        assert_eq!(parent, root);
        forest.relabel(root, new_rule);

        assert_eq!(forest.live_count(), before - 1);
        assert!(!forest.node(x_child).alive());
        assert_eq!(forest.yield_string(&g2, root), tokens);
    }

    #[test]
    fn slot_of_locates_children() {
        let ig = InitialGrammar::build();
        let mut forest = Forest::new();
        let tokens = paper_example_tokens();
        let root = forest.add_segment(&ig, &tokens).unwrap();
        let kids = forest.node(root).children.clone();
        assert_eq!(forest.slot_of(kids[0]), 0);
        assert_eq!(forest.slot_of(kids[1]), 1);
        assert_eq!(forest.node(kids[1]).parent(), Some(root));
        assert_eq!(forest.node(root).parent(), None);
    }
}
