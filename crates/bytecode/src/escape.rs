//! The verbatim-segment escape encoding.
//!
//! Graceful degradation for the compressor: when a segment has no
//! derivation under the expanded grammar (or the Earley work budget
//! trips first), the engine emits the segment *verbatim* — a reserved
//! marker byte, a little-endian `u16` length, and the raw canonical
//! bytecode — instead of failing the whole program. The decompressor and
//! both compressed-mode interpreter paths recognize the marker and copy
//! or execute the raw bytes directly.
//!
//! The marker must be unambiguous against derivation bytes. A derivation
//! byte at a segment start indexes into the start non-terminal's rule
//! list, so `0xFF` is free exactly when that list has at most 255 rules;
//! the trainer reserves the last slot (`ExpanderConfig::escape_reserve`
//! in `pgr-core`) so saturation can never claim it. Consumers still
//! gate on the actual rule count — a grammar built without the
//! reservation simply has no escape available and stays strict.
//!
//! ```
//! use pgr_bytecode::escape::{self, VERBATIM_HEADER, VERBATIM_MARKER};
//!
//! let raw = [1u8, 2, 3];
//! let enc = escape::encode_verbatim(&raw).unwrap();
//! assert_eq!(enc[0], VERBATIM_MARKER);
//! assert_eq!(escape::decode_verbatim_header(&enc), Some(raw.len()));
//! assert_eq!(&enc[VERBATIM_HEADER..], &raw);
//! ```

/// The escape marker: the one start-rule index the trainer keeps
/// unassigned.
pub const VERBATIM_MARKER: u8 = 0xFF;

/// Bytes of escape framing before the raw payload: the marker plus a
/// little-endian `u16` payload length.
pub const VERBATIM_HEADER: usize = 3;

/// Longest raw segment an escape can carry (the `u16` length field's
/// range). Segments are delimited by `LABELV` markers and are far
/// shorter in practice.
pub const VERBATIM_MAX_LEN: usize = u16::MAX as usize;

/// Encode `raw` as a verbatim escape, or `None` if it exceeds
/// [`VERBATIM_MAX_LEN`].
pub fn encode_verbatim(raw: &[u8]) -> Option<Vec<u8>> {
    if raw.len() > VERBATIM_MAX_LEN {
        return None;
    }
    let mut out = Vec::with_capacity(VERBATIM_HEADER + raw.len());
    out.push(VERBATIM_MARKER);
    out.extend_from_slice(&(raw.len() as u16).to_le_bytes());
    out.extend_from_slice(raw);
    Some(out)
}

/// If `stream` begins with a complete escape header, return the raw
/// payload's length (the payload itself starts at
/// `stream[VERBATIM_HEADER..]` and is *not* bounds-checked here —
/// callers validate it against their own stream limits).
pub fn decode_verbatim_header(stream: &[u8]) -> Option<usize> {
    if stream.len() < VERBATIM_HEADER || stream[0] != VERBATIM_MARKER {
        return None;
    }
    Some(usize::from(u16::from_le_bytes([stream[1], stream[2]])))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_and_rejects_oversize() {
        let raw: Vec<u8> = (0..=255).cycle().take(1000).collect();
        let enc = encode_verbatim(&raw).unwrap();
        assert_eq!(enc.len(), VERBATIM_HEADER + raw.len());
        assert_eq!(decode_verbatim_header(&enc), Some(raw.len()));
        assert_eq!(&enc[VERBATIM_HEADER..], &raw[..]);

        // Empty segments encode too (a program can have empty segments
        // between adjacent labels).
        assert_eq!(
            decode_verbatim_header(&encode_verbatim(&[]).unwrap()),
            Some(0)
        );

        assert!(encode_verbatim(&vec![0u8; VERBATIM_MAX_LEN]).is_some());
        assert!(encode_verbatim(&vec![0u8; VERBATIM_MAX_LEN + 1]).is_none());

        // Not an escape: wrong marker or truncated header.
        assert_eq!(decode_verbatim_header(&[0x00, 1, 0]), None);
        assert_eq!(decode_verbatim_header(&[VERBATIM_MARKER, 1]), None);
    }
}
