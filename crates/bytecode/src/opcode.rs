//! The instruction set (Appendix 1) and its stack-effect classification
//! (the non-terminal grouping of Appendix 2).
//!
//! Operator names consist of a generic base (`ADD`, `INDIR`, …) and a type
//! suffix: `V` void, `C`/`S` char/short, `I`/`U` signed/unsigned int,
//! `F`/`D` float/double, `B` memory block. Sign-agnostic integer operators
//! exist only in their `U` form (there is no `ADDI`; signed and unsigned
//! addition coincide on two's-complement machines), exactly as in the
//! paper's Appendix 2 grammar.

use std::fmt;

/// Stack-effect class of an operator.
///
/// These mirror the grammar's non-terminals: `V*` classes push a value,
/// `X*` classes are executed for a side effect, and the digit is the
/// number of stack operands consumed. `Label` marks `LABELV`, which "is
/// not an operator itself" (§4.1) but a branch-target marker in the
/// uncompressed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StackKind {
    /// Leaf producing a value (`<v0>`): pops 0, pushes 1.
    V0,
    /// Unary value operator (`<v1>`): pops 1, pushes 1.
    V1,
    /// Binary value operator (`<v2>`): pops 2, pushes 1.
    V2,
    /// Leaf statement (`<x0>`): pops 0, pushes 0.
    X0,
    /// Unary statement (`<x1>`): pops 1, pushes 0.
    X1,
    /// Binary statement (`<x2>`): pops 2, pushes 0.
    X2,
    /// Branch-target marker (`LABELV`), not part of the grammar.
    Label,
}

impl StackKind {
    /// Number of stack operands the class consumes.
    pub fn pops(self) -> usize {
        match self {
            StackKind::V0 | StackKind::X0 | StackKind::Label => 0,
            StackKind::V1 | StackKind::X1 => 1,
            StackKind::V2 | StackKind::X2 => 2,
        }
    }

    /// Whether the class pushes a result value.
    pub fn pushes(self) -> bool {
        matches!(self, StackKind::V0 | StackKind::V1 | StackKind::V2)
    }
}

/// Result-type suffix of an operator (Appendix 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TypeSuffix {
    /// No value.
    V,
    /// `char` (1 byte).
    C,
    /// `short` (2 bytes).
    S,
    /// Signed 32-bit integer.
    I,
    /// Unsigned 32-bit integer (also pointers).
    U,
    /// Single-precision float.
    F,
    /// Double-precision float.
    D,
    /// Memory block.
    B,
}

macro_rules! opcodes {
    ($( $name:ident = ($kind:ident, $suffix:ident, $operands:expr, $text:expr) ),+ $(,)?) => {
        /// An operator of the initial bytecode.
        ///
        /// The discriminant is the operator's encoding byte. The set is the
        /// paper's Appendix 2 terminal alphabet plus `LABELV`.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[allow(non_camel_case_types)]
        #[repr(u8)]
        pub enum Opcode {
            $( #[doc = $text] $name, )+
        }

        impl Opcode {
            /// All opcodes, in encoding order.
            pub const ALL: &'static [Opcode] = &[ $( Opcode::$name, )+ ];

            /// Stack-effect class (Appendix 2 non-terminal group).
            pub fn kind(self) -> StackKind {
                match self { $( Opcode::$name => StackKind::$kind, )+ }
            }

            /// Result-type suffix.
            pub fn suffix(self) -> TypeSuffix {
                match self { $( Opcode::$name => TypeSuffix::$suffix, )+ }
            }

            /// Number of literal operand bytes following the opcode in the
            /// instruction stream (the `<byte>` symbols of Appendix 2).
            pub fn operand_bytes(self) -> usize {
                match self { $( Opcode::$name => $operands, )+ }
            }

            /// Mnemonic as used by the assembler/disassembler.
            pub fn name(self) -> &'static str {
                match self { $( Opcode::$name => stringify!($name), )+ }
            }

            /// Decode an encoding byte.
            pub fn from_u8(b: u8) -> Option<Opcode> {
                Opcode::ALL.get(b as usize).copied()
            }

            /// Look up an opcode by its mnemonic.
            pub fn from_name(s: &str) -> Option<Opcode> {
                Opcode::ALL.iter().copied().find(|op| op.name() == s)
            }
        }
    };
}

opcodes! {
    // <v2>: binary value operators.
    ADDD  = (V2, D, 0, "Double addition."),
    DIVD  = (V2, D, 0, "Double division."),
    MULD  = (V2, D, 0, "Double multiplication."),
    SUBD  = (V2, D, 0, "Double subtraction."),
    ADDF  = (V2, F, 0, "Float addition."),
    DIVF  = (V2, F, 0, "Float division."),
    MULF  = (V2, F, 0, "Float multiplication."),
    SUBF  = (V2, F, 0, "Float subtraction."),
    DIVI  = (V2, I, 0, "Signed division."),
    MODI  = (V2, I, 0, "Signed remainder."),
    MULI  = (V2, I, 0, "Signed multiplication."),
    ADDU  = (V2, U, 0, "Integer/pointer addition (sign-agnostic)."),
    DIVU  = (V2, U, 0, "Unsigned division."),
    MODU  = (V2, U, 0, "Unsigned remainder."),
    MULU  = (V2, U, 0, "Unsigned multiplication."),
    SUBU  = (V2, U, 0, "Integer/pointer subtraction (sign-agnostic)."),
    BANDU = (V2, U, 0, "Bit-wise AND."),
    BORU  = (V2, U, 0, "Bit-wise OR."),
    BXORU = (V2, U, 0, "Bit-wise XOR."),
    EQD   = (V2, D, 0, "Double compare ==, push 0 or 1."),
    GED   = (V2, D, 0, "Double compare >=, push 0 or 1."),
    GTD   = (V2, D, 0, "Double compare >, push 0 or 1."),
    LED   = (V2, D, 0, "Double compare <=, push 0 or 1."),
    LTD   = (V2, D, 0, "Double compare <, push 0 or 1."),
    NED   = (V2, D, 0, "Double compare !=, push 0 or 1."),
    EQF   = (V2, F, 0, "Float compare ==, push 0 or 1."),
    GEF   = (V2, F, 0, "Float compare >=, push 0 or 1."),
    GTF   = (V2, F, 0, "Float compare >, push 0 or 1."),
    LEF   = (V2, F, 0, "Float compare <=, push 0 or 1."),
    LTF   = (V2, F, 0, "Float compare <, push 0 or 1."),
    NEF   = (V2, F, 0, "Float compare !=, push 0 or 1."),
    GEI   = (V2, I, 0, "Signed compare >=, push 0 or 1."),
    GTI   = (V2, I, 0, "Signed compare >, push 0 or 1."),
    LEI   = (V2, I, 0, "Signed compare <=, push 0 or 1."),
    LTI   = (V2, I, 0, "Signed compare <, push 0 or 1."),
    EQU   = (V2, U, 0, "Integer compare == (sign-agnostic), push 0 or 1."),
    GEU   = (V2, U, 0, "Unsigned compare >=, push 0 or 1."),
    GTU   = (V2, U, 0, "Unsigned compare >, push 0 or 1."),
    LEU   = (V2, U, 0, "Unsigned compare <=, push 0 or 1."),
    LTU   = (V2, U, 0, "Unsigned compare <, push 0 or 1."),
    NEU   = (V2, U, 0, "Integer compare != (sign-agnostic), push 0 or 1."),
    LSHI  = (V2, I, 0, "Left shift (signed result)."),
    LSHU  = (V2, U, 0, "Left shift (unsigned result)."),
    RSHI  = (V2, I, 0, "Arithmetic right shift."),
    RSHU  = (V2, U, 0, "Logical right shift."),

    // <v1>: unary value operators.
    BCOMU  = (V1, U, 0, "Bit-wise complement."),
    CALLD  = (V1, D, 0, "Pop procedure address, call, push double result."),
    CALLF  = (V1, F, 0, "Pop procedure address, call, push float result."),
    CALLU  = (V1, U, 0, "Pop procedure address, call, push integer result."),
    CVDF   = (V1, F, 0, "Convert double to float."),
    CVDI   = (V1, I, 0, "Convert double to signed int."),
    CVFD   = (V1, D, 0, "Convert float to double."),
    CVFI   = (V1, I, 0, "Convert float to signed int."),
    CVID   = (V1, D, 0, "Convert signed int to double."),
    CVIF   = (V1, F, 0, "Convert signed int to float."),
    CVI1I4 = (V1, I, 0, "Sign-extend char to int."),
    CVI2I4 = (V1, I, 0, "Sign-extend short to int."),
    CVU1U4 = (V1, U, 0, "Zero-extend char to unsigned."),
    CVU2U4 = (V1, U, 0, "Zero-extend short to unsigned."),
    INDIRC = (V1, C, 0, "Pop p, push *(char *)p (zero-extended)."),
    INDIRS = (V1, S, 0, "Pop p, push *(short *)p (zero-extended)."),
    INDIRU = (V1, U, 0, "Pop p, push *(unsigned *)p."),
    INDIRD = (V1, D, 0, "Pop p, push *(double *)p."),
    INDIRF = (V1, F, 0, "Pop p, push *(float *)p."),
    NEGD   = (V1, D, 0, "Double negation."),
    NEGF   = (V1, F, 0, "Float negation."),
    NEGI   = (V1, I, 0, "Integer negation."),

    // <v0>: value leaves (prefix format, literal operand bytes follow).
    ADDRFP     = (V0, U, 2, "Push address of formal; 2-byte frame offset."),
    ADDRGP     = (V0, U, 2, "Push address of global; 2-byte global-table index."),
    ADDRLP     = (V0, U, 2, "Push address of local; 2-byte frame offset."),
    LocalCALLD = (V0, D, 2, "Direct call, double result; 2-byte descriptor index."),
    LocalCALLF = (V0, F, 2, "Direct call, float result; 2-byte descriptor index."),
    LocalCALLU = (V0, U, 2, "Direct call, integer result; 2-byte descriptor index."),
    LIT1       = (V0, U, 1, "Push 1 literal byte (zero-extended)."),
    LIT2       = (V0, U, 2, "Push 2 literal bytes (little-endian, zero-extended)."),
    LIT3       = (V0, U, 3, "Push 3 literal bytes (little-endian, zero-extended)."),
    LIT4       = (V0, U, 4, "Push 4 literal bytes (little-endian)."),

    // <x2>: binary statements.
    ASGNB = (X2, B, 2, "Pop p and q, copy a block from q to *p; 2-byte block size.\n\nDeviation from Appendix 2: lcc's block operators carry a size attribute that the appendix elides; we encode it as two literal bytes."),
    ASGNC = (X2, C, 0, "Pop p and v, store low byte of v to *p."),
    ASGNS = (X2, S, 0, "Pop p and v, store low 2 bytes of v to *p."),
    ASGNU = (X2, U, 0, "Pop p and v, store 4-byte v to *p."),
    ASGND = (X2, D, 0, "Pop p and v, store 8-byte double v to *p."),
    ASGNF = (X2, F, 0, "Pop p and v, store 4-byte float v to *p."),

    // <x1>: unary statements.
    ARGB   = (X1, B, 2, "Pop block address, pass block as next outgoing argument; 2-byte block size (see ASGNB note)."),
    ARGD   = (X1, D, 0, "Top is next outgoing double argument."),
    ARGF   = (X1, F, 0, "Top is next outgoing float argument."),
    ARGU   = (X1, U, 0, "Top is next outgoing integer/pointer argument."),
    BrTrue = (X1, V, 2, "Pop flag; branch if non-zero. 2-byte label-table index."),
    CALLV  = (X1, V, 0, "Pop procedure address, call, discard result."),
    POPD   = (X1, D, 0, "Discard top double."),
    POPF   = (X1, F, 0, "Discard top float."),
    POPU   = (X1, U, 0, "Discard top integer/pointer."),
    RETD   = (X1, D, 0, "Return double atop the stack."),
    RETF   = (X1, F, 0, "Return float atop the stack."),
    RETU   = (X1, U, 0, "Return integer/pointer atop the stack."),

    // <x0>: leaf statements.
    JUMPV      = (X0, V, 2, "Unconditional jump; 2-byte label-table index."),
    LocalCALLV = (X0, V, 2, "Direct call, no result; 2-byte descriptor index."),
    RETV       = (X0, V, 0, "Return with no value."),

    // Branch-target marker: present in uncompressed streams, a no-op when
    // executed, never part of the grammar.
    LABELV = (Label, V, 0, "Branch-target marker; not an operator (§4.1)."),
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Opcode {
    /// Total number of opcodes (including `LABELV`).
    pub const COUNT: usize = Opcode::ALL.len();

    /// Whether this opcode's literal operand is a label-table index.
    pub fn is_branch(self) -> bool {
        matches!(self, Opcode::BrTrue | Opcode::JUMPV)
    }

    /// Whether this opcode's literal operand is a procedure-descriptor
    /// index (the specialized `LocalCALL` family of §3).
    pub fn is_local_call(self) -> bool {
        matches!(
            self,
            Opcode::LocalCALLD | Opcode::LocalCALLF | Opcode::LocalCALLU | Opcode::LocalCALLV
        )
    }

    /// Whether this opcode pops a procedure address (trampoline-style
    /// indirect call, §3).
    pub fn is_indirect_call(self) -> bool {
        matches!(
            self,
            Opcode::CALLD | Opcode::CALLF | Opcode::CALLU | Opcode::CALLV
        )
    }

    /// Whether this opcode returns from the current procedure.
    pub fn is_return(self) -> bool {
        matches!(
            self,
            Opcode::RETD | Opcode::RETF | Opcode::RETU | Opcode::RETV
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_roundtrips() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_u8(op as u8), Some(op));
            assert_eq!(Opcode::from_name(op.name()), Some(op));
        }
    }

    #[test]
    fn opcode_count_matches_appendix_2() {
        // 45 <v2> + 22 <v1> + 10 <v0> + 6 <x2> + 12 <x1> + 3 <x0> + LABELV.
        assert_eq!(Opcode::COUNT, 45 + 22 + 10 + 6 + 12 + 3 + 1);
        const { assert!(Opcode::COUNT <= 256) };
    }

    #[test]
    fn kind_partition_sizes() {
        let count = |k: StackKind| Opcode::ALL.iter().filter(|o| o.kind() == k).count();
        assert_eq!(count(StackKind::V2), 45);
        assert_eq!(count(StackKind::V1), 22);
        assert_eq!(count(StackKind::V0), 10);
        assert_eq!(count(StackKind::X2), 6);
        assert_eq!(count(StackKind::X1), 12);
        assert_eq!(count(StackKind::X0), 3);
        assert_eq!(count(StackKind::Label), 1);
    }

    #[test]
    fn prefix_operators_carry_bytes() {
        assert_eq!(Opcode::LIT1.operand_bytes(), 1);
        assert_eq!(Opcode::LIT4.operand_bytes(), 4);
        assert_eq!(Opcode::ADDRGP.operand_bytes(), 2);
        assert_eq!(Opcode::BrTrue.operand_bytes(), 2);
        assert_eq!(Opcode::JUMPV.operand_bytes(), 2);
        assert_eq!(Opcode::ADDU.operand_bytes(), 0);
        assert_eq!(Opcode::LABELV.operand_bytes(), 0);
    }

    #[test]
    fn stack_kind_effects() {
        assert_eq!(StackKind::V2.pops(), 2);
        assert!(StackKind::V2.pushes());
        assert_eq!(StackKind::X1.pops(), 1);
        assert!(!StackKind::X1.pushes());
        assert_eq!(StackKind::Label.pops(), 0);
        assert!(!StackKind::Label.pushes());
    }

    #[test]
    fn classification_predicates() {
        assert!(Opcode::BrTrue.is_branch());
        assert!(Opcode::JUMPV.is_branch());
        assert!(!Opcode::RETV.is_branch());
        assert!(Opcode::LocalCALLV.is_local_call());
        assert!(Opcode::CALLU.is_indirect_call());
        assert!(Opcode::RETD.is_return());
    }
}
