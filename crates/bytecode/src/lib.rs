//! # pgr-bytecode
//!
//! The initial, uncompressed bytecode of Evans & Fraser, *Bytecode
//! Compression via Profiled Grammar Rewriting* (PLDI 2001), §3 and
//! Appendices 1–3.
//!
//! The instruction set is a simple postfix encoding of lcc trees: a
//! stack-based, typed bytecode in which most operators take their operands
//! from a global evaluation stack and push their result back. The
//! exceptions follow a *prefix* format and take literal bytes from the
//! instruction stream: `LIT1..LIT4`, `ADDR{F,G,L}P`, `LocalCALL*`,
//! `JUMPV`, and `BrTrue`.
//!
//! Branches do not embed offsets. Instead they carry a 2-byte index into a
//! per-procedure *label table* whose entries hold offsets into the
//! procedure's code; the compressor rewrites the table, never the indices
//! (§3). Global addresses likewise go through a single program-wide global
//! table (Appendix 3).
//!
//! This crate provides:
//!
//! * [`Opcode`] — the full instruction set with its stack-effect
//!   classification ([`StackKind`]), mirroring the non-terminal grouping of
//!   the paper's Appendix 2 grammar,
//! * [`Instruction`] and a decoder/encoder for raw code bytes,
//! * [`pass`] — the pass-oriented view: zero-copy [`InstrView`] decoding
//!   ([`instrs`], [`for_each_instr`]) and [`rewrite_instrs`], a
//!   structural rewriter with automatic branch-target (label-table)
//!   fixup; the disassembler and validator scans are built on it,
//! * [`Procedure`], [`Program`], [`GlobalEntry`] — the packaging of
//!   Appendix 3 (descriptors, label tables, global table, trampolines),
//! * a textual [assembler/disassembler](asm) used by tests and examples,
//! * a [validator](validate) that checks stack effects, label-table and
//!   global-table references,
//! * [`image`] — executable-image size accounting used by the Table 2 and
//!   §6-overhead experiments.
//!
//! One documented deviation from Appendix 2: our `ASGNB` and `ARGB` carry
//! two literal size bytes (lcc's block operators carry a size attribute
//! that the appendix elides); see [`Opcode::ASGNB`].
//!
//! ## Example
//!
//! ```
//! use pgr_bytecode::{Opcode, Instruction, decode};
//!
//! // LIT1 7 ; LIT1 5 ; ADDU ; RETU
//! let code = [Opcode::LIT1 as u8, 7, Opcode::LIT1 as u8, 5,
//!             Opcode::ADDU as u8, Opcode::RETU as u8];
//! let insns: Vec<Instruction> = decode(&code).collect::<Result<_, _>>().unwrap();
//! assert_eq!(insns.len(), 4);
//! assert_eq!(insns[2].opcode, Opcode::ADDU);
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod binfmt;
pub mod escape;
pub mod image;
pub mod insn;
pub mod opcode;
pub mod pass;
pub mod program;
pub mod validate;

pub use binfmt::{
    read_program, read_program_tagged, write_program, write_program_tagged, ImageKind,
    GRAMMAR_ID_LEN,
};
pub use insn::{decode, encode, DecodeError, Instruction};
pub use opcode::{Opcode, StackKind, TypeSuffix};
pub use pass::{
    for_each_instr, instrs, rewrite_instrs, rewrite_instrs_with, InstrView, Rewrite, RewriteError,
    RewriteSummary,
};
pub use program::{GlobalEntry, Procedure, Program};
pub use validate::{validate_procedure, validate_program, validate_program_with, ValidateError};
