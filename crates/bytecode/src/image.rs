//! Executable-image size accounting (paper §6, Table 2 and the overhead
//! bullet list).
//!
//! Table 2 counts "everything but library code and data": the bytecode,
//! the interpreter, the label and global tables, the procedure
//! descriptors, the trampolines, and the program's initialized and
//! uninitialized data. This module reproduces that accounting with a
//! deterministic byte model so that the Table 2 and E6 experiments can
//! print the same rows.

use crate::program::Program;

/// Bytes per label-table entry (`short _f_labels[]`, Appendix 3).
pub const LABEL_ENTRY_BYTES: usize = 2;

/// Bytes per procedure descriptor: a framesize, a code pointer, and a
/// label-table pointer (`{ 12, _f_code, _f_labels }`, Appendix 3).
pub const DESCRIPTOR_BYTES: usize = 12;

/// Bytes per global-table entry (one pointer).
pub const GLOBAL_ENTRY_BYTES: usize = 4;

/// Bytes per trampoline: a C-callable stub that passes the descriptor
/// index and the address of the incoming-argument block to `interpret`
/// and extracts the right union member from the result (Appendix 3). The
/// paper reports 1,674 bytes of trampolines for lcc; this per-stub figure
/// models a push/push/call/ret sequence of comparable density.
pub const TRAMPOLINE_BYTES: usize = 24;

/// A size breakdown of a program image, excluding the interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ImageStats {
    /// Total bytecode bytes across all procedures.
    pub code: usize,
    /// Label-table bytes (out-of-line branch targets, §3).
    pub label_tables: usize,
    /// Procedure-descriptor bytes.
    pub descriptors: usize,
    /// Global-address-table bytes.
    pub global_table: usize,
    /// Trampoline bytes.
    pub trampolines: usize,
    /// Initialized-data bytes.
    pub data: usize,
    /// Uninitialized-data (BSS) bytes.
    pub bss: usize,
}

impl ImageStats {
    /// Measure a program.
    pub fn of(program: &Program) -> ImageStats {
        ImageStats {
            code: program.code_size(),
            label_tables: program
                .procs
                .iter()
                .map(|p| p.labels.len() * LABEL_ENTRY_BYTES)
                .sum(),
            descriptors: program.procs.len() * DESCRIPTOR_BYTES,
            global_table: program.globals.len() * GLOBAL_ENTRY_BYTES,
            trampolines: program.trampoline_count() * TRAMPOLINE_BYTES,
            data: program.data.len(),
            bss: program.bss_size as usize,
        }
    }

    /// Everything except the interpreter.
    pub fn total(&self) -> usize {
        self.code
            + self.label_tables
            + self.descriptors
            + self.global_table
            + self.trampolines
            + self.data
            + self.bss
    }

    /// Total image size given an interpreter of `interpreter_bytes`
    /// (Table 2 rows include "the code and data for any interpreter
    /// associated with the row").
    pub fn total_with_interpreter(&self, interpreter_bytes: usize) -> usize {
        self.total() + interpreter_bytes
    }
}

/// Estimate the §6 "inline global addresses and branch offsets" saving:
/// dropping the out-of-line label tables and the global-address table in
/// favour of operands embedded in the code.
///
/// Branch operands already occupy two bytes (the table index), so
/// inlining a two-byte offset is free and the whole label table goes
/// away. Global addresses are full pointers, so each `ADDRGP` grows from
/// a 2-byte index to a 4-byte address while the table's 4-byte entries
/// disappear (data/BSS/native entries; procedure entries must keep their
/// trampolines either way). The paper expects this to "save much of that
/// overhead" while making the compressor's label rewriting unwieldy —
/// which is why it stays future work there and an estimate here.
pub fn inline_tables_estimate(program: &Program) -> usize {
    use crate::insn::decode;
    use crate::opcode::Opcode;
    let stats = ImageStats::of(program);
    let mut addrgp_count = 0usize;
    for proc in &program.procs {
        for insn in decode(&proc.code).flatten() {
            if insn.opcode == Opcode::ADDRGP {
                addrgp_count += 1;
            }
        }
    }
    (stats.label_tables + stats.global_table).saturating_sub(2 * addrgp_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{encode, Instruction};
    use crate::opcode::Opcode;
    use crate::program::{GlobalEntry, Procedure};

    fn sample_program() -> Program {
        let mut prog = Program::new();
        let mut p = Procedure::new("main");
        p.code = encode(&[
            Instruction::with_u16(Opcode::JUMPV, 0),
            Instruction::op(Opcode::LABELV),
            Instruction::op(Opcode::RETV),
        ]);
        p.labels = vec![3];
        p.needs_trampoline = true;
        prog.procs.push(p);
        let mut q = Procedure::new("leaf");
        q.code = encode(&[Instruction::op(Opcode::RETV)]);
        prog.procs.push(q);
        prog.globals.push(GlobalEntry::Proc { proc_index: 0 });
        prog.globals.push(GlobalEntry::Native {
            name: "putchar".into(),
        });
        prog.data = vec![1, 2, 3, 4];
        prog.bss_size = 16;
        prog
    }

    #[test]
    fn breakdown_adds_up() {
        let stats = ImageStats::of(&sample_program());
        assert_eq!(stats.code, 5 + 1);
        assert_eq!(stats.label_tables, 2);
        assert_eq!(stats.descriptors, 2 * DESCRIPTOR_BYTES);
        assert_eq!(stats.global_table, 2 * GLOBAL_ENTRY_BYTES);
        assert_eq!(stats.trampolines, TRAMPOLINE_BYTES);
        assert_eq!(stats.data, 4);
        assert_eq!(stats.bss, 16);
        assert_eq!(
            stats.total(),
            stats.code
                + stats.label_tables
                + stats.descriptors
                + stats.global_table
                + stats.trampolines
                + stats.data
                + stats.bss
        );
        assert_eq!(stats.total_with_interpreter(100), stats.total() + 100);
    }

    #[test]
    fn empty_program_is_empty() {
        let stats = ImageStats::of(&Program::new());
        assert_eq!(stats.total(), 0);
        assert_eq!(inline_tables_estimate(&Program::new()), 0);
    }

    #[test]
    fn inline_estimate_counts_addrgp_growth() {
        let prog = sample_program();
        let stats = ImageStats::of(&prog);
        // No ADDRGP in the sample: the saving is both tables in full.
        assert_eq!(
            inline_tables_estimate(&prog),
            stats.label_tables + stats.global_table
        );
        // Add an ADDRGP-heavy procedure: each reference costs 2 bytes
        // against the saving.
        let mut prog2 = prog.clone();
        let mut p = Procedure::new("g");
        p.code = crate::insn::encode(&[
            Instruction::with_u16(Opcode::ADDRGP, 0),
            Instruction::op(Opcode::POPU),
            Instruction::op(Opcode::RETV),
        ]);
        prog2.procs.push(p);
        let stats2 = ImageStats::of(&prog2);
        assert_eq!(
            inline_tables_estimate(&prog2),
            stats2.label_tables + stats2.global_table - 2
        );
    }
}
