//! A textual assembler and disassembler for the initial bytecode.
//!
//! The format exists for tests, examples, and debugging; it is not part of
//! the compression pipeline. A module looks like:
//!
//! ```text
//! ; push 7, return it
//! proc main frame=0 args=0 trampoline
//!     LIT1 7
//!     RETU
//! endproc
//! data msg = 104 105 0
//! bss scratch 64
//! native putchar
//! entry main
//! ```
//!
//! Inside a `proc`, each line is either a mnemonic with decimal operand
//! values (multi-byte operands are written as a single decimal number) or
//! the pseudo-instruction `label N`, which emits a `LABELV` marker and
//! records the current offset in label-table slot `N`.

use crate::insn::Instruction;
use crate::opcode::Opcode;
use crate::program::{GlobalEntry, Procedure, Program};
use std::fmt;

/// An error produced by the assembler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// Assemble a textual module into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for any syntax error,
/// unknown mnemonic, out-of-range operand, or unresolved `entry` name.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut program = Program::new();
    let mut current: Option<Procedure> = None;
    let mut entry_name: Option<(String, usize)> = None;

    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find(';') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let mut words = line.split_whitespace();
        let Some(head) = words.next() else { continue };

        match head {
            "proc" => {
                if current.is_some() {
                    return Err(err(line_no, "nested proc"));
                }
                let name = words
                    .next()
                    .ok_or_else(|| err(line_no, "proc needs a name"))?;
                let mut p = Procedure::new(name);
                for w in words {
                    if let Some(v) = w.strip_prefix("frame=") {
                        p.frame_size = v
                            .parse()
                            .map_err(|_| err(line_no, format!("bad frame size {v:?}")))?;
                    } else if let Some(v) = w.strip_prefix("args=") {
                        p.arg_size = v
                            .parse()
                            .map_err(|_| err(line_no, format!("bad arg size {v:?}")))?;
                    } else if w == "trampoline" {
                        p.needs_trampoline = true;
                    } else {
                        return Err(err(line_no, format!("unknown proc attribute {w:?}")));
                    }
                }
                current = Some(p);
            }
            "endproc" => {
                let p = current
                    .take()
                    .ok_or_else(|| err(line_no, "endproc outside proc"))?;
                program.procs.push(p);
            }
            "label" => {
                let p = current
                    .as_mut()
                    .ok_or_else(|| err(line_no, "label outside proc"))?;
                let n: usize = words
                    .next()
                    .ok_or_else(|| err(line_no, "label needs an index"))?
                    .parse()
                    .map_err(|_| err(line_no, "bad label index"))?;
                if p.labels.len() <= n {
                    p.labels.resize(n + 1, u32::MAX);
                }
                p.labels[n] = p.code.len() as u32;
                p.code.push(Opcode::LABELV as u8);
            }
            "data" | "bss" => {
                if current.is_some() {
                    return Err(err(line_no, format!("{head} inside proc")));
                }
                let name = words
                    .next()
                    .ok_or_else(|| err(line_no, format!("{head} needs a name")))?
                    .to_string();
                if head == "data" {
                    match words.next() {
                        Some("=") => {}
                        _ => return Err(err(line_no, "data needs `= byte...`")),
                    }
                    let offset = program.data.len() as u32;
                    for w in words {
                        let b: u8 = w
                            .parse()
                            .map_err(|_| err(line_no, format!("bad data byte {w:?}")))?;
                        program.data.push(b);
                    }
                    program.globals.push(GlobalEntry::Data { name, offset });
                } else {
                    let size: u32 = words
                        .next()
                        .ok_or_else(|| err(line_no, "bss needs a size"))?
                        .parse()
                        .map_err(|_| err(line_no, "bad bss size"))?;
                    let offset = program.bss_size;
                    program.bss_size += size;
                    program.globals.push(GlobalEntry::Bss { name, offset });
                }
            }
            "native" => {
                let name = words
                    .next()
                    .ok_or_else(|| err(line_no, "native needs a name"))?;
                program
                    .globals
                    .push(GlobalEntry::Native { name: name.into() });
            }
            "procaddr" => {
                let name = words
                    .next()
                    .ok_or_else(|| err(line_no, "procaddr needs a name"))?
                    .to_string();
                // Resolved after all procs are seen: store the name in a
                // placeholder and fix up below using a second pass.
                program.globals.push(GlobalEntry::Native {
                    name: format!("\u{0}procaddr:{name}"),
                });
            }
            "entry" => {
                let name = words
                    .next()
                    .ok_or_else(|| err(line_no, "entry needs a name"))?;
                entry_name = Some((name.to_string(), line_no));
            }
            mnemonic => {
                let p = current
                    .as_mut()
                    .ok_or_else(|| err(line_no, format!("{mnemonic:?} outside proc")))?;
                let op = Opcode::from_name(mnemonic)
                    .ok_or_else(|| err(line_no, format!("unknown mnemonic {mnemonic:?}")))?;
                let n = op.operand_bytes();
                if n == 0 {
                    p.code.push(op as u8);
                } else {
                    let w = words
                        .next()
                        .ok_or_else(|| err(line_no, format!("{op} needs an operand")))?;
                    let v: u64 = w
                        .parse()
                        .map_err(|_| err(line_no, format!("bad operand {w:?}")))?;
                    let max = if n >= 8 {
                        u64::MAX
                    } else {
                        (1u64 << (8 * n)) - 1
                    };
                    if v > max {
                        return Err(err(line_no, format!("operand {v} too large for {op}")));
                    }
                    p.code.push(op as u8);
                    p.code.extend_from_slice(&v.to_le_bytes()[..n]);
                }
                if let Some(extra) = words.next() {
                    return Err(err(line_no, format!("trailing token {extra:?}")));
                }
            }
        }
    }

    if current.is_some() {
        return Err(err(source.lines().count(), "missing endproc"));
    }

    // Resolve procaddr placeholders now that all procedures exist.
    for i in 0..program.globals.len() {
        let target = match &program.globals[i] {
            GlobalEntry::Native { name } => {
                name.strip_prefix("\u{0}procaddr:").map(|t| t.to_string())
            }
            _ => None,
        };
        if let Some(target) = target {
            let proc_index = program
                .proc_index(&target)
                .ok_or_else(|| err(0, format!("procaddr to unknown procedure {target:?}")))?;
            program.procs[proc_index as usize].needs_trampoline = true;
            program.globals[i] = GlobalEntry::Proc { proc_index };
        }
    }

    if let Some((name, line_no)) = entry_name {
        program.entry = program
            .proc_index(&name)
            .ok_or_else(|| err(line_no, format!("entry names unknown procedure {name:?}")))?;
        let entry = program.entry as usize;
        // `main` always needs a trampoline (§3).
        program.procs[entry].needs_trampoline = true;
    }
    Ok(program)
}

/// Disassemble one procedure's code into the assembler's textual format.
///
/// Unknown bytes stop the listing with a `<decode error>` line, so the
/// function is total and usable on malformed input for debugging.
pub fn disassemble_proc(proc: &Procedure) -> String {
    let mut out = String::new();
    let tramp = if proc.needs_trampoline {
        " trampoline"
    } else {
        ""
    };
    out.push_str(&format!(
        "proc {} frame={} args={}{}\n",
        proc.name, proc.frame_size, proc.arg_size, tramp
    ));
    for insn in crate::pass::instrs(&proc.code) {
        match insn {
            Ok(insn) if insn.opcode == Opcode::LABELV => {
                match proc
                    .labels
                    .iter()
                    .position(|&off| off as usize == insn.offset)
                {
                    Some(n) => out.push_str(&format!("    label {n}\n")),
                    None => out.push_str("    LABELV\n"),
                }
            }
            Ok(insn) => {
                if insn.operand_slice().is_empty() {
                    out.push_str(&format!("    {}\n", insn.opcode));
                } else {
                    out.push_str(&format!("    {} {}\n", insn.opcode, insn.operand_u32()));
                }
            }
            Err(e) => {
                out.push_str(&format!("    ; <decode error: {e}>\n"));
                break;
            }
        }
    }
    out.push_str("endproc\n");
    out
}

/// Disassemble a whole program.
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    for p in &program.procs {
        out.push_str(&disassemble_proc(p));
    }
    for g in &program.globals {
        match g {
            GlobalEntry::Data { name, offset } => {
                out.push_str(&format!("; data {name} at offset {offset}\n"))
            }
            GlobalEntry::Bss { name, offset } => {
                out.push_str(&format!("; bss {name} at offset {offset}\n"))
            }
            GlobalEntry::Proc { proc_index } => out.push_str(&format!(
                "; procaddr {}\n",
                program.procs[*proc_index as usize].name
            )),
            GlobalEntry::Native { name } => out.push_str(&format!("; native {name}\n")),
        }
    }
    if let Some(entry) = program.procs.get(program.entry as usize) {
        out.push_str(&format!("; entry {}\n", entry.name));
    }
    out
}

/// Convenience: build a procedure's code from instructions, recording
/// label offsets for each `LABELV` in order of appearance.
pub fn code_with_labels(insns: &[Instruction]) -> (Vec<u8>, Vec<u32>) {
    let mut code = Vec::new();
    let mut labels = Vec::new();
    for insn in insns {
        if insn.opcode == Opcode::LABELV {
            labels.push(code.len() as u32);
        }
        insn.encode_into(&mut code);
    }
    (code, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
; the paper's `check` example (§4)
proc check frame=0 args=4
    ADDRFP 0
    INDIRU
    LIT1 0
    NEU
    BrTrue 0
    LIT1 0
    ARGU
    ADDRGP 0
    CALLU
    POPU
    label 0
    RETV
endproc
native exit
entry check
"#;

    #[test]
    fn assembles_the_paper_example() {
        let prog = assemble(SAMPLE).unwrap();
        assert_eq!(prog.procs.len(), 1);
        let p = &prog.procs[0];
        assert_eq!(p.name, "check");
        assert_eq!(p.arg_size, 4);
        assert!(p.needs_trampoline, "entry always gets a trampoline");
        assert_eq!(p.labels.len(), 1);
        // Label 0 points at the LABELV before RETV.
        assert_eq!(p.code[p.labels[0] as usize], Opcode::LABELV as u8);
        let insns = p.instructions().unwrap();
        assert_eq!(insns.first().unwrap().opcode, Opcode::ADDRFP);
        assert_eq!(insns.last().unwrap().opcode, Opcode::RETV);
    }

    #[test]
    fn disassembly_reassembles_identically() {
        let prog = assemble(SAMPLE).unwrap();
        let text = disassemble_proc(&prog.procs[0]);
        let reparsed = assemble(&text).unwrap();
        assert_eq!(reparsed.procs[0].code, prog.procs[0].code);
        assert_eq!(reparsed.procs[0].labels, prog.procs[0].labels);
    }

    #[test]
    fn data_and_bss_lay_out_sequentially() {
        let src = "data a = 1 2 3\ndata b = 4\nbss x 8\nbss y 4\n";
        let prog = assemble(src).unwrap();
        assert_eq!(prog.data, vec![1, 2, 3, 4]);
        assert_eq!(prog.bss_size, 12);
        assert_eq!(
            prog.globals[1],
            GlobalEntry::Data {
                name: "b".into(),
                offset: 3
            }
        );
        assert_eq!(
            prog.globals[3],
            GlobalEntry::Bss {
                name: "y".into(),
                offset: 8
            }
        );
    }

    #[test]
    fn procaddr_marks_trampoline() {
        let src = "proc f frame=0 args=0\n    RETV\nendproc\nprocaddr f\n";
        let prog = assemble(src).unwrap();
        assert_eq!(prog.globals[0], GlobalEntry::Proc { proc_index: 0 });
        assert!(prog.procs[0].needs_trampoline);
    }

    #[test]
    fn errors_name_the_line() {
        let e = assemble("proc f\n    BOGUS\nendproc\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("BOGUS"));
        let e = assemble("LIT1 1\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = assemble("proc f\n    LIT1 999\nendproc\n").unwrap_err();
        assert!(e.message.contains("too large"));
    }

    #[test]
    fn operand_range_honours_width() {
        let src = "proc f frame=0 args=0\n    LIT2 65535\n    POPU\n    RETV\nendproc\n";
        let prog = assemble(src).unwrap();
        let insns = prog.procs[0].instructions().unwrap();
        assert_eq!(insns[0].operand_u32(), 65535);
    }
}
