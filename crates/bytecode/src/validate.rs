//! Static validation of bytecoded programs.
//!
//! The compressor and the grammar both assume well-formed input: code that
//! decodes cleanly, references only existing labels/globals/descriptors,
//! and respects the stack discipline of the Appendix 2 grammar (every
//! straight-line segment is a sequence of complete statements, so the
//! evaluation stack is empty at every segment boundary).

use crate::insn::DecodeError;
use crate::opcode::{Opcode, StackKind};
use crate::pass::for_each_instr;
use crate::program::{Procedure, Program};
use pgr_telemetry::{names, Metrics, Recorder};
use std::fmt;
use std::ops::ControlFlow;

/// A validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// The code stream does not decode.
    Decode {
        /// Procedure name.
        proc: String,
        /// Underlying decode error.
        error: DecodeError,
    },
    /// A branch names a label-table index that does not exist.
    BadLabelIndex {
        /// Procedure name.
        proc: String,
        /// Offset of the branch.
        offset: usize,
        /// The missing label index.
        index: u16,
    },
    /// A label-table entry does not point at a `LABELV` marker.
    BadLabelTarget {
        /// Procedure name.
        proc: String,
        /// Which label-table entry.
        label: usize,
        /// Where it points.
        target: u32,
    },
    /// A `LocalCALL` names a descriptor that does not exist.
    BadProcIndex {
        /// Procedure name.
        proc: String,
        /// Offset of the call.
        offset: usize,
        /// The missing descriptor index.
        index: u16,
    },
    /// An `ADDRGP` names a global-table entry that does not exist.
    BadGlobalIndex {
        /// Procedure name.
        proc: String,
        /// Offset of the instruction.
        offset: usize,
        /// The missing global index.
        index: u16,
    },
    /// An operator would pop more values than the stack holds.
    StackUnderflow {
        /// Procedure name.
        proc: String,
        /// Offset of the operator.
        offset: usize,
        /// The operator.
        opcode: Opcode,
        /// Stack depth at that point.
        depth: usize,
    },
    /// A segment ends (at a label or at the end of code) with values
    /// still on the stack, so the parse cannot restart there.
    NonEmptyStackAtBoundary {
        /// Procedure name.
        proc: String,
        /// Offset of the boundary.
        offset: usize,
        /// Leftover stack depth.
        depth: usize,
    },
    /// Control can fall off the end of the procedure.
    MissingTerminator {
        /// Procedure name.
        proc: String,
    },
    /// The program's entry index is out of range.
    BadEntry {
        /// The out-of-range index.
        entry: u32,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Decode { proc, error } => write!(f, "{proc}: {error}"),
            ValidateError::BadLabelIndex {
                proc,
                offset,
                index,
            } => {
                write!(f, "{proc}+{offset}: branch to missing label {index}")
            }
            ValidateError::BadLabelTarget {
                proc,
                label,
                target,
            } => {
                write!(f, "{proc}: label {label} points at {target}, not a LABELV")
            }
            ValidateError::BadProcIndex {
                proc,
                offset,
                index,
            } => {
                write!(
                    f,
                    "{proc}+{offset}: LocalCALL to missing descriptor {index}"
                )
            }
            ValidateError::BadGlobalIndex {
                proc,
                offset,
                index,
            } => {
                write!(f, "{proc}+{offset}: ADDRGP to missing global {index}")
            }
            ValidateError::StackUnderflow {
                proc,
                offset,
                opcode,
                depth,
            } => write!(
                f,
                "{proc}+{offset}: {opcode} pops {} but stack depth is {depth}",
                opcode.kind().pops()
            ),
            ValidateError::NonEmptyStackAtBoundary {
                proc,
                offset,
                depth,
            } => {
                write!(
                    f,
                    "{proc}+{offset}: segment boundary with stack depth {depth}"
                )
            }
            ValidateError::MissingTerminator { proc } => {
                write!(f, "{proc}: control can fall off the end")
            }
            ValidateError::BadEntry { entry } => write!(f, "entry index {entry} out of range"),
        }
    }
}

impl std::error::Error for ValidateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ValidateError::Decode { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// Validate one procedure against the tables of its containing program.
///
/// # Errors
///
/// Returns the first problem found; see [`ValidateError`].
pub fn validate_procedure(proc: &Procedure, program: &Program) -> Result<(), ValidateError> {
    check_procedure(proc, program).map(|_| ())
}

/// [`validate_procedure`], also reporting how many instructions the
/// stack-discipline scan visited (pass 2 stops at the first problem, so
/// the count under-reports on the error path by design).
fn check_procedure(proc: &Procedure, program: &Program) -> Result<u64, ValidateError> {
    let name = || proc.name.clone();

    // Pass 1 — label-target scan: every label-table entry must point at a
    // LABELV marker. `for_each_instr` decodes zero-copy views, so this
    // pass allocates nothing beyond the error path.
    for (i, &target) in proc.labels.iter().enumerate() {
        let ok = for_each_instr(&proc.code, |insn| {
            if insn.offset >= target as usize {
                // Reached (or walked past) the target: it is valid only
                // if an instruction starts exactly there and is a marker.
                ControlFlow::Break(insn.offset == target as usize && insn.opcode == Opcode::LABELV)
            } else {
                ControlFlow::Continue(())
            }
        })
        .map_err(|error| ValidateError::Decode {
            proc: name(),
            error,
        })?
        .unwrap_or(false);
        if !ok {
            return Err(ValidateError::BadLabelTarget {
                proc: name(),
                label: i,
                target,
            });
        }
    }

    // Pass 2 — stack-effect and table-reference scan, streaming over
    // borrowed views with an early exit on the first problem.
    let mut depth = 0usize;
    let mut last_opcode: Option<Opcode> = None;
    let mut insns = 0u64;
    let failure = for_each_instr(&proc.code, |insn| {
        insns += 1;
        last_opcode = Some(insn.opcode);
        let kind = insn.opcode.kind();
        if kind == StackKind::Label {
            if depth != 0 {
                return ControlFlow::Break(ValidateError::NonEmptyStackAtBoundary {
                    proc: name(),
                    offset: insn.offset,
                    depth,
                });
            }
            return ControlFlow::Continue(());
        }
        if insn.opcode.is_branch() {
            let index = insn.operand_u16();
            if usize::from(index) >= proc.labels.len() {
                return ControlFlow::Break(ValidateError::BadLabelIndex {
                    proc: name(),
                    offset: insn.offset,
                    index,
                });
            }
        }
        if insn.opcode.is_local_call() {
            let index = insn.operand_u16();
            if usize::from(index) >= program.procs.len() {
                return ControlFlow::Break(ValidateError::BadProcIndex {
                    proc: name(),
                    offset: insn.offset,
                    index,
                });
            }
        }
        if insn.opcode == Opcode::ADDRGP {
            let index = insn.operand_u16();
            if usize::from(index) >= program.globals.len() {
                return ControlFlow::Break(ValidateError::BadGlobalIndex {
                    proc: name(),
                    offset: insn.offset,
                    index,
                });
            }
        }
        if depth < kind.pops() {
            return ControlFlow::Break(ValidateError::StackUnderflow {
                proc: name(),
                offset: insn.offset,
                opcode: insn.opcode,
                depth,
            });
        }
        depth -= kind.pops();
        if kind.pushes() {
            depth += 1;
        }
        ControlFlow::Continue(())
    })
    .map_err(|error| ValidateError::Decode {
        proc: name(),
        error,
    })?;
    if let Some(err) = failure {
        return Err(err);
    }
    if depth != 0 {
        return Err(ValidateError::NonEmptyStackAtBoundary {
            proc: name(),
            offset: proc.code.len(),
            depth,
        });
    }

    match last_opcode {
        Some(last) if last.is_return() || last == Opcode::JUMPV => Ok(insns),
        _ => Err(ValidateError::MissingTerminator { proc: name() }),
    }
}

/// Validate a whole program.
///
/// # Errors
///
/// Returns the first problem found in any procedure, or [`ValidateError::BadEntry`]
/// if the entry index is out of range.
pub fn validate_program(program: &Program) -> Result<(), ValidateError> {
    validate_program_with(program, &Recorder::disabled())
}

/// Validate a whole program, reporting `bytecode.validate.*` counters
/// (procedures checked, instructions visited) into `recorder`. Counts
/// cover the work done before the first error, if any.
///
/// # Errors
///
/// Same as [`validate_program`].
pub fn validate_program_with(program: &Program, recorder: &Recorder) -> Result<(), ValidateError> {
    if !program.procs.is_empty() && program.entry as usize >= program.procs.len() {
        return Err(ValidateError::BadEntry {
            entry: program.entry,
        });
    }
    let mut procs = 0u64;
    let mut insns = 0u64;
    let mut result = Ok(());
    for proc in &program.procs {
        match check_procedure(proc, program) {
            Ok(n) => {
                procs += 1;
                insns += n;
            }
            Err(e) => {
                result = Err(e);
                break;
            }
        }
    }
    if recorder.is_enabled() {
        let mut batch = Metrics::new();
        batch.add(names::BYTECODE_VALIDATE_PROCS, procs);
        batch.add(names::BYTECODE_VALIDATE_INSNS, insns);
        recorder.record(batch);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn check(src: &str) -> Result<(), ValidateError> {
        let prog = assemble(src).unwrap();
        validate_program(&prog)
    }

    #[test]
    fn valid_program_passes() {
        check(
            "proc main frame=4 args=0\n\
             \tADDRLP 0\n\tLIT1 7\n\tSUBU\n\tPOPU\n\tRETV\nendproc\nentry main\n",
        )
        .unwrap();
    }

    #[test]
    fn validation_reports_metrics() {
        let prog = assemble(
            "proc main frame=4 args=0\n\
             \tADDRLP 0\n\tLIT1 7\n\tSUBU\n\tPOPU\n\tRETV\nendproc\nentry main\n",
        )
        .unwrap();
        let recorder = Recorder::new();
        validate_program_with(&prog, &recorder).unwrap();
        let m = recorder.snapshot();
        assert_eq!(m.counter(names::BYTECODE_VALIDATE_PROCS), 1);
        assert_eq!(m.counter(names::BYTECODE_VALIDATE_INSNS), 5);
    }

    #[test]
    fn underflow_is_caught() {
        let e = check("proc f frame=0 args=0\n\tADDU\n\tPOPU\n\tRETV\nendproc\n").unwrap_err();
        assert!(matches!(e, ValidateError::StackUnderflow { depth: 0, .. }));
    }

    #[test]
    fn value_left_on_stack_at_label_is_caught() {
        let e = check("proc f frame=0 args=0\n\tLIT1 1\n\tlabel 0\n\tPOPU\n\tRETV\nendproc\n")
            .unwrap_err();
        assert!(matches!(
            e,
            ValidateError::NonEmptyStackAtBoundary { depth: 1, .. }
        ));
    }

    #[test]
    fn value_left_at_end_is_caught() {
        let e = check("proc f frame=0 args=0\n\tLIT1 1\n\tRETV\nendproc\n").unwrap_err();
        assert!(matches!(e, ValidateError::NonEmptyStackAtBoundary { .. }));
    }

    #[test]
    fn missing_label_is_caught() {
        let e = check("proc f frame=0 args=0\n\tJUMPV 3\nendproc\n").unwrap_err();
        assert!(matches!(e, ValidateError::BadLabelIndex { index: 3, .. }));
    }

    #[test]
    fn missing_descriptor_is_caught() {
        let e = check("proc f frame=0 args=0\n\tLocalCALLV 9\n\tRETV\nendproc\n").unwrap_err();
        assert!(matches!(e, ValidateError::BadProcIndex { index: 9, .. }));
    }

    #[test]
    fn missing_global_is_caught() {
        let e = check("proc f frame=0 args=0\n\tADDRGP 0\n\tPOPU\n\tRETV\nendproc\n").unwrap_err();
        assert!(matches!(e, ValidateError::BadGlobalIndex { index: 0, .. }));
    }

    #[test]
    fn fallthrough_end_is_caught() {
        let e = check("proc f frame=0 args=0\n\tLIT1 1\n\tPOPU\nendproc\n").unwrap_err();
        assert!(matches!(e, ValidateError::MissingTerminator { .. }));
    }

    #[test]
    fn jump_terminator_is_accepted() {
        check("proc f frame=0 args=0\n\tlabel 0\n\tJUMPV 0\nendproc\n").unwrap();
    }

    #[test]
    fn bad_entry_is_caught() {
        let mut prog = assemble("proc f frame=0 args=0\n\tRETV\nendproc\n").unwrap();
        prog.entry = 5;
        assert!(matches!(
            validate_program(&prog),
            Err(ValidateError::BadEntry { entry: 5 })
        ));
    }

    #[test]
    fn stale_label_table_is_caught() {
        let mut prog = assemble("proc f frame=0 args=0\n\tlabel 0\n\tRETV\nendproc\n").unwrap();
        prog.procs[0].labels[0] = 1; // points at RETV, not LABELV
        assert!(matches!(
            validate_program(&prog),
            Err(ValidateError::BadLabelTarget { label: 0, .. })
        ));
    }
}
