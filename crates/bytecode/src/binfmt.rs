//! On-disk serialization of [`Program`]s.
//!
//! A small, versioned, little-endian container so the CLI and tools can
//! pass programs between pipeline stages. The same container carries
//! uncompressed bytecode and compressed derivations (the package shape —
//! descriptors, label tables, global table — is identical, §3); a kind
//! byte records which one it is so tools can refuse to run a compressed
//! image without its grammar.

use crate::program::{GlobalEntry, Procedure, Program};
use std::fmt;

/// File magic for program images.
pub const MAGIC: &[u8; 4] = b"PGRB";
/// Current format version.
pub const VERSION: u8 = 1;

/// What a serialized image holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageKind {
    /// The initial, directly decodable bytecode.
    Uncompressed,
    /// Derivation bytes under some expanded grammar (shipped separately).
    Compressed,
}

impl ImageKind {
    fn to_u8(self) -> u8 {
        match self {
            ImageKind::Uncompressed => 0,
            ImageKind::Compressed => 1,
        }
    }

    fn from_u8(v: u8) -> Option<ImageKind> {
        match v {
            0 => Some(ImageKind::Uncompressed),
            1 => Some(ImageKind::Compressed),
            _ => None,
        }
    }
}

/// A deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinError {
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Stream ended early or a field is malformed.
    Truncated,
    /// Invalid enum tag at the given offset.
    BadTag {
        /// Offset of the bad tag byte.
        offset: usize,
    },
    /// A string field is not UTF-8.
    BadString,
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::BadMagic => write!(f, "not a PGRB image"),
            BinError::BadVersion(v) => write!(f, "unsupported image version {v}"),
            BinError::Truncated => write!(f, "truncated image"),
            BinError::BadTag { offset } => write!(f, "invalid tag at offset {offset}"),
            BinError::BadString => write!(f, "invalid UTF-8 in a name"),
        }
    }
}

impl std::error::Error for BinError {}

struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.out.extend_from_slice(v);
    }
    fn name(&mut self, v: &str) {
        self.u16(v.len() as u16);
        self.out.extend_from_slice(v.as_bytes());
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        if self.pos + n > self.bytes.len() {
            return Err(BinError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, BinError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, BinError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }
    fn u32(&mut self) -> Result<u32, BinError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }
    fn bytes(&mut self) -> Result<Vec<u8>, BinError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
    fn name(&mut self) -> Result<String, BinError> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| BinError::BadString)
    }
}

/// Serialize a program.
pub fn write_program(program: &Program, kind: ImageKind) -> Vec<u8> {
    let mut w = Writer { out: Vec::new() };
    w.out.extend_from_slice(MAGIC);
    w.u8(VERSION);
    w.u8(kind.to_u8());
    w.u16(program.procs.len() as u16);
    for p in &program.procs {
        w.name(&p.name);
        w.u32(p.frame_size);
        w.u32(p.arg_size);
        w.u8(u8::from(p.needs_trampoline));
        w.bytes(&p.code);
        w.u16(p.labels.len() as u16);
        for &l in &p.labels {
            w.u32(l);
        }
    }
    w.u16(program.globals.len() as u16);
    for g in &program.globals {
        match g {
            GlobalEntry::Data { name, offset } => {
                w.u8(0);
                w.name(name);
                w.u32(*offset);
            }
            GlobalEntry::Bss { name, offset } => {
                w.u8(1);
                w.name(name);
                w.u32(*offset);
            }
            GlobalEntry::Proc { proc_index } => {
                w.u8(2);
                w.u32(*proc_index);
            }
            GlobalEntry::Native { name } => {
                w.u8(3);
                w.name(name);
            }
        }
    }
    w.bytes(&program.data);
    w.u32(program.bss_size);
    w.u32(program.entry);
    w.out
}

/// Deserialize a program.
///
/// # Errors
///
/// See [`BinError`].
pub fn read_program(bytes: &[u8]) -> Result<(Program, ImageKind), BinError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(BinError::BadMagic);
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(BinError::BadVersion(version));
    }
    let kind_off = r.pos;
    let kind = ImageKind::from_u8(r.u8()?).ok_or(BinError::BadTag { offset: kind_off })?;

    let mut program = Program::new();
    let nprocs = r.u16()? as usize;
    for _ in 0..nprocs {
        let mut p = Procedure::new(r.name()?);
        p.frame_size = r.u32()?;
        p.arg_size = r.u32()?;
        p.needs_trampoline = r.u8()? != 0;
        p.code = r.bytes()?;
        let nlabels = r.u16()? as usize;
        for _ in 0..nlabels {
            p.labels.push(r.u32()?);
        }
        program.procs.push(p);
    }
    let nglobals = r.u16()? as usize;
    for _ in 0..nglobals {
        let offset = r.pos;
        let entry = match r.u8()? {
            0 => GlobalEntry::Data {
                name: r.name()?,
                offset: r.u32()?,
            },
            1 => GlobalEntry::Bss {
                name: r.name()?,
                offset: r.u32()?,
            },
            2 => GlobalEntry::Proc {
                proc_index: r.u32()?,
            },
            3 => GlobalEntry::Native { name: r.name()? },
            _ => return Err(BinError::BadTag { offset }),
        };
        program.globals.push(entry);
    }
    program.data = r.bytes()?;
    program.bss_size = r.u32()?;
    program.entry = r.u32()?;
    Ok((program, kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn sample() -> Program {
        assemble(
            "proc main frame=8 args=0\n\
             \tLIT1 1\n\tBrTrue 0\n\tlabel 0\n\tRETV\nendproc\n\
             proc f frame=0 args=4\n\tADDRFP 0\n\tINDIRU\n\tRETU\nendproc\n\
             data msg = 104 105 0\n\
             bss scratch 64\n\
             native putchar\n\
             procaddr f\n\
             entry main\n",
        )
        .unwrap()
    }

    #[test]
    fn roundtrips() {
        let program = sample();
        for kind in [ImageKind::Uncompressed, ImageKind::Compressed] {
            let bytes = write_program(&program, kind);
            let (back, back_kind) = read_program(&bytes).unwrap();
            assert_eq!(back, program);
            assert_eq!(back_kind, kind);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(read_program(b"nope").unwrap_err(), BinError::BadMagic);
        let mut bytes = write_program(&sample(), ImageKind::Uncompressed);
        bytes[4] = 99;
        assert_eq!(read_program(&bytes).unwrap_err(), BinError::BadVersion(99));
        let bytes = write_program(&sample(), ImageKind::Uncompressed);
        for cut in [5, 8, 20, bytes.len() - 1] {
            assert!(read_program(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_tags_are_reported() {
        let mut bytes = write_program(&sample(), ImageKind::Uncompressed);
        bytes[5] = 7; // image kind
        assert!(matches!(
            read_program(&bytes).unwrap_err(),
            BinError::BadTag { .. }
        ));
    }

    #[test]
    fn empty_program_roundtrips() {
        let program = Program::new();
        let bytes = write_program(&program, ImageKind::Uncompressed);
        let (back, _) = read_program(&bytes).unwrap();
        assert_eq!(back, program);
    }
}
