//! On-disk serialization of [`Program`]s.
//!
//! A small, versioned, little-endian container so the CLI and tools can
//! pass programs between pipeline stages. The same container carries
//! uncompressed bytecode and compressed derivations (the package shape —
//! descriptors, label tables, global table — is identical, §3); a kind
//! byte records which one it is so tools can refuse to run a compressed
//! image without its grammar.
//!
//! ## Format v2: tamper-evident images
//!
//! In this scheme the compressed derivation *is* the executable, so a
//! corrupted image is a production outage, not a decompression warning —
//! and v1 images could *silently* parse after a byte flip (the
//! robustness proptests tolerated it). v2 makes corruption detection
//! deterministic:
//!
//! ```text
//! offset  size  field
//!      0     4  magic "PGRB"
//!      4     1  version (2)
//!      5     4  payload length (u32 LE); header+payload is the whole file
//!      9     4  CRC32 (IEEE) over the payload
//!     13     …  payload: kind u8, then three length-prefixed sections
//!               (procs, globals, trailer), each consumed exactly
//! ```
//!
//! Any single-byte change to the payload fails the checksum; any change
//! to the header fails magic/version/length checks; section framing
//! localizes structural damage. There is no v1 compatibility path — a
//! version byte of 1 is rejected outright, never half-parsed.
//!
//! ## Optional meta section: the grammar id
//!
//! A compressed image is useless without the exact grammar that encoded
//! it, so v2 images may carry one optional *meta* section after the
//! trailer: a length-prefixed run of `(tag, value)` entries, of which tag
//! 1 is a 32-byte content-addressed grammar id (the registry's
//! `GrammarId` digest of the `.pgrg` bytes). Readers that predate a tag
//! skip it by length; images written without meta end exactly where they
//! always did, so [`write_program`] stays byte-identical to every image
//! produced before the section existed (backward *and* forward
//! compatible). The meta bytes sit inside the checksummed payload, so a
//! flipped id byte is detected like any other corruption.

use crate::program::{GlobalEntry, Procedure, Program};
use pgr_telemetry::faults::{self, FaultPoint};
use std::fmt;

/// File magic for program images.
pub const MAGIC: &[u8; 4] = b"PGRB";
/// Current format version.
pub const VERSION: u8 = 2;
/// Bytes before the checksummed payload: magic, version, payload length,
/// CRC32.
pub const HEADER_LEN: usize = 13;

/// Bytes of a grammar id carried in the optional meta section: the
/// registry's content-address digest of the `.pgrg` grammar file that
/// decodes this image.
pub const GRAMMAR_ID_LEN: usize = 32;

/// Meta-section tag for a grammar id (followed by [`GRAMMAR_ID_LEN`]
/// bytes).
const META_TAG_GRAMMAR_ID: u8 = 1;

/// The IEEE CRC32 (reflected, polynomial `0xEDB88320`) of `bytes` — the
/// checksum v2 images carry over their payload.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[usize::from((c as u8) ^ b)] ^ (c >> 8);
    }
    !c
}

/// What a serialized image holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageKind {
    /// The initial, directly decodable bytecode.
    Uncompressed,
    /// Derivation bytes under some expanded grammar (shipped separately).
    Compressed,
}

impl ImageKind {
    fn to_u8(self) -> u8 {
        match self {
            ImageKind::Uncompressed => 0,
            ImageKind::Compressed => 1,
        }
    }

    fn from_u8(v: u8) -> Option<ImageKind> {
        match v {
            0 => Some(ImageKind::Uncompressed),
            1 => Some(ImageKind::Compressed),
            _ => None,
        }
    }
}

/// A deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinError {
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Stream ended early or a field is malformed.
    Truncated,
    /// Bytes present beyond the declared payload length.
    TrailingBytes {
        /// How many unexpected bytes follow the payload.
        extra: usize,
    },
    /// The payload failed its CRC32 check: the image was corrupted
    /// after it was written.
    ChecksumMismatch {
        /// The checksum the header promises.
        expected: u32,
        /// The checksum the payload actually has.
        found: u32,
    },
    /// A section's declared length disagrees with the bytes its content
    /// actually occupies.
    SectionLength {
        /// Which section ("procs" or "globals").
        section: &'static str,
        /// The length the framing declared.
        declared: usize,
        /// The bytes parsing actually consumed.
        consumed: usize,
    },
    /// Invalid enum tag at the given offset.
    BadTag {
        /// Offset of the bad tag byte.
        offset: usize,
    },
    /// A string field is not UTF-8.
    BadString,
    /// A deterministic fault-injection trip (test harness only; never
    /// produced in production, where injection is disabled).
    Injected,
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::BadMagic => write!(f, "not a PGRB image"),
            BinError::BadVersion(v) => write!(f, "unsupported image version {v}"),
            BinError::Truncated => write!(f, "truncated image"),
            BinError::TrailingBytes { extra } => {
                write!(f, "{extra} unexpected byte(s) after the declared payload")
            }
            BinError::ChecksumMismatch { expected, found } => write!(
                f,
                "payload checksum mismatch (header says {expected:#010x}, payload is {found:#010x}): image corrupted"
            ),
            BinError::SectionLength {
                section,
                declared,
                consumed,
            } => write!(
                f,
                "{section} section declares {declared} byte(s) but parses as {consumed}"
            ),
            BinError::BadTag { offset } => write!(f, "invalid tag at offset {offset}"),
            BinError::BadString => write!(f, "invalid UTF-8 in a name"),
            BinError::Injected => write!(f, "injected image-read fault (test harness)"),
        }
    }
}

impl std::error::Error for BinError {}

struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.out.extend_from_slice(v);
    }
    fn name(&mut self, v: &str) {
        self.u16(v.len() as u16);
        self.out.extend_from_slice(v.as_bytes());
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        if self.pos + n > self.bytes.len() {
            return Err(BinError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, BinError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, BinError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }
    fn u32(&mut self) -> Result<u32, BinError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }
    fn bytes(&mut self) -> Result<Vec<u8>, BinError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
    fn name(&mut self) -> Result<String, BinError> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| BinError::BadString)
    }
}

/// Begin a length-prefixed section: write the placeholder, return the
/// patch position.
fn begin_section(w: &mut Writer) -> usize {
    w.u32(0);
    w.out.len()
}

/// Close a section begun at `start`, patching its length prefix.
fn end_section(w: &mut Writer, start: usize) {
    let len = (w.out.len() - start) as u32;
    w.out[start - 4..start].copy_from_slice(&len.to_le_bytes());
}

/// Serialize a program as a v2 image (checksummed payload, framed
/// sections) with no meta section — byte-identical to every image
/// written before the grammar-id extension existed.
pub fn write_program(program: &Program, kind: ImageKind) -> Vec<u8> {
    write_program_tagged(program, kind, None)
}

/// Serialize a program as a v2 image, optionally stamping the meta
/// section with the content-addressed id of the grammar that decodes it.
/// `grammar_id: None` produces exactly the [`write_program`] bytes.
pub fn write_program_tagged(
    program: &Program,
    kind: ImageKind,
    grammar_id: Option<&[u8; GRAMMAR_ID_LEN]>,
) -> Vec<u8> {
    // Build the payload first; the header's length and CRC32 cover it.
    let mut w = Writer { out: Vec::new() };
    w.u8(kind.to_u8());

    let procs = begin_section(&mut w);
    w.u16(program.procs.len() as u16);
    for p in &program.procs {
        w.name(&p.name);
        w.u32(p.frame_size);
        w.u32(p.arg_size);
        w.u8(u8::from(p.needs_trampoline));
        w.bytes(&p.code);
        w.u16(p.labels.len() as u16);
        for &l in &p.labels {
            w.u32(l);
        }
    }
    end_section(&mut w, procs);

    let globals = begin_section(&mut w);
    w.u16(program.globals.len() as u16);
    for g in &program.globals {
        match g {
            GlobalEntry::Data { name, offset } => {
                w.u8(0);
                w.name(name);
                w.u32(*offset);
            }
            GlobalEntry::Bss { name, offset } => {
                w.u8(1);
                w.name(name);
                w.u32(*offset);
            }
            GlobalEntry::Proc { proc_index } => {
                w.u8(2);
                w.u32(*proc_index);
            }
            GlobalEntry::Native { name } => {
                w.u8(3);
                w.name(name);
            }
        }
    }
    end_section(&mut w, globals);

    let trailer = begin_section(&mut w);
    w.bytes(&program.data);
    w.u32(program.bss_size);
    w.u32(program.entry);
    end_section(&mut w, trailer);

    if let Some(id) = grammar_id {
        let meta = begin_section(&mut w);
        w.u8(META_TAG_GRAMMAR_ID);
        w.out.extend_from_slice(id);
        end_section(&mut w, meta);
    }

    let payload = w.out;
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Check that a framed section parsed as exactly as many bytes as it
/// declared.
fn check_section(section: &'static str, declared: usize, consumed: usize) -> Result<(), BinError> {
    if declared == consumed {
        Ok(())
    } else {
        Err(BinError::SectionLength {
            section,
            declared,
            consumed,
        })
    }
}

/// Deserialize a v2 program image, ignoring any meta section. The
/// payload checksum is verified before any structural parsing, so a
/// corrupted image is rejected deterministically — it can never
/// half-parse.
///
/// # Errors
///
/// See [`BinError`].
pub fn read_program(bytes: &[u8]) -> Result<(Program, ImageKind), BinError> {
    read_program_tagged(bytes).map(|(program, kind, _)| (program, kind))
}

/// Deserialize a v2 program image along with the grammar id its meta
/// section carries, if any. Images written before the meta section
/// existed (or by [`write_program`]) read back with `None`.
///
/// # Errors
///
/// See [`BinError`].
pub fn read_program_tagged(
    bytes: &[u8],
) -> Result<(Program, ImageKind, Option<[u8; GRAMMAR_ID_LEN]>), BinError> {
    if faults::fire(FaultPoint::ImageRead) {
        return Err(BinError::Injected);
    }
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(BinError::BadMagic);
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(BinError::BadVersion(version));
    }
    let payload_len = r.u32()? as usize;
    let expected = r.u32()?;
    debug_assert_eq!(r.pos, HEADER_LEN);
    match bytes.len().checked_sub(HEADER_LEN + payload_len) {
        None => return Err(BinError::Truncated),
        Some(0) => {}
        Some(extra) => return Err(BinError::TrailingBytes { extra }),
    }
    let found = crc32(&bytes[HEADER_LEN..]);
    if found != expected {
        return Err(BinError::ChecksumMismatch { expected, found });
    }

    let kind_off = r.pos;
    let kind = ImageKind::from_u8(r.u8()?).ok_or(BinError::BadTag { offset: kind_off })?;

    let mut program = Program::new();

    let declared = r.u32()? as usize;
    let start = r.pos;
    let nprocs = r.u16()? as usize;
    for _ in 0..nprocs {
        let mut p = Procedure::new(r.name()?);
        p.frame_size = r.u32()?;
        p.arg_size = r.u32()?;
        p.needs_trampoline = r.u8()? != 0;
        p.code = r.bytes()?;
        let nlabels = r.u16()? as usize;
        for _ in 0..nlabels {
            p.labels.push(r.u32()?);
        }
        program.procs.push(p);
    }
    check_section("procs", declared, r.pos - start)?;

    let declared = r.u32()? as usize;
    let start = r.pos;
    let nglobals = r.u16()? as usize;
    for _ in 0..nglobals {
        let offset = r.pos;
        let entry = match r.u8()? {
            0 => GlobalEntry::Data {
                name: r.name()?,
                offset: r.u32()?,
            },
            1 => GlobalEntry::Bss {
                name: r.name()?,
                offset: r.u32()?,
            },
            2 => GlobalEntry::Proc {
                proc_index: r.u32()?,
            },
            3 => GlobalEntry::Native { name: r.name()? },
            _ => return Err(BinError::BadTag { offset }),
        };
        program.globals.push(entry);
    }
    check_section("globals", declared, r.pos - start)?;

    let declared = r.u32()? as usize;
    let start = r.pos;
    program.data = r.bytes()?;
    program.bss_size = r.u32()?;
    program.entry = r.u32()?;
    check_section("trailer", declared, r.pos - start)?;

    // Optional meta section: absent entirely in pre-extension images.
    let mut grammar_id = None;
    if r.pos < bytes.len() {
        let declared = r.u32()? as usize;
        let start = r.pos;
        let end = match start.checked_add(declared) {
            Some(end) if end <= bytes.len() => end,
            _ => return Err(BinError::Truncated),
        };
        while r.pos < end {
            let offset = r.pos;
            match r.u8()? {
                META_TAG_GRAMMAR_ID => {
                    let id: [u8; GRAMMAR_ID_LEN] =
                        r.take(GRAMMAR_ID_LEN)?.try_into().expect("id length");
                    grammar_id = Some(id);
                }
                _ => return Err(BinError::BadTag { offset }),
            }
        }
        check_section("meta", declared, r.pos - start)?;
    }

    match bytes.len() - r.pos {
        0 => Ok((program, kind, grammar_id)),
        extra => Err(BinError::TrailingBytes { extra }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn sample() -> Program {
        assemble(
            "proc main frame=8 args=0\n\
             \tLIT1 1\n\tBrTrue 0\n\tlabel 0\n\tRETV\nendproc\n\
             proc f frame=0 args=4\n\tADDRFP 0\n\tINDIRU\n\tRETU\nendproc\n\
             data msg = 104 105 0\n\
             bss scratch 64\n\
             native putchar\n\
             procaddr f\n\
             entry main\n",
        )
        .unwrap()
    }

    /// Patch one payload byte and re-stamp the CRC, simulating a
    /// *structurally* corrupt image whose checksum is consistent (e.g. a
    /// buggy writer rather than bit rot).
    fn patch(bytes: &mut [u8], offset: usize, value: u8) {
        bytes[offset] = value;
        let crc = crc32(&bytes[HEADER_LEN..]);
        bytes[9..13].copy_from_slice(&crc.to_le_bytes());
    }

    #[test]
    fn roundtrips() {
        let program = sample();
        for kind in [ImageKind::Uncompressed, ImageKind::Compressed] {
            let bytes = write_program(&program, kind);
            let (back, back_kind) = read_program(&bytes).unwrap();
            assert_eq!(back, program);
            assert_eq!(back_kind, kind);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(read_program(b"nope").unwrap_err(), BinError::BadMagic);
        let mut bytes = write_program(&sample(), ImageKind::Uncompressed);
        bytes[4] = 99;
        assert_eq!(read_program(&bytes).unwrap_err(), BinError::BadVersion(99));
        // v1 images are rejected outright, never half-parsed.
        let mut bytes = write_program(&sample(), ImageKind::Uncompressed);
        bytes[4] = 1;
        assert_eq!(read_program(&bytes).unwrap_err(), BinError::BadVersion(1));
        let bytes = write_program(&sample(), ImageKind::Uncompressed);
        for cut in [5, 8, 20, bytes.len() - 1] {
            assert!(read_program(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn every_payload_byte_is_checksummed() {
        let bytes = write_program(&sample(), ImageKind::Uncompressed);
        for offset in HEADER_LEN..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[offset] ^= 0x40;
            assert!(
                matches!(
                    read_program(&corrupt).unwrap_err(),
                    BinError::ChecksumMismatch { .. }
                ),
                "flip at {offset} escaped the checksum"
            );
        }
    }

    #[test]
    fn length_mismatches_are_detected() {
        let bytes = write_program(&sample(), ImageKind::Uncompressed);
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(
            read_program(&extended).unwrap_err(),
            BinError::TrailingBytes { extra: 1 }
        );
        assert_eq!(
            read_program(&bytes[..bytes.len() - 1]).unwrap_err(),
            BinError::Truncated
        );
    }

    #[test]
    fn bad_tags_are_reported() {
        let mut bytes = write_program(&sample(), ImageKind::Uncompressed);
        // The image kind is the first payload byte; re-stamp the CRC so
        // the structural check (not the checksum) must catch it.
        patch(&mut bytes, HEADER_LEN, 7);
        assert!(matches!(
            read_program(&bytes).unwrap_err(),
            BinError::BadTag { .. }
        ));
    }

    #[test]
    fn section_framing_catches_consistent_corruption() {
        let bytes = write_program(&sample(), ImageKind::Uncompressed);
        // Shrink the procs section's declared length (its u32 starts
        // right after the kind byte) with a consistent checksum: parsing
        // consumes more than declared.
        let mut short = bytes.clone();
        patch(&mut short, HEADER_LEN + 1, 1);
        assert!(matches!(
            read_program(&short).unwrap_err(),
            BinError::SectionLength {
                section: "procs",
                ..
            } | BinError::Truncated
                | BinError::BadTag { .. }
                | BinError::BadString
        ));
    }

    #[test]
    fn grammar_id_roundtrips_and_none_is_byte_identical() {
        let program = sample();
        let id = [0xABu8; GRAMMAR_ID_LEN];
        for kind in [ImageKind::Uncompressed, ImageKind::Compressed] {
            let tagged = write_program_tagged(&program, kind, Some(&id));
            let (back, back_kind, back_id) = read_program_tagged(&tagged).unwrap();
            assert_eq!(back, program);
            assert_eq!(back_kind, kind);
            assert_eq!(back_id, Some(id));
            // The id-less readers still accept a tagged image.
            let (back, back_kind) = read_program(&tagged).unwrap();
            assert_eq!(back, program);
            assert_eq!(back_kind, kind);
            // Writing without an id reproduces the pre-extension bytes.
            assert_eq!(
                write_program_tagged(&program, kind, None),
                write_program(&program, kind)
            );
        }
    }

    #[test]
    fn pre_extension_images_read_back_with_no_id() {
        // write_program emits exactly the old format; the tagged reader
        // must accept it and report no grammar id.
        let bytes = write_program(&sample(), ImageKind::Compressed);
        let (_, _, id) = read_program_tagged(&bytes).unwrap();
        assert_eq!(id, None);
    }

    #[test]
    fn tagged_images_stay_tamper_evident_and_framed() {
        let bytes = write_program_tagged(&sample(), ImageKind::Compressed, Some(&[7; 32]));
        // Any payload flip — including inside the meta section — fails
        // the checksum.
        for offset in HEADER_LEN..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[offset] ^= 0x40;
            assert!(
                matches!(
                    read_program(&corrupt).unwrap_err(),
                    BinError::ChecksumMismatch { .. }
                ),
                "flip at {offset} escaped the checksum"
            );
        }
        // An unknown meta tag (with a consistent checksum) is rejected,
        // not skipped into misparsing the id bytes.
        let mut bad_tag = bytes.clone();
        let tag_offset = bytes.len() - 1 - GRAMMAR_ID_LEN;
        patch(&mut bad_tag, tag_offset, 0x7E);
        assert!(matches!(
            read_program(&bad_tag).unwrap_err(),
            BinError::BadTag { .. }
        ));
    }

    #[test]
    fn empty_program_roundtrips() {
        let program = Program::new();
        let bytes = write_program(&program, ImageKind::Uncompressed);
        let (back, _) = read_program(&bytes).unwrap();
        assert_eq!(back, program);
    }

    #[test]
    fn injected_image_read_faults_surface_as_errors() {
        use pgr_telemetry::faults::{self, FaultMode, FaultPlan, FaultPoint};

        let bytes = write_program(&sample(), ImageKind::Uncompressed);
        let _g = faults::install(FaultPlan::new().with(FaultPoint::ImageRead, FaultMode::Nth(2)));
        assert!(read_program(&bytes).is_ok());
        assert_eq!(read_program(&bytes).unwrap_err(), BinError::Injected);
        assert!(read_program(&bytes).is_ok());
    }
}
