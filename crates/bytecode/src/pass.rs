//! A pass-oriented view of bytecode streams.
//!
//! [`decode`](crate::decode) copies each instruction's operand bytes into
//! an owned [`Instruction`](crate::Instruction); fine for building code,
//! wasteful for the many passes that only *read* it (validation,
//! disassembly, segment planning, statistics). This module provides the
//! read side:
//!
//! * [`InstrView`] — a borrowed instruction whose operands point into the
//!   original code buffer; decoding allocates nothing and copies nothing.
//! * [`instrs`] — the iterator of views; [`for_each_instr`] — the same
//!   walk as an early-exit visitor.
//! * [`rewrite_instrs`] — the write side: a structural pass over one
//!   [`Procedure`] that maps each instruction to [`Rewrite`] actions and
//!   then fixes up branch targets automatically. Branches in this
//!   bytecode hold label-table *indices*, not offsets (§3), so branch
//!   fixup means rewriting the per-procedure label table to the moved
//!   `LABELV` offsets — the branch bytes themselves never change, which
//!   is exactly the property the paper exploits to compress around
//!   unpredictable branch targets.

use crate::insn::DecodeError;
use crate::opcode::Opcode;
use crate::program::Procedure;
use crate::Instruction;
use pgr_telemetry::{names, Metrics, Recorder};
use std::fmt;
use std::ops::ControlFlow;

/// A decoded instruction that borrows its operand bytes from the code
/// stream (no copy, no allocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrView<'a> {
    /// The operator.
    pub opcode: Opcode,
    /// Byte offset of the opcode within the stream.
    pub offset: usize,
    operands: &'a [u8],
}

impl<'a> InstrView<'a> {
    /// The operand bytes (exactly `opcode.operand_bytes()` of them),
    /// borrowed from the underlying stream.
    pub fn operand_slice(&self) -> &'a [u8] {
        self.operands
    }

    /// Operand interpreted as a little-endian unsigned integer
    /// (zero-extended; 0 for operand-less opcodes).
    pub fn operand_u32(&self) -> u32 {
        let mut v = 0u32;
        for (i, &b) in self.operands.iter().enumerate() {
            v |= u32::from(b) << (8 * i);
        }
        v
    }

    /// Operand as a `u16` (label index, frame offset, descriptor index,
    /// block size).
    pub fn operand_u16(&self) -> u16 {
        self.operand_u32() as u16
    }

    /// Encoded size in bytes (opcode + operands).
    pub fn size(&self) -> usize {
        1 + self.operands.len()
    }

    /// Copy into an owned [`Instruction`] (preserving the offset).
    pub fn to_instruction(&self) -> Instruction {
        let mut insn = Instruction::new(self.opcode, self.operands);
        insn.offset = self.offset;
        insn
    }
}

impl fmt::Display for InstrView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode)?;
        for b in self.operands {
            write!(f, " {b}")?;
        }
        Ok(())
    }
}

/// Iterator over borrowed instruction views of a code stream.
///
/// Produced by [`instrs`].
#[derive(Debug, Clone)]
pub struct Instrs<'a> {
    code: &'a [u8],
    pos: usize,
    failed: bool,
}

impl<'a> Iterator for Instrs<'a> {
    type Item = Result<InstrView<'a>, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.pos >= self.code.len() {
            return None;
        }
        let offset = self.pos;
        let byte = self.code[offset];
        let opcode = match Opcode::from_u8(byte) {
            Some(op) => op,
            None => {
                self.failed = true;
                return Some(Err(DecodeError::BadOpcode { offset, byte }));
            }
        };
        let n = opcode.operand_bytes();
        if offset + 1 + n > self.code.len() {
            self.failed = true;
            return Some(Err(DecodeError::TruncatedOperands { offset, opcode }));
        }
        self.pos = offset + 1 + n;
        Some(Ok(InstrView {
            opcode,
            offset,
            operands: &self.code[offset + 1..offset + 1 + n],
        }))
    }
}

/// Decode a code stream into zero-copy instruction views.
///
/// The iterator yields an `Err` and then stops if the stream is
/// malformed, like [`decode`](crate::decode).
///
/// ```
/// use pgr_bytecode::{instrs, Opcode};
/// let code = [Opcode::LIT2 as u8, 0x34, 0x12, Opcode::RETU as u8];
/// let views: Vec<_> = instrs(&code).collect::<Result<_, _>>().unwrap();
/// assert_eq!(views[0].operand_u32(), 0x1234);
/// assert_eq!(views[0].operand_slice(), &code[1..3]); // borrows, no copy
/// assert_eq!(views[1].opcode, Opcode::RETU);
/// ```
pub fn instrs(code: &[u8]) -> Instrs<'_> {
    Instrs {
        code,
        pos: 0,
        failed: false,
    }
}

/// Walk a code stream with an early-exit visitor.
///
/// Returns `Ok(Some(b))` if the visitor broke with `b`, `Ok(None)` if it
/// visited every instruction, and `Err` if the stream fails to decode
/// before a break.
///
/// ```
/// use pgr_bytecode::{for_each_instr, Opcode};
/// use std::ops::ControlFlow;
/// let code = [Opcode::LIT1 as u8, 9, Opcode::RETU as u8];
/// // Find the offset of the first return.
/// let found = for_each_instr(&code, |insn| {
///     if insn.opcode.is_return() {
///         ControlFlow::Break(insn.offset)
///     } else {
///         ControlFlow::Continue(())
///     }
/// })
/// .unwrap();
/// assert_eq!(found, Some(2));
/// ```
pub fn for_each_instr<B, F>(code: &[u8], mut visit: F) -> Result<Option<B>, DecodeError>
where
    F: FnMut(InstrView<'_>) -> ControlFlow<B>,
{
    for insn in instrs(code) {
        if let ControlFlow::Break(b) = visit(insn?) {
            return Ok(Some(b));
        }
    }
    Ok(None)
}

/// What a rewrite pass does with one instruction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Rewrite {
    /// Copy the instruction through unchanged.
    #[default]
    Keep,
    /// Drop the instruction.
    Remove,
    /// Emit these instructions in its place.
    Replace(Vec<Instruction>),
}

/// An error from [`rewrite_instrs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// The procedure's code does not decode.
    Decode(DecodeError),
    /// The pass removed (or replaced without a marker) a `LABELV` that a
    /// label-table entry points at, leaving a dangling branch target.
    DroppedLabel {
        /// Index of the dangling label-table entry.
        label: usize,
        /// The old offset it pointed at.
        target: u32,
    },
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::Decode(e) => write!(f, "{e}"),
            RewriteError::DroppedLabel { label, target } => {
                write!(
                    f,
                    "rewrite dropped LABELV at {target} (label-table entry {label})"
                )
            }
        }
    }
}

impl std::error::Error for RewriteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RewriteError::Decode(e) => Some(e),
            RewriteError::DroppedLabel { .. } => None,
        }
    }
}

impl From<DecodeError> for RewriteError {
    fn from(e: DecodeError) -> RewriteError {
        RewriteError::Decode(e)
    }
}

/// Rewrite a procedure's code instruction-by-instruction, fixing up
/// branch targets automatically.
///
/// The pass sees each instruction (as a borrowed [`InstrView`]) and
/// answers with a [`Rewrite`]. The new code is assembled in order, and
/// the procedure's label table — the indirection all branch operands go
/// through — is rewritten to the new offsets of its `LABELV` markers, so
/// passes can insert, delete, and resize instructions without ever
/// touching branch encodings. A marker inside a [`Rewrite::Replace`]
/// sequence inherits the original instruction's table entry (the first
/// replacement `LABELV` claims it), which lets a pass rebuild a marker
/// with code around it.
///
/// Returns how many instructions were removed or replaced.
///
/// ```
/// use pgr_bytecode::{instrs, rewrite_instrs, Instruction, Opcode, Procedure, Rewrite};
/// use pgr_bytecode::asm::code_with_labels;
///
/// // label 0; LIT1 1; BrTrue 0  — then widen LIT1 to LIT2.
/// let (code, labels) = code_with_labels(&[
///     Instruction::op(Opcode::LABELV),
///     Instruction::new(Opcode::LIT1, &[1]),
///     Instruction::with_u16(Opcode::BrTrue, 0),
/// ]);
/// let mut proc = Procedure::new("f");
/// proc.code = code;
/// proc.labels = labels;
///
/// rewrite_instrs(&mut proc, |insn| match insn.opcode {
///     Opcode::LIT1 => Rewrite::Replace(vec![Instruction::with_u16(
///         Opcode::LIT2,
///         u16::from(insn.operand_u32() as u8),
///     )]),
///     _ => Rewrite::Keep,
/// })
/// .unwrap();
///
/// // The branch still encodes label-table index 0; the table still
/// // points at the (unmoved, here) marker.
/// assert_eq!(proc.labels, vec![0]);
/// assert!(instrs(&proc.code).any(|i| i.unwrap().opcode == Opcode::LIT2));
/// ```
///
/// # Errors
///
/// Fails if the code does not decode, or if the pass drops a `LABELV`
/// that the label table references ([`RewriteError::DroppedLabel`]).
pub fn rewrite_instrs<F>(proc: &mut Procedure, mut pass: F) -> Result<RewriteSummary, RewriteError>
where
    F: FnMut(InstrView<'_>) -> Rewrite,
{
    let mut code = Vec::with_capacity(proc.code.len());
    // Old LABELV offset -> new LABELV offset, in code order.
    let mut moved: Vec<(u32, u32)> = Vec::new();
    let mut summary = RewriteSummary::default();

    for insn in instrs(&proc.code) {
        let insn = insn?;
        summary.visited += 1;
        let emit_start = code.len();
        match pass(insn) {
            Rewrite::Keep => {
                code.push(insn.opcode as u8);
                code.extend_from_slice(insn.operand_slice());
                if insn.opcode == Opcode::LABELV {
                    moved.push((insn.offset as u32, emit_start as u32));
                }
            }
            Rewrite::Remove => {
                summary.removed += 1;
            }
            Rewrite::Replace(replacement) => {
                summary.replaced += 1;
                let mut claimed = false;
                for r in &replacement {
                    if r.opcode == Opcode::LABELV && !claimed {
                        moved.push((insn.offset as u32, code.len() as u32));
                        claimed = true;
                    }
                    r.encode_into(&mut code);
                }
            }
        }
    }

    let labels = proc
        .labels
        .iter()
        .enumerate()
        .map(|(label, &old)| {
            moved
                .iter()
                .find(|&&(o, _)| o == old)
                .map(|&(_, n)| n)
                .ok_or(RewriteError::DroppedLabel { label, target: old })
        })
        .collect::<Result<Vec<u32>, _>>()?;

    summary.label_fixups = proc
        .labels
        .iter()
        .zip(&labels)
        .filter(|&(&old, &new)| old != new)
        .count();
    proc.code = code;
    proc.labels = labels;
    Ok(summary)
}

/// [`rewrite_instrs`], additionally reporting `bytecode.rewrite.*`
/// counters (instructions visited / removed / replaced, label-table
/// fixups) into `recorder`.
///
/// # Errors
///
/// Same as [`rewrite_instrs`]; nothing is recorded on the error path
/// (the procedure is untouched, so there is no work to report).
pub fn rewrite_instrs_with<F>(
    proc: &mut Procedure,
    recorder: &Recorder,
    pass: F,
) -> Result<RewriteSummary, RewriteError>
where
    F: FnMut(InstrView<'_>) -> Rewrite,
{
    let summary = rewrite_instrs(proc, pass)?;
    if recorder.is_enabled() {
        let mut batch = Metrics::new();
        batch.add(names::BYTECODE_REWRITE_VISITED, summary.visited as u64);
        batch.add(names::BYTECODE_REWRITE_REMOVED, summary.removed as u64);
        batch.add(names::BYTECODE_REWRITE_REPLACED, summary.replaced as u64);
        batch.add(
            names::BYTECODE_REWRITE_LABEL_FIXUPS,
            summary.label_fixups as u64,
        );
        recorder.record(batch);
    }
    Ok(summary)
}

/// What [`rewrite_instrs`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RewriteSummary {
    /// Instructions the pass visited (all of them, on success).
    pub visited: usize,
    /// Instructions dropped by [`Rewrite::Remove`].
    pub removed: usize,
    /// Instructions replaced by [`Rewrite::Replace`].
    pub replaced: usize,
    /// Label-table entries re-pointed because their `LABELV` moved.
    pub label_fixups: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{assemble, code_with_labels, disassemble_proc};
    use crate::{decode, validate_program};

    fn branchy_proc() -> Procedure {
        let (code, labels) = code_with_labels(&[
            Instruction::op(Opcode::LABELV),
            Instruction::new(Opcode::LIT1, &[1]),
            Instruction::with_u16(Opcode::BrTrue, 1),
            Instruction::with_u16(Opcode::JUMPV, 0),
            Instruction::op(Opcode::LABELV),
            Instruction::op(Opcode::RETV),
        ]);
        let mut proc = Procedure::new("f");
        proc.code = code;
        proc.labels = labels;
        proc
    }

    #[test]
    fn views_agree_with_owned_decoding() {
        let proc = branchy_proc();
        let owned: Vec<Instruction> = decode(&proc.code).collect::<Result<_, _>>().unwrap();
        let views: Vec<InstrView<'_>> = instrs(&proc.code).collect::<Result<_, _>>().unwrap();
        assert_eq!(owned.len(), views.len());
        for (a, b) in owned.iter().zip(&views) {
            assert_eq!(a.opcode, b.opcode);
            assert_eq!(a.offset, b.offset);
            assert_eq!(a.operand_slice(), b.operand_slice());
            assert_eq!(a.size(), b.size());
            assert_eq!(*a, b.to_instruction());
        }
    }

    #[test]
    fn views_borrow_the_stream() {
        let code = [Opcode::LIT2 as u8, 0xcd, 0xab];
        let view = instrs(&code).next().unwrap().unwrap();
        assert!(std::ptr::eq(view.operand_slice().as_ptr(), &code[1]));
        assert_eq!(view.operand_u16(), 0xabcd);
    }

    #[test]
    fn decode_errors_surface_and_stop() {
        let mut it = instrs(&[0xff]);
        assert!(matches!(
            it.next(),
            Some(Err(DecodeError::BadOpcode { .. }))
        ));
        assert!(it.next().is_none());

        let code = [Opcode::LIT4 as u8, 1];
        let err = for_each_instr(&code, |_| ControlFlow::<()>::Continue(())).unwrap_err();
        assert!(matches!(err, DecodeError::TruncatedOperands { .. }));
    }

    #[test]
    fn for_each_breaks_early() {
        let proc = branchy_proc();
        let mut seen = 0usize;
        let hit = for_each_instr(&proc.code, |insn| {
            seen += 1;
            if insn.opcode.is_branch() {
                ControlFlow::Break(insn.offset)
            } else {
                ControlFlow::Continue(())
            }
        })
        .unwrap();
        assert_eq!(hit, Some(3)); // LABELV (1B) + LIT1 (2B) put BrTrue at 3
        assert_eq!(seen, 3); // LABELV, LIT1, BrTrue — then stop
    }

    #[test]
    fn rewrite_moves_label_table_not_branches() {
        let mut proc = branchy_proc();
        let before: Vec<u8> = proc.code.clone();
        // Widen the literal: every later offset shifts by one byte.
        let summary = rewrite_instrs(&mut proc, |insn| match insn.opcode {
            Opcode::LIT1 => Rewrite::Replace(vec![Instruction::with_u16(
                Opcode::LIT2,
                u16::from(insn.operand_u32() as u8),
            )]),
            _ => Rewrite::Keep,
        })
        .unwrap();
        assert_eq!(
            summary,
            RewriteSummary {
                visited: 6,
                removed: 0,
                replaced: 1,
                label_fixups: 1, // only label 1, downstream of the widening
            }
        );
        assert_eq!(proc.code.len(), before.len() + 1);
        // Branch operands are untouched: still indices 1 and 0.
        let views: Vec<_> = instrs(&proc.code).collect::<Result<_, _>>().unwrap();
        assert_eq!(views[2].opcode, Opcode::BrTrue);
        assert_eq!(views[2].operand_u16(), 1);
        assert_eq!(views[3].opcode, Opcode::JUMPV);
        assert_eq!(views[3].operand_u16(), 0);
        // The label table moved instead: entry 1's LABELV shifted by 1.
        assert_eq!(proc.labels[0], 0);
        assert_eq!(proc.labels[1] as usize, views[4].offset);
        assert_eq!(views[4].opcode, Opcode::LABELV);
    }

    #[test]
    fn rewrite_with_reports_metrics() {
        let mut proc = branchy_proc();
        let recorder = Recorder::new();
        rewrite_instrs_with(&mut proc, &recorder, |insn| match insn.opcode {
            Opcode::LIT1 => Rewrite::Replace(vec![Instruction::with_u16(Opcode::LIT2, 1)]),
            _ => Rewrite::Keep,
        })
        .unwrap();
        let m = recorder.snapshot();
        assert_eq!(m.counter(names::BYTECODE_REWRITE_VISITED), 6);
        assert_eq!(m.counter(names::BYTECODE_REWRITE_REPLACED), 1);
        assert_eq!(m.counter(names::BYTECODE_REWRITE_REMOVED), 0);
        assert_eq!(m.counter(names::BYTECODE_REWRITE_LABEL_FIXUPS), 1);
    }

    #[test]
    fn rewrite_keeps_validity() {
        let mut prog = assemble(
            "proc main frame=4 args=0\n\
             \tlabel 0\n\
             \tADDRLP 0\n\tINDIRU\n\tLIT1 1\n\tADDU\n\tADDRLP 0\n\tASGNU\n\
             \tLIT1 1\n\tBrTrue 0\n\
             \tRETV\nendproc\nentry main\n",
        )
        .unwrap();
        validate_program(&prog).unwrap();
        rewrite_instrs(&mut prog.procs[0], |insn| match insn.opcode {
            // A no-op peephole: rebuild every ADDRLP as itself.
            Opcode::ADDRLP => Rewrite::Replace(vec![Instruction::with_u16(
                Opcode::ADDRLP,
                insn.operand_u16(),
            )]),
            _ => Rewrite::Keep,
        })
        .unwrap();
        validate_program(&prog).unwrap();
    }

    #[test]
    fn removing_a_referenced_label_is_an_error() {
        let mut proc = branchy_proc();
        let err = rewrite_instrs(&mut proc, |insn| {
            if insn.opcode == Opcode::LABELV && insn.offset > 0 {
                Rewrite::Remove
            } else {
                Rewrite::Keep
            }
        })
        .unwrap_err();
        assert!(matches!(err, RewriteError::DroppedLabel { label: 1, .. }));
        // The procedure is untouched on error.
        assert_eq!(proc, branchy_proc());
    }

    #[test]
    fn replacement_labelv_claims_the_table_entry() {
        let mut proc = branchy_proc();
        // Rebuild the second marker with a preceding marker-less prefix.
        rewrite_instrs(&mut proc, |insn| {
            if insn.opcode == Opcode::LABELV && insn.offset > 0 {
                Rewrite::Replace(vec![Instruction::op(Opcode::LABELV)])
            } else {
                Rewrite::Keep
            }
        })
        .unwrap();
        let views: Vec<_> = instrs(&proc.code).collect::<Result<_, _>>().unwrap();
        assert_eq!(proc.labels[1] as usize, views[4].offset);
    }

    #[test]
    fn removing_unreferenced_code_shrinks_the_stream() {
        let (code, labels) = code_with_labels(&[
            Instruction::new(Opcode::LIT1, &[3]),
            Instruction::op(Opcode::POPU),
            Instruction::op(Opcode::RETV),
        ]);
        let mut proc = Procedure::new("f");
        proc.code = code;
        proc.labels = labels;
        let summary = rewrite_instrs(&mut proc, |insn| match insn.opcode {
            Opcode::LIT1 | Opcode::POPU => Rewrite::Remove,
            _ => Rewrite::Keep,
        })
        .unwrap();
        assert_eq!(summary.removed, 2);
        assert_eq!(proc.code, vec![Opcode::RETV as u8]);
    }

    #[test]
    fn disassembly_still_names_labels_after_rewrite() {
        let mut proc = branchy_proc();
        rewrite_instrs(&mut proc, |insn| match insn.opcode {
            Opcode::LIT1 => Rewrite::Replace(vec![Instruction::with_u16(Opcode::LIT2, 1)]),
            _ => Rewrite::Keep,
        })
        .unwrap();
        let text = disassemble_proc(&proc);
        assert!(text.contains("label 0"), "{text}");
        assert!(text.contains("label 1"), "{text}");
        assert!(!text.contains("LABELV"), "{text}");
    }
}
