//! Instruction decoding and encoding.
//!
//! Code is a flat byte stream: one opcode byte followed by
//! [`Opcode::operand_bytes`] literal bytes (little-endian where the operand
//! is a multi-byte quantity).

use crate::opcode::Opcode;
use std::fmt;

/// A decoded instruction: an opcode plus its literal operand bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// The operator.
    pub opcode: Opcode,
    /// Literal operand bytes (only the first `opcode.operand_bytes()` are
    /// meaningful).
    pub operands: [u8; 4],
    /// Byte offset of the opcode within the code stream it was decoded
    /// from (0 for hand-built instructions).
    pub offset: usize,
}

impl Instruction {
    /// Build an instruction from an opcode and operand bytes.
    ///
    /// # Panics
    ///
    /// Panics if `operands.len()` differs from `opcode.operand_bytes()`.
    pub fn new(opcode: Opcode, operands: &[u8]) -> Instruction {
        assert_eq!(
            operands.len(),
            opcode.operand_bytes(),
            "operand count mismatch for {opcode}"
        );
        let mut buf = [0u8; 4];
        buf[..operands.len()].copy_from_slice(operands);
        Instruction {
            opcode,
            operands: buf,
            offset: 0,
        }
    }

    /// Build an operand-less instruction.
    pub fn op(opcode: Opcode) -> Instruction {
        Instruction::new(opcode, &[])
    }

    /// Build an instruction with a 2-byte little-endian operand (offsets,
    /// label-table indices, descriptor indices, block sizes).
    pub fn with_u16(opcode: Opcode, value: u16) -> Instruction {
        Instruction::new(opcode, &value.to_le_bytes())
    }

    /// The meaningful operand bytes.
    pub fn operand_slice(&self) -> &[u8] {
        &self.operands[..self.opcode.operand_bytes()]
    }

    /// Operand interpreted as a little-endian unsigned integer
    /// (zero-extended; 0 for operand-less opcodes).
    pub fn operand_u32(&self) -> u32 {
        let mut v = 0u32;
        for (i, &b) in self.operand_slice().iter().enumerate() {
            v |= u32::from(b) << (8 * i);
        }
        v
    }

    /// Operand as a `u16` (label index, frame offset, descriptor index,
    /// block size).
    pub fn operand_u16(&self) -> u16 {
        self.operand_u32() as u16
    }

    /// Encoded size in bytes (opcode + operands).
    pub fn size(&self) -> usize {
        1 + self.opcode.operand_bytes()
    }

    /// Append the encoded instruction to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.opcode as u8);
        out.extend_from_slice(self.operand_slice());
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode)?;
        for b in self.operand_slice() {
            write!(f, " {b}")?;
        }
        Ok(())
    }
}

/// An error produced while decoding a code stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// A byte that is not a valid opcode, at the given offset.
    BadOpcode {
        /// Offset of the bad byte.
        offset: usize,
        /// The byte value.
        byte: u8,
    },
    /// The stream ended in the middle of an instruction's operands.
    TruncatedOperands {
        /// Offset of the truncated instruction.
        offset: usize,
        /// Its opcode.
        opcode: Opcode,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode { offset, byte } => {
                write!(f, "invalid opcode byte {byte:#04x} at offset {offset}")
            }
            DecodeError::TruncatedOperands { offset, opcode } => {
                write!(f, "truncated operands for {opcode} at offset {offset}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Iterator over the instructions of a code stream.
///
/// Produced by [`decode`].
#[derive(Debug, Clone)]
pub struct Decode<'a> {
    code: &'a [u8],
    pos: usize,
    failed: bool,
}

impl<'a> Iterator for Decode<'a> {
    type Item = Result<Instruction, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.pos >= self.code.len() {
            return None;
        }
        let offset = self.pos;
        let byte = self.code[offset];
        let opcode = match Opcode::from_u8(byte) {
            Some(op) => op,
            None => {
                self.failed = true;
                return Some(Err(DecodeError::BadOpcode { offset, byte }));
            }
        };
        let n = opcode.operand_bytes();
        if offset + 1 + n > self.code.len() {
            self.failed = true;
            return Some(Err(DecodeError::TruncatedOperands { offset, opcode }));
        }
        let mut operands = [0u8; 4];
        operands[..n].copy_from_slice(&self.code[offset + 1..offset + 1 + n]);
        self.pos = offset + 1 + n;
        Some(Ok(Instruction {
            opcode,
            operands,
            offset,
        }))
    }
}

/// Decode a code stream into instructions.
///
/// The iterator yields an `Err` and then stops if the stream is malformed.
///
/// ```
/// use pgr_bytecode::{decode, Opcode};
/// let code = [Opcode::LIT2 as u8, 0x34, 0x12, Opcode::RETU as u8];
/// let insns: Vec<_> = decode(&code).collect::<Result<_, _>>().unwrap();
/// assert_eq!(insns[0].operand_u32(), 0x1234);
/// assert_eq!(insns[1].opcode, Opcode::RETU);
/// ```
pub fn decode(code: &[u8]) -> Decode<'_> {
    Decode {
        code,
        pos: 0,
        failed: false,
    }
}

/// Encode a sequence of instructions into a byte stream.
pub fn encode<'a, I>(insns: I) -> Vec<u8>
where
    I: IntoIterator<Item = &'a Instruction>,
{
    let mut out = Vec::new();
    for insn in insns {
        insn.encode_into(&mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_opcodes() {
        let insns: Vec<Instruction> = Opcode::ALL
            .iter()
            .map(|&op| {
                let bytes: Vec<u8> = (1..=op.operand_bytes() as u8).collect();
                Instruction::new(op, &bytes)
            })
            .collect();
        let code = encode(&insns);
        let back: Vec<Instruction> = decode(&code).collect::<Result<_, _>>().unwrap();
        assert_eq!(back.len(), insns.len());
        for (a, b) in insns.iter().zip(&back) {
            assert_eq!(a.opcode, b.opcode);
            assert_eq!(a.operand_slice(), b.operand_slice());
        }
    }

    #[test]
    fn offsets_are_recorded() {
        let code = encode(&[
            Instruction::with_u16(Opcode::ADDRLP, 8),
            Instruction::op(Opcode::INDIRU),
            Instruction::op(Opcode::RETU),
        ]);
        let insns: Vec<_> = decode(&code).collect::<Result<_, _>>().unwrap();
        assert_eq!(insns[0].offset, 0);
        assert_eq!(insns[1].offset, 3);
        assert_eq!(insns[2].offset, 4);
    }

    #[test]
    fn truncated_stream_errors() {
        let code = [Opcode::LIT4 as u8, 1, 2];
        let res: Result<Vec<_>, _> = decode(&code).collect();
        assert!(matches!(
            res,
            Err(DecodeError::TruncatedOperands {
                offset: 0,
                opcode: Opcode::LIT4
            })
        ));
    }

    #[test]
    fn bad_opcode_errors_and_stops() {
        let code = [0xff, 0x00];
        let mut it = decode(&code);
        assert!(matches!(
            it.next(),
            Some(Err(DecodeError::BadOpcode {
                offset: 0,
                byte: 0xff
            }))
        ));
        assert!(it.next().is_none());
    }

    #[test]
    fn operand_u32_is_little_endian() {
        let insn = Instruction::new(Opcode::LIT4, &[0x78, 0x56, 0x34, 0x12]);
        assert_eq!(insn.operand_u32(), 0x1234_5678);
        let insn = Instruction::with_u16(Opcode::BrTrue, 0x0102);
        assert_eq!(insn.operand_u16(), 0x0102);
    }

    #[test]
    #[should_panic(expected = "operand count mismatch")]
    fn wrong_operand_count_panics() {
        let _ = Instruction::new(Opcode::LIT1, &[1, 2]);
    }
}
