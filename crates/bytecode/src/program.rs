//! Program packaging: procedures, descriptors, label tables, the global
//! table, and trampolines (paper §3 and Appendix 3).

use crate::insn::{decode, DecodeError, Instruction};
use crate::opcode::Opcode;

/// A bytecoded procedure and its descriptor contents.
///
/// The descriptor of §3 records three elements: the procedure's bytecode,
/// a table of branch and jump offsets (the *label table*), and the size of
/// the procedure's frame. Branch instructions hold label-table *indices*;
/// the table holds the offsets, so the compressor can rewrite code without
/// touching the indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Procedure {
    /// Symbolic name (for diagnostics and linking; not part of the image).
    pub name: String,
    /// Size of the procedure's local-variable area, in bytes.
    pub frame_size: u32,
    /// Size of the procedure's incoming-argument area, in bytes.
    pub arg_size: u32,
    /// The (uncompressed or compressed) code stream.
    pub code: Vec<u8>,
    /// Label table: `labels[i]` is the byte offset into `code` of branch
    /// target `i`.
    pub labels: Vec<u32>,
    /// Whether the procedure's address escapes and therefore needs a
    /// C-callable trampoline (§3).
    pub needs_trampoline: bool,
}

impl Procedure {
    /// Create an empty procedure with the given name.
    pub fn new(name: impl Into<String>) -> Procedure {
        Procedure {
            name: name.into(),
            frame_size: 0,
            arg_size: 0,
            code: Vec::new(),
            labels: Vec::new(),
            needs_trampoline: false,
        }
    }

    /// Decode the procedure's code stream.
    ///
    /// # Errors
    ///
    /// Returns the first [`DecodeError`] if the stream is malformed.
    pub fn instructions(&self) -> Result<Vec<Instruction>, DecodeError> {
        decode(&self.code).collect()
    }

    /// Byte ranges of the *straight-line segments* of this procedure: the
    /// code between consecutive `LABELV` markers. Each segment is a
    /// potential branch target, so the parser and compressor restart at
    /// every segment boundary (§4.1). `LABELV` bytes themselves are not
    /// part of any segment.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the stream is malformed.
    pub fn segments(&self) -> Result<Vec<std::ops::Range<usize>>, DecodeError> {
        let mut out = Vec::new();
        let mut start = 0usize;
        for insn in crate::pass::instrs(&self.code) {
            let insn = insn?;
            if insn.opcode == Opcode::LABELV {
                if insn.offset > start {
                    out.push(start..insn.offset);
                }
                start = insn.offset + 1;
            }
        }
        if self.code.len() > start {
            out.push(start..self.code.len());
        }
        Ok(out)
    }
}

/// An entry of the program-wide global-address table (Appendix 3's
/// `_globals[]`).
///
/// Global addresses are not known until link/load time, so the bytecode
/// stores table indices and "relies on the linker to fill in the table
/// entry" (§3). Our VM plays the linker: it assigns each entry an address
/// at load time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GlobalEntry {
    /// A datum in the program's initialized-data segment, at the given
    /// byte offset.
    Data {
        /// Symbolic name.
        name: String,
        /// Byte offset within [`Program::data`].
        offset: u32,
    },
    /// A datum in the uninitialized (BSS) segment, at the given byte
    /// offset within that segment.
    Bss {
        /// Symbolic name.
        name: String,
        /// Byte offset within the BSS segment.
        offset: u32,
    },
    /// The address of a bytecoded procedure (reaches it through its
    /// trampoline, like `&malloc`-style entries in Appendix 3).
    Proc {
        /// Descriptor index of the procedure.
        proc_index: u32,
    },
    /// The address of a native library routine, resolved by the host.
    Native {
        /// Host routine name (e.g. `putchar`).
        name: String,
    },
}

impl GlobalEntry {
    /// Symbolic name of the entry, if it has one.
    pub fn name(&self) -> Option<&str> {
        match self {
            GlobalEntry::Data { name, .. }
            | GlobalEntry::Bss { name, .. }
            | GlobalEntry::Native { name } => Some(name),
            GlobalEntry::Proc { .. } => None,
        }
    }
}

/// A complete bytecoded program: descriptors, global table, data segments,
/// and the entry point.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Procedure descriptors (`_procs[]` of Appendix 3).
    pub procs: Vec<Procedure>,
    /// Global-address table (`_globals[]` of Appendix 3).
    pub globals: Vec<GlobalEntry>,
    /// Initialized data segment.
    pub data: Vec<u8>,
    /// Size of the uninitialized (BSS) segment, in bytes.
    pub bss_size: u32,
    /// Descriptor index of the entry procedure (`main`, which always
    /// needs a trampoline, §3).
    pub entry: u32,
}

impl Program {
    /// Create an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Total bytecode bytes across all procedures.
    pub fn code_size(&self) -> usize {
        self.procs.iter().map(|p| p.code.len()).sum()
    }

    /// Find a procedure descriptor index by name.
    pub fn proc_index(&self, name: &str) -> Option<u32> {
        self.procs
            .iter()
            .position(|p| p.name == name)
            .map(|i| i as u32)
    }

    /// Find a global-table index by symbolic name.
    pub fn global_index(&self, name: &str) -> Option<u32> {
        self.globals
            .iter()
            .position(|g| g.name() == Some(name))
            .map(|i| i as u32)
    }

    /// Number of procedures that need a trampoline.
    pub fn trampoline_count(&self) -> usize {
        self.procs.iter().filter(|p| p.needs_trampoline).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::encode;

    fn ret_proc(name: &str) -> Procedure {
        let mut p = Procedure::new(name);
        p.code = encode(&[Instruction::op(Opcode::RETV)]);
        p
    }

    #[test]
    fn segments_split_at_labels() {
        let mut p = Procedure::new("f");
        let insns = [
            Instruction::with_u16(Opcode::ADDRFP, 0),
            Instruction::op(Opcode::INDIRU),
            Instruction::with_u16(Opcode::BrTrue, 0),
            Instruction::op(Opcode::LABELV),
            Instruction::op(Opcode::RETV),
        ];
        p.code = encode(&insns);
        p.labels = vec![insns[3].offset as u32];
        let segs = p.segments().unwrap();
        assert_eq!(segs.len(), 2);
        // First segment: everything before LABELV.
        assert_eq!(segs[0], 0..7);
        // Second segment: RETV after the LABELV byte.
        assert_eq!(segs[1], 8..9);
    }

    #[test]
    fn leading_and_trailing_labels_make_no_empty_segments() {
        let mut p = Procedure::new("f");
        p.code = encode(&[
            Instruction::op(Opcode::LABELV),
            Instruction::op(Opcode::RETV),
            Instruction::op(Opcode::LABELV),
        ]);
        let segs = p.segments().unwrap();
        assert_eq!(segs, vec![1..2]);
    }

    #[test]
    fn adjacent_labels_collapse() {
        let mut p = Procedure::new("f");
        p.code = encode(&[
            Instruction::op(Opcode::LABELV),
            Instruction::op(Opcode::LABELV),
            Instruction::op(Opcode::RETV),
        ]);
        assert_eq!(p.segments().unwrap(), vec![2..3]);
    }

    #[test]
    fn program_lookups() {
        let mut prog = Program::new();
        prog.procs.push(ret_proc("main"));
        prog.procs.push(ret_proc("helper"));
        prog.procs[0].needs_trampoline = true;
        prog.globals.push(GlobalEntry::Native {
            name: "putchar".into(),
        });
        prog.globals.push(GlobalEntry::Data {
            name: "table".into(),
            offset: 0,
        });
        assert_eq!(prog.proc_index("helper"), Some(1));
        assert_eq!(prog.proc_index("absent"), None);
        assert_eq!(prog.global_index("table"), Some(1));
        assert_eq!(prog.trampoline_count(), 1);
        assert_eq!(prog.code_size(), 2);
    }
}
