//! LZSS + Huffman: the gzip stand-in.
//!
//! §6 uses gzip "for calibration and as a very rough bound on what might
//! be achievable with good, general-purpose data compression" — it is
//! "free to exploit redundant patterns that span basic blocks" and needs
//! neither random access nor direct interpretability. This coder is the
//! same algorithmic family (LZ77 dictionary matching plus Huffman
//! entropy coding, i.e. DEFLATE's shape without its framing):
//!
//! * greedy longest-match LZSS over a 32 KiB window with hash-chain
//!   search,
//! * token stream: 1-bit flag, then either a Huffman-coded literal or a
//!   raw 15-bit distance + 8-bit length (match lengths 3..=258),
//! * sizes include the literal-code header.

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::Code;

const WINDOW: usize = 32 * 1024;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const HASH_BITS: u32 = 15;

/// One LZSS token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Token {
    Literal(u8),
    Match { dist: u16, len: u16 },
}

fn hash3(data: &[u8], i: usize) -> usize {
    let v = u32::from(data[i]) | u32::from(data[i + 1]) << 8 | u32::from(data[i + 2]) << 16;
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Greedy tokenization with hash-chain match search.
fn tokenize(data: &[u8]) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut chain = vec![usize::MAX; data.len()];
    let mut i = 0;
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let mut cand = head[hash3(data, i)];
            let mut tries = 64;
            while cand != usize::MAX && i - cand <= WINDOW && tries > 0 {
                let limit = (data.len() - i).min(MAX_MATCH);
                let mut n = 0;
                while n < limit && data[cand + n] == data[i + n] {
                    n += 1;
                }
                if n > best_len {
                    best_len = n;
                    best_dist = i - cand;
                }
                cand = chain[cand];
                tries -= 1;
            }
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                dist: best_dist as u16,
                len: best_len as u16,
            });
            // Insert hash entries for every covered position.
            let end = i + best_len;
            while i < end {
                if i + MIN_MATCH <= data.len() {
                    let h = hash3(data, i);
                    chain[i] = head[h];
                    head[h] = i;
                }
                i += 1;
            }
        } else {
            tokens.push(Token::Literal(data[i]));
            if i + MIN_MATCH <= data.len() {
                let h = hash3(data, i);
                chain[i] = head[h];
                head[h] = i;
            }
            i += 1;
        }
    }
    tokens
}

/// Size accounting for one compression run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LzSize {
    /// Encoded payload bytes.
    pub payload: usize,
    /// Literal-code header bytes.
    pub header: usize,
}

impl LzSize {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.payload + self.header
    }

    /// Ratio against the input length.
    pub fn ratio(&self, input_len: usize) -> f64 {
        if input_len == 0 {
            1.0
        } else {
            self.total() as f64 / input_len as f64
        }
    }
}

/// Compress; returns the bitstream and its size accounting.
pub fn compress(data: &[u8]) -> (Vec<u8>, LzSize) {
    let tokens = tokenize(data);
    let mut freqs = vec![0u64; 256];
    for t in &tokens {
        if let Token::Literal(b) = t {
            freqs[*b as usize] += 1;
        }
    }
    let code = Code::from_freqs(&freqs);
    let mut w = BitWriter::new();
    for t in &tokens {
        match *t {
            Token::Literal(b) => {
                w.push_bit(false);
                code.write(&mut w, b as usize);
            }
            Token::Match { dist, len } => {
                w.push_bit(true);
                w.push_bits(u32::from(dist), 15);
                w.push_bits(u32::from(len - MIN_MATCH as u16), 8);
            }
        }
    }
    let bits = w.bit_len();
    (
        w.into_bytes(),
        LzSize {
            payload: bits.div_ceil(8),
            header: code.header_bytes(),
        },
    )
}

/// Decompress (`original` is needed to rebuild the literal code, as a
/// real container would carry it in the header; round-trip testing only).
pub fn decompress(original: &[u8], encoded: &[u8]) -> Option<Vec<u8>> {
    let mut freqs = vec![0u64; 256];
    for t in &tokenize(original) {
        if let Token::Literal(b) = t {
            freqs[*b as usize] += 1;
        }
    }
    let code = Code::from_freqs(&freqs);
    let decoder = code.decoder();
    let mut r = BitReader::new(encoded);
    let mut out = Vec::with_capacity(original.len());
    while out.len() < original.len() {
        match r.next_bit()? {
            false => out.push(decoder.read(&mut r)? as u8),
            true => {
                let dist = r.next_bits(15)? as usize;
                let len = r.next_bits(8)? as usize + MIN_MATCH;
                if dist == 0 || dist > out.len() {
                    return None;
                }
                for _ in 0..len {
                    let b = out[out.len() - dist];
                    out.push(b);
                }
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn repetitive_data_compresses_hard() {
        let data: Vec<u8> = b"the quick brown fox. "
            .iter()
            .copied()
            .cycle()
            .take(8000)
            .collect();
        let (encoded, size) = compress(&data);
        assert!(size.total() < data.len() / 10, "total {}", size.total());
        assert_eq!(decompress(&data, &encoded).unwrap(), data);
    }

    #[test]
    fn bytecode_like_data_reaches_gzip_territory() {
        // Synthetic "code": repeating instruction-ish patterns with
        // varying operand bytes.
        let mut data = Vec::new();
        let mut x = 7u32;
        for i in 0..6000u32 {
            x = x.wrapping_mul(1_103_515_245).wrapping_add(12_345);
            data.extend_from_slice(&[69, (i % 64) as u8, 0, 76, 73]);
            if x.is_multiple_of(3) {
                data.extend_from_slice(&[11, 94, (x % 16) as u8]);
            }
        }
        let (encoded, size) = compress(&data);
        let ratio = size.ratio(data.len());
        // The paper's gzip lands at 31-44% on real bytecode.
        assert!(ratio < 0.5, "ratio {ratio}");
        assert_eq!(decompress(&data, &encoded).unwrap(), data);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let (encoded, size) = compress(&[]);
        assert_eq!(size.payload, 0);
        assert_eq!(decompress(&[], &encoded).unwrap(), Vec::<u8>::new());
        let data = [1, 2, 3];
        let (encoded, _) = compress(&data);
        assert_eq!(decompress(&data, &encoded).unwrap(), data);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn roundtrips(chunks in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 1..40), 0..40)
        ) {
            // Concatenate repeated chunks so matches exist.
            let mut data = Vec::new();
            for c in &chunks {
                data.extend_from_slice(c);
                data.extend_from_slice(c);
            }
            let (encoded, _) = compress(&data);
            prop_assert_eq!(decompress(&data, &encoded).unwrap(), data);
        }
    }
}
