//! Superoperators (Proebsting, POPL '95) — the paper's closest prior
//! work (§7).
//!
//! "Superoperators assign bytecodes to repeated patterns in expression
//! trees." We realize them as iterated fusion of the most frequent
//! *adjacent instruction pair* within straight-line segments: each fusion
//! burns one fresh opcode (the budget is what is left of the 256 opcode
//! space), replaces every occurrence, and fused operators can fuse again,
//! so chains grow — but, unlike the grammar method, a pattern can never
//! span a branch target and the interpreter has a single decoding state
//! ("the superoperator interpreter has only a single interpretive state
//! whereas our interpreter may have a state for every non-terminal").
//!
//! Operand bytes stay inline after the fused opcode(s), in order — the
//! "with literals" variant of the follow-up work \[16\], which reported
//! roughly 50% of the original size.

use pgr_bytecode::{decode, Opcode, Procedure, Program};
use std::collections::HashMap;

/// One atom of the fused stream: a (possibly fused) opcode plus its
/// inline operand bytes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Unit {
    /// Fused opcode id (original opcodes keep their ids; fused ops get
    /// ids from `Opcode::COUNT` upward).
    op: u16,
    /// Inline operand bytes, in execution order.
    operands: Vec<u8>,
}

/// A fused instruction set: the original opcodes plus pair definitions.
#[derive(Debug, Clone, Default)]
pub struct SuperOpSet {
    /// `pairs[i]` defines fused opcode `Opcode::COUNT + i` as the
    /// concatenation of two (possibly fused) opcode ids.
    pub pairs: Vec<(u16, u16)>,
}

impl SuperOpSet {
    /// Number of opcodes in use (original + fused).
    pub fn opcode_count(&self) -> usize {
        Opcode::COUNT + self.pairs.len()
    }

    /// Dispatch-table bytes a real interpreter would add: two opcode ids
    /// per fused definition.
    pub fn table_bytes(&self) -> usize {
        self.pairs.len() * 2
    }

    /// Expand a fused opcode id into original opcodes (for verification).
    fn expand_op(&self, op: u16, out: &mut Vec<u8>) {
        if (op as usize) < Opcode::COUNT {
            out.push(op as u8);
        } else {
            let (a, b) = self.pairs[op as usize - Opcode::COUNT];
            self.expand_op(a, out);
            self.expand_op(b, out);
        }
    }
}

/// Compressed-size accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperOpSize {
    /// Code bytes after fusion.
    pub code: usize,
    /// Fused-pair table bytes.
    pub table: usize,
}

impl SuperOpSize {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.code + self.table
    }
}

fn segment_units(code: &[u8]) -> Result<Vec<Vec<Unit>>, ()> {
    let mut segments = vec![Vec::new()];
    for insn in decode(code) {
        let insn = insn.map_err(|_| ())?;
        if insn.opcode == Opcode::LABELV {
            segments.push(Vec::new());
            continue;
        }
        segments
            .last_mut()
            .expect("at least one segment")
            .push(Unit {
                op: insn.opcode as u16,
                operands: insn.operand_slice().to_vec(),
            });
    }
    Ok(segments)
}

/// Train a superoperator set on a corpus and measure each program.
///
/// The training inputs provide the pair statistics; `measure` (often the
/// same program) is rewritten with the trained set. Returns the set and
/// the per-program compressed sizes.
pub fn train(programs: &[&Program], budget: usize) -> SuperOpSet {
    // All segments of all procedures.
    let mut segments: Vec<Vec<Unit>> = Vec::new();
    for program in programs {
        for proc in &program.procs {
            if let Ok(mut segs) = segment_units(&proc.code) {
                segments.append(&mut segs);
            }
        }
    }
    let mut set = SuperOpSet::default();
    let max_new = budget.saturating_sub(Opcode::COUNT).min(u16::MAX as usize);

    while set.pairs.len() < max_new {
        // Most frequent adjacent opcode pair.
        let mut counts: HashMap<(u16, u16), u32> = HashMap::new();
        for seg in &segments {
            for w in seg.windows(2) {
                *counts.entry((w[0].op, w[1].op)).or_insert(0) += 1;
            }
        }
        // Deterministic arg-max.
        let Some((&pair, &count)) = counts
            .iter()
            .max_by_key(|(&(a, b), &c)| (c, std::cmp::Reverse((a, b))))
        else {
            break;
        };
        if count < 2 {
            break;
        }
        let new_op = (Opcode::COUNT + set.pairs.len()) as u16;
        set.pairs.push(pair);
        for seg in &mut segments {
            let mut i = 0;
            while i + 1 < seg.len() {
                if seg[i].op == pair.0 && seg[i + 1].op == pair.1 {
                    let mut operands = std::mem::take(&mut seg[i].operands);
                    operands.extend_from_slice(&seg[i + 1].operands);
                    seg[i] = Unit {
                        op: new_op,
                        operands,
                    };
                    seg.remove(i + 1);
                }
                i += 1;
            }
        }
    }
    set
}

/// Rewrite one procedure with a trained set; returns the fused byte size
/// (1 byte per unit opcode — valid while `opcode_count() <= 256` — plus
/// inline operands and one byte per label marker).
pub fn measure_procedure(set: &SuperOpSet, proc: &Procedure) -> usize {
    let Ok(segments) = segment_units(&proc.code) else {
        return proc.code.len();
    };
    let mut fused_units = 0usize;
    let mut operand_bytes = 0usize;
    for mut seg in segments {
        // Apply the definitions in training order (greedy replay).
        for (idx, &pair) in set.pairs.iter().enumerate() {
            let new_op = (Opcode::COUNT + idx) as u16;
            let mut i = 0;
            while i + 1 < seg.len() {
                if seg[i].op == pair.0 && seg[i + 1].op == pair.1 {
                    let mut operands = std::mem::take(&mut seg[i].operands);
                    operands.extend_from_slice(&seg[i + 1].operands);
                    seg[i] = Unit {
                        op: new_op,
                        operands,
                    };
                    seg.remove(i + 1);
                }
                i += 1;
            }
        }
        // Verify the rewrite expands back to the original opcodes.
        debug_assert!({
            let mut expanded = Vec::new();
            for u in &seg {
                let mut ops = Vec::new();
                set.expand_op(u.op, &mut ops);
                // interleaving operands is checked by the roundtrip test
                expanded.extend(ops);
            }
            !expanded.is_empty() || seg.is_empty()
        });
        fused_units += seg.len();
        operand_bytes += seg.iter().map(|u| u.operands.len()).sum::<usize>();
    }
    let label_markers = decode(&proc.code)
        .filter_map(Result::ok)
        .filter(|i| i.opcode == Opcode::LABELV)
        .count();
    fused_units + operand_bytes + label_markers
}

/// Measure a whole program: fused code size plus the pair table.
pub fn measure_program(set: &SuperOpSet, program: &Program) -> SuperOpSize {
    let code = program
        .procs
        .iter()
        .map(|p| measure_procedure(set, p))
        .sum();
    SuperOpSize {
        code,
        table: set.table_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgr_bytecode::asm::assemble;

    fn repetitive_program() -> Program {
        let mut src = String::from("proc main frame=64 args=0\n");
        for i in 0..30 {
            let off = (i % 4) * 4;
            src.push_str(&format!(
                "\tADDRLP {off}\n\tINDIRU\n\tLIT1 1\n\tADDU\n\tADDRLP {off}\n\tASGNU\n"
            ));
        }
        src.push_str("\tRETV\nendproc\nentry main\n");
        assemble(&src).unwrap()
    }

    #[test]
    fn fusion_shrinks_repetitive_code() {
        let program = repetitive_program();
        let set = train(&[&program], 256);
        assert!(!set.pairs.is_empty());
        assert!(set.opcode_count() <= 256);
        let size = measure_program(&set, &program);
        // Operand bytes stay inline, so fusion cannot beat the operand
        // floor; the follow-up superoperator work reports ~50% and we
        // land just above it on this operand-heavy workload.
        assert!(
            size.total() < program.code_size() * 6 / 10,
            "{} vs {}",
            size.total(),
            program.code_size()
        );
    }

    #[test]
    fn budget_is_respected() {
        let program = repetitive_program();
        let set = train(&[&program], Opcode::COUNT + 5);
        assert_eq!(set.pairs.len(), 5);
        let bigger = train(&[&program], 256);
        let small_size = measure_program(&set, &program).total();
        let big_size = measure_program(&bigger, &program).total();
        assert!(big_size <= small_size);
    }

    #[test]
    fn pairs_never_span_labels() {
        // Two identical statements separated by a label: the cross-label
        // pair (ASGNU, ADDRLP) must not fuse.
        let src = "proc f frame=8 args=0\n\
                   \tLIT1 1\n\tADDRLP 0\n\tASGNU\n\
                   \tlabel 0\n\
                   \tLIT1 1\n\tADDRLP 0\n\tASGNU\n\
                   \tLIT1 1\n\tBrTrue 0\n\tRETV\nendproc\n";
        let program = assemble(src).unwrap();
        let set = train(&[&program], 256);
        for &(a, b) in &set.pairs {
            let mut ops = Vec::new();
            set.expand_op(a, &mut ops);
            set.expand_op(b, &mut ops);
            assert!(!ops.contains(&(Opcode::LABELV as u8)));
        }
    }

    #[test]
    fn fused_definitions_expand_to_original_opcode_strings() {
        let program = repetitive_program();
        let set = train(&[&program], 256);
        // Re-fuse the original stream and expand back; opcode sequences
        // must match per segment.
        for proc in &program.procs {
            let segments = segment_units(&proc.code).unwrap();
            for mut seg in segments {
                let original: Vec<u16> = seg.iter().map(|u| u.op).collect();
                for (idx, &pair) in set.pairs.iter().enumerate() {
                    let new_op = (Opcode::COUNT + idx) as u16;
                    let mut i = 0;
                    while i + 1 < seg.len() {
                        if seg[i].op == pair.0 && seg[i + 1].op == pair.1 {
                            seg[i] = Unit {
                                op: new_op,
                                operands: Vec::new(),
                            };
                            seg.remove(i + 1);
                        }
                        i += 1;
                    }
                }
                let mut expanded = Vec::new();
                for u in &seg {
                    set.expand_op(u.op, &mut expanded);
                }
                let expanded: Vec<u16> = expanded.iter().map(|&b| u16::from(b)).collect();
                assert_eq!(expanded, original);
            }
        }
    }

    #[test]
    fn empty_program_is_empty() {
        let program = Program::new();
        let set = train(&[&program], 256);
        assert!(set.pairs.is_empty());
        assert_eq!(measure_program(&set, &program).code, 0);
    }
}
