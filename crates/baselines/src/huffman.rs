//! Canonical Huffman coding over an arbitrary symbol alphabet.
//!
//! This is §4's fixed-to-variable strawman: optimal per-symbol code
//! lengths, but decoding must "examine the program representation one bit
//! at a time", which is why the paper flips to variable-to-fixed codes.
//! The coder is also the entropy stage of the gzip stand-in
//! ([`crate::lzsshuff`]).

use crate::bitio::{BitReader, BitWriter};

/// A canonical Huffman code: one length and codeword per symbol.
#[derive(Debug, Clone)]
pub struct Code {
    /// Code length in bits per symbol (0 = symbol unused).
    pub lengths: Vec<u8>,
    /// Canonical codewords, aligned with `lengths`.
    pub words: Vec<u32>,
}

/// Maximum code length (canonical codes are depth-limited for table
/// decoders; 15 matches DEFLATE).
pub const MAX_BITS: u8 = 15;

impl Code {
    /// Build a length-limited canonical code from symbol frequencies.
    ///
    /// # Panics
    ///
    /// Panics if `freqs` is empty.
    pub fn from_freqs(freqs: &[u64]) -> Code {
        assert!(!freqs.is_empty());
        let lengths = code_lengths(freqs);
        let words = canonical_words(&lengths);
        Code { lengths, words }
    }

    /// Encode one symbol.
    pub fn write(&self, w: &mut BitWriter, symbol: usize) {
        let len = self.lengths[symbol];
        debug_assert!(len > 0, "symbol {symbol} has no code");
        w.push_bits(self.words[symbol], u32::from(len));
    }

    /// Total encoded bits for a frequency histogram (for size planning).
    pub fn cost_bits(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .zip(&self.lengths)
            .map(|(&f, &l)| f * u64::from(l))
            .sum()
    }

    /// Serialized header size in bytes: one length byte per symbol (a
    /// real format would pack these; one byte is a fair, simple charge).
    pub fn header_bytes(&self) -> usize {
        self.lengths.len()
    }

    /// Build a decoder for this code.
    pub fn decoder(&self) -> Decoder {
        Decoder::new(&self.lengths)
    }
}

/// Huffman code lengths via the standard two-queue/heap algorithm, then
/// depth-limiting by frequency flattening if anything exceeds
/// [`MAX_BITS`].
fn code_lengths(freqs: &[u64]) -> Vec<u8> {
    let n = freqs.len();
    let used: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    let mut lengths = vec![0u8; n];
    match used.len() {
        0 => return lengths,
        1 => {
            lengths[used[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // (freq, node id); internal nodes get ids >= n.
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> = used
        .iter()
        .map(|&i| std::cmp::Reverse((freqs[i], i)))
        .collect();
    let mut parent: Vec<usize> = vec![usize::MAX; n];
    let mut internal_parent: Vec<usize> = Vec::new();
    let mut next_id = n;
    while heap.len() > 1 {
        let std::cmp::Reverse((fa, a)) = heap.pop().expect("len > 1");
        let std::cmp::Reverse((fb, b)) = heap.pop().expect("len > 1");
        let id = next_id;
        next_id += 1;
        internal_parent.push(usize::MAX);
        for child in [a, b] {
            if child < n {
                parent[child] = id;
            } else {
                internal_parent[child - n] = id;
            }
        }
        heap.push(std::cmp::Reverse((fa + fb, id)));
    }
    for &i in &used {
        let mut depth = 0u32;
        let mut node = parent[i];
        while node != usize::MAX {
            depth += 1;
            node = internal_parent[node - n];
        }
        lengths[i] = depth as u8;
    }

    // Depth-limit by flattening the distribution and retrying.
    if lengths.iter().any(|&l| l > MAX_BITS) {
        let squashed: Vec<u64> = freqs
            .iter()
            .map(|&f| if f > 0 { 1 + f / 4 } else { 0 })
            .collect();
        return code_lengths(&squashed);
    }
    lengths
}

/// Canonical codewords from lengths (shorter codes first, then symbol
/// order).
fn canonical_words(lengths: &[u8]) -> Vec<u32> {
    let mut pairs: Vec<(u8, usize)> = lengths
        .iter()
        .enumerate()
        .filter(|(_, &l)| l > 0)
        .map(|(i, &l)| (l, i))
        .collect();
    pairs.sort_unstable();
    let mut words = vec![0u32; lengths.len()];
    let mut code = 0u32;
    let mut prev_len = 0u8;
    for (len, sym) in pairs {
        code <<= len - prev_len;
        words[sym] = code;
        code += 1;
        prev_len = len;
    }
    words
}

/// A bit-at-a-time canonical decoder.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// `(length, codeword, symbol)` sorted for linear-scan decoding.
    table: Vec<(u8, u32, usize)>,
}

impl Decoder {
    fn new(lengths: &[u8]) -> Decoder {
        let words = canonical_words(lengths);
        let mut table: Vec<(u8, u32, usize)> = lengths
            .iter()
            .enumerate()
            .filter(|(_, &l)| l > 0)
            .map(|(i, &l)| (l, words[i], i))
            .collect();
        table.sort_unstable();
        Decoder { table }
    }

    /// Decode one symbol.
    pub fn read(&self, r: &mut BitReader<'_>) -> Option<usize> {
        let mut code = 0u32;
        let mut len = 0u8;
        loop {
            code = code << 1 | u32::from(r.next_bit()?);
            len += 1;
            // Linear scan is fine for test-grade decoding.
            for &(l, w, sym) in &self.table {
                if l == len && w == code {
                    return Some(sym);
                }
                if l > len {
                    break;
                }
            }
            if len > MAX_BITS {
                return None;
            }
        }
    }
}

/// The result of compressing a byte string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HuffSize {
    /// Payload bits, rounded up to bytes.
    pub payload: usize,
    /// Header (code lengths) bytes.
    pub header: usize,
}

impl HuffSize {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.payload + self.header
    }
}

/// Compress bytes; returns the encoded stream (header excluded) and its
/// size accounting.
pub fn compress_bytes(data: &[u8]) -> (Vec<u8>, HuffSize) {
    let mut freqs = vec![0u64; 256];
    for &b in data {
        freqs[b as usize] += 1;
    }
    let code = Code::from_freqs(&freqs);
    let mut w = BitWriter::new();
    for &b in data {
        code.write(&mut w, b as usize);
    }
    let bits = w.bit_len();
    let bytes = w.into_bytes();
    (
        bytes,
        HuffSize {
            payload: bits.div_ceil(8),
            header: code.header_bytes(),
        },
    )
}

/// Decompress `count` symbols (for round-trip tests).
pub fn decompress_bytes(data: &[u8], encoded: &[u8], count: usize) -> Option<Vec<u8>> {
    let mut freqs = vec![0u64; 256];
    for &b in data {
        freqs[b as usize] += 1;
    }
    let code = Code::from_freqs(&freqs);
    let decoder = code.decoder();
    let mut r = BitReader::new(encoded);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(decoder.read(&mut r)? as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn skewed_data_compresses_well() {
        let mut data = vec![0u8; 10_000];
        for (i, b) in data.iter_mut().enumerate() {
            if i % 17 == 0 {
                *b = 1;
            }
            if i % 201 == 0 {
                *b = i as u8;
            }
        }
        let (encoded, size) = compress_bytes(&data);
        assert!(size.payload < data.len() / 4, "payload {}", size.payload);
        let back = decompress_bytes(&data, &encoded, data.len()).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn uniform_data_does_not_explode() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let (_, size) = compress_bytes(&data);
        // At worst ~1 byte/symbol plus the header.
        assert!(size.total() <= data.len() + 300);
    }

    #[test]
    fn single_symbol_alphabet() {
        let data = vec![7u8; 100];
        let (encoded, size) = compress_bytes(&data);
        assert!(size.payload <= 13);
        let back = decompress_bytes(&data, &encoded, 100).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn canonical_words_are_prefix_free() {
        let freqs: Vec<u64> = (0..32).map(|i| 1 + i * i).collect();
        let code = Code::from_freqs(&freqs);
        for a in 0..32 {
            for b in 0..32 {
                if a == b {
                    continue;
                }
                let (la, lb) = (code.lengths[a], code.lengths[b]);
                if la == 0 || lb == 0 || la > lb {
                    continue;
                }
                let prefix = code.words[b] >> (lb - la);
                assert_ne!(prefix, code.words[a], "{a} prefixes {b}");
            }
        }
    }

    #[test]
    fn kraft_inequality_holds() {
        let freqs: Vec<u64> = (0..256).map(|i| (i % 7) as u64 + 1).collect();
        let code = Code::from_freqs(&freqs);
        let kraft: f64 = code
            .lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-i32::from(l)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft = {kraft}");
    }

    proptest! {
        #[test]
        fn roundtrips(data in prop::collection::vec(any::<u8>(), 1..2000)) {
            let (encoded, _) = compress_bytes(&data);
            let back = decompress_bytes(&data, &encoded, data.len()).unwrap();
            prop_assert_eq!(back, data);
        }
    }
}
