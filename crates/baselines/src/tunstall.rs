//! Tunstall's variable-to-fixed code for a memoryless source (§7).
//!
//! "The compression techniques that we use were inspired by Tunstall's
//! construction of optimal variable-to-fixed length codes." The paper
//! names two obstacles to using Tunstall directly on programs: the
//! memoryless-source assumption ("programs contain too much structure"),
//! and branch targets under unique parsability ("since branch targets may
//! occur at nearly any point, insisting on unique parsability results in
//! poor compression").
//!
//! This implementation makes both effects measurable: the dictionary is
//! built from byte frequencies (memoryless), codewords are `k` bits
//! fixed, and [`compress_segmented`] restarts the parse at every segment
//! boundary — flushing the partial dictionary word — exactly as direct
//! interpretation of branchy code would require.

/// A Tunstall dictionary: a 256-ary parse tree with at most `2^k` nodes,
/// every node carrying a codeword (assigning codewords to internal nodes
/// keeps flushed prefixes encodable — the "plurally parsable" relaxation
/// the paper ends up needing too).
#[derive(Debug, Clone)]
pub struct Dictionary {
    /// Codeword width in bits.
    pub k: u32,
    /// `children[node][byte]` -> node, or `usize::MAX`.
    children: Vec<[u32; 256]>,
    /// The byte string each node spells (root = empty).
    strings: Vec<Vec<u8>>,
}

const NONE: u32 = u32::MAX;

impl Dictionary {
    /// Build a dictionary of up to `2^k` nodes for the byte distribution
    /// of `sample`, by repeatedly expanding the most probable leaf
    /// (Tunstall's construction).
    ///
    /// # Panics
    ///
    /// Panics if `k < 9` (the tree must at least hold the root and all
    /// 256 single-byte children) or `k > 20`.
    pub fn build(sample: &[u8], k: u32) -> Dictionary {
        assert!((9..=20).contains(&k), "k = {k} out of range");
        let budget = 1usize << k;
        let mut freqs = [0u64; 256];
        for &b in sample {
            freqs[b as usize] += 1;
        }
        let total: u64 = freqs.iter().sum::<u64>().max(1);
        let prob = |b: usize| freqs[b] as f64 / total as f64;

        let mut dict = Dictionary {
            k,
            children: vec![[NONE; 256]],
            strings: vec![Vec::new()],
        };
        // Max-heap of (probability, node) leaves eligible for expansion.
        let mut heap: std::collections::BinaryHeap<(ordered::F64, u32)> =
            std::collections::BinaryHeap::new();

        // Seed: expand the root over the full alphabet.
        for (b, &f) in freqs.iter().enumerate() {
            if f == 0 {
                continue;
            }
            let node = dict.add_child(0, b as u8);
            heap.push((ordered::F64(prob(b)), node));
        }
        while dict.children.len() < budget {
            let Some((p, node)) = heap.pop() else { break };
            // Expand this leaf over the used alphabet.
            for (b, &f) in freqs.iter().enumerate() {
                if f == 0 {
                    continue;
                }
                if dict.children.len() >= budget {
                    break;
                }
                let child = dict.add_child(node as usize, b as u8);
                heap.push((ordered::F64(p.0 * prob(b)), child));
            }
        }
        dict
    }

    fn add_child(&mut self, parent: usize, byte: u8) -> u32 {
        let id = self.children.len() as u32;
        self.children.push([NONE; 256]);
        let mut s = self.strings[parent].clone();
        s.push(byte);
        self.strings.push(s);
        self.children[parent][byte as usize] = id;
        id
    }

    /// Number of nodes (= codewords).
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// Whether the dictionary holds only the root.
    pub fn is_empty(&self) -> bool {
        self.children.len() <= 1
    }

    /// Serialized dictionary size in bytes: each non-root node is one
    /// (parent codeword, byte) pair, `k` bits + 8 bits.
    pub fn table_bytes(&self) -> usize {
        ((self.len() - 1) * (self.k as usize + 8)).div_ceil(8)
    }

    /// Greedy-parse one segment into codewords; returns codewords.
    /// Returns `None` if a byte is outside the sampled alphabet.
    pub fn parse_segment(&self, segment: &[u8]) -> Option<Vec<u32>> {
        let mut out = Vec::new();
        let mut node = 0usize;
        for &b in segment {
            let next = self.children[node][b as usize];
            if next != NONE {
                node = next as usize;
                continue;
            }
            if node == 0 {
                return None; // unknown byte even from the root
            }
            out.push(node as u32);
            node = self.children[0][b as usize] as usize;
            if node == NONE as usize {
                return None;
            }
        }
        if node != 0 {
            out.push(node as u32);
        }
        Some(out)
    }

    /// Expand codewords back to bytes.
    pub fn expand(&self, words: &[u32]) -> Vec<u8> {
        let mut out = Vec::new();
        for &w in words {
            out.extend_from_slice(&self.strings[w as usize]);
        }
        out
    }
}

/// Compressed-size accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunstallSize {
    /// Codeword payload bytes.
    pub payload: usize,
    /// Dictionary bytes.
    pub table: usize,
    /// Codewords emitted.
    pub words: usize,
}

impl TunstallSize {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.payload + self.table
    }
}

/// Compress a byte string that restarts at every segment boundary (the
/// branch-target constraint): each segment flushes the parse.
///
/// Returns `None` if the data contains bytes absent from `sample`.
pub fn compress_segmented(
    dict: &Dictionary,
    segments: &[&[u8]],
) -> Option<(Vec<Vec<u32>>, TunstallSize)> {
    let mut all = Vec::new();
    let mut words = 0usize;
    for seg in segments {
        let w = dict.parse_segment(seg)?;
        words += w.len();
        all.push(w);
    }
    let payload = (words * dict.k as usize).div_ceil(8);
    Some((
        all,
        TunstallSize {
            payload,
            table: dict.table_bytes(),
            words,
        },
    ))
}

/// Tiny total-order wrapper for f64 heap keys.
mod ordered {
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct F64(pub f64);
    impl Eq for F64 {}
    #[allow(clippy::derive_ord_xor_partial_ord)]
    impl Ord for F64 {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0
                .partial_cmp(&other.0)
                .unwrap_or(std::cmp::Ordering::Equal)
        }
    }
    impl PartialOrd for F64 {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_sample(len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| match i % 16 {
                0..=7 => 0,
                8..=11 => 1,
                12 | 13 => 2,
                14 => (i % 5) as u8 + 3,
                _ => (i % 23) as u8,
            })
            .collect()
    }

    #[test]
    fn roundtrips_per_segment() {
        let data = skewed_sample(4000);
        let dict = Dictionary::build(&data, 12);
        let (words, _) = compress_segmented(&dict, &[&data]).unwrap();
        assert_eq!(dict.expand(&words[0]), data);
    }

    #[test]
    fn skewed_sources_compress() {
        let data = skewed_sample(20_000);
        let dict = Dictionary::build(&data, 12);
        let (_, size) = compress_segmented(&dict, &[&data]).unwrap();
        assert!(
            size.payload < data.len() / 2,
            "payload {} for {}",
            size.payload,
            data.len()
        );
    }

    #[test]
    fn segment_restarts_hurt_compression() {
        // The paper's point: forced restarts flush partial dictionary
        // words, so chopping the input into tiny "basic blocks" costs
        // codewords. A very low-entropy source makes the effect stark
        // (the dictionary holds long runs the restarts keep cutting).
        let data = vec![0u8; 8000];
        let dict = Dictionary::build(&data, 12);
        let (_, whole) = compress_segmented(&dict, &[&data]).unwrap();
        let tiny: Vec<&[u8]> = data.chunks(7).collect();
        let (words, chopped) = compress_segmented(&dict, &tiny).unwrap();
        assert!(
            chopped.words > whole.words * 20,
            "whole {} vs chopped {}",
            whole.words,
            chopped.words
        );
        // Round-trip still holds segment-wise.
        let rebuilt: Vec<u8> = words.iter().flat_map(|w| dict.expand(w)).collect();
        assert_eq!(rebuilt, data);

        // And on realistic skewed data the effect is present too.
        let data = skewed_sample(8000);
        let dict = Dictionary::build(&data, 12);
        let (_, whole) = compress_segmented(&dict, &[&data]).unwrap();
        let tiny: Vec<&[u8]> = data.chunks(7).collect();
        let (_, chopped) = compress_segmented(&dict, &tiny).unwrap();
        assert!(chopped.words > whole.words);
    }

    #[test]
    fn unknown_bytes_are_rejected() {
        let data = vec![1u8; 100];
        let dict = Dictionary::build(&data, 9);
        assert!(compress_segmented(&dict, &[&[2u8][..]]).is_none());
    }

    #[test]
    fn dictionary_respects_budget() {
        let data = skewed_sample(5000);
        for k in [9u32, 10, 12] {
            let dict = Dictionary::build(&data, k);
            assert!(dict.len() <= 1 << k);
            assert!(!dict.is_empty());
            assert!(dict.table_bytes() > 0);
        }
    }
}
