//! # pgr-baselines
//!
//! The comparison coders the paper measures against or discusses:
//!
//! * [`huffman`] — a canonical Huffman coder over bytes: the
//!   fixed-to-variable alternative §4 rejects ("we may be forced to
//!   examine the program representation one bit at a time"),
//! * [`lzsshuff`] — LZSS + Huffman, the stand-in for gzip's §6
//!   calibration role ("a very rough bound on what might be achievable
//!   with good, general-purpose data compression"),
//! * [`tunstall`] — Tunstall's optimal variable-to-fixed code for a
//!   memoryless source (§7), including the branch-target restart that
//!   ruins it for code ("insisting on unique parsability results in poor
//!   compression"),
//! * [`superop`] — Proebsting-style superoperators (§7): repeated
//!   adjacent-instruction pairs fused into fresh opcodes, bounded by the
//!   256-opcode budget.
//!
//! Every coder round-trips (each module tests `decode(encode(x)) == x`),
//! and every reported size includes the side tables a real decoder would
//! need, so the Table 1/E3/A3 comparisons are honest.

#![warn(missing_docs)]

pub mod bitio;
pub mod huffman;
pub mod lzsshuff;
pub mod superop;
pub mod tunstall;

use pgr_bytecode::Program;

/// Concatenated code bytes of a program (what the byte-oriented coders
/// compress).
pub fn program_bytes(program: &Program) -> Vec<u8> {
    let mut out = Vec::with_capacity(program.code_size());
    for proc in &program.procs {
        out.extend_from_slice(&proc.code);
    }
    out
}
