//! Bit-level I/O for the entropy coders.

/// Writes bits MSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bit: u8,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Append one bit.
    pub fn push_bit(&mut self, bit: bool) {
        if self.bit == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("just pushed");
            *last |= 0x80 >> self.bit;
        }
        self.bit = (self.bit + 1) % 8;
    }

    /// Append the low `count` bits of `value`, most significant first.
    pub fn push_bits(&mut self, value: u32, count: u32) {
        for i in (0..count).rev() {
            self.push_bit(value >> i & 1 != 0);
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.bit == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.bit as usize
        }
    }

    /// Finish, padding the last byte with zero bits.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Read from the front of `bytes`.
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, pos: 0 }
    }

    /// Next bit, or `None` at end of input.
    pub fn next_bit(&mut self) -> Option<bool> {
        let byte = self.bytes.get(self.pos / 8)?;
        let bit = byte >> (7 - self.pos % 8) & 1 != 0;
        self.pos += 1;
        Some(bit)
    }

    /// Next `count` bits as an integer (MSB first).
    pub fn next_bits(&mut self, count: u32) -> Option<u32> {
        let mut v = 0;
        for _ in 0..count {
            v = v << 1 | u32::from(self.next_bit()?);
        }
        Some(v)
    }

    /// Bits consumed so far.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        let mut w = BitWriter::new();
        w.push_bit(true);
        w.push_bits(0b1011, 4);
        w.push_bits(0xABCD, 16);
        assert_eq!(w.bit_len(), 21);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.next_bit(), Some(true));
        assert_eq!(r.next_bits(4), Some(0b1011));
        assert_eq!(r.next_bits(16), Some(0xABCD));
        assert_eq!(r.bit_pos(), 21);
    }

    #[test]
    fn end_of_input_is_none() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.next_bits(8), Some(0xFF));
        assert_eq!(r.next_bit(), None);
        assert_eq!(r.next_bits(1), None);
    }

    #[test]
    fn padding_is_zero() {
        let mut w = BitWriter::new();
        w.push_bit(true);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0x80]);
    }
}
