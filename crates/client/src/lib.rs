//! # pgr-client
//!
//! A retrying NDJSON client for the pgr request server: connect (and
//! reconnect) to the serve socket, stamp the caller's deadline into each
//! request, and absorb the two failure shapes the server is *designed*
//! to emit under load — transport drops and in-band `overloaded`
//! rejections — with jittered exponential backoff and a consecutive-
//! failure circuit breaker.
//!
//! The retry policy mirrors the server's contract (see
//! `crates/registry/src/proto.rs`):
//!
//! - **Transport failures** (connect refused, reset, EOF before a
//!   response line) are retried after reconnecting; the request may have
//!   executed, so only retry idempotent requests — every pgr serve op is.
//! - **`overloaded`** responses are retried, sleeping at least the
//!   server's `retry_after_ms` hint (the hint is a floor under the
//!   client's own backoff, never a ceiling over it).
//! - **Every other in-band error** — including `deadline_exceeded` — is
//!   final: the server answered; retrying would just repeat the answer
//!   (or burn another deadline's worth of work).
//!
//! Backoff is *decorrelated-jitter* exponential: attempt `n` sleeps a
//! uniformly random duration in `[base/2, min(cap, base << n)]`, with
//! the randomness drawn from a seeded splitmix64 stream so a failing
//! run replays byte-for-byte from its seed. After
//! [`ClientConfig::breaker_threshold`] *consecutive* failed calls the
//! breaker opens and calls fail fast (no socket traffic) until
//! [`ClientConfig::breaker_cooldown_ms`] passes; the next call is the
//! half-open probe — success closes the breaker, failure re-opens it
//! for another cooldown.

#![warn(missing_docs)]

use pgr_telemetry::faults::splitmix64;
use pgr_telemetry::json::{self, Value};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The fixed error token the server uses for admission-control
/// rejections (retryable).
pub const OVERLOADED: &str = "overloaded";
/// The fixed error token the server uses for deadline expiry (final).
pub const DEADLINE_EXCEEDED: &str = "deadline_exceeded";

/// Client knobs. `Default` gives a patient interactive client; tests
/// and batch drivers tighten the numbers.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Path of the server's Unix socket.
    pub socket: PathBuf,
    /// Per-request deadline, stamped into each request as `timeout_ms`
    /// (unless the request already carries one) and doubled into the
    /// socket read timeout so a dead server cannot hold a call forever.
    pub timeout_ms: Option<u64>,
    /// Retry attempts *after* the first try (transport + `overloaded`
    /// failures only).
    pub max_retries: u32,
    /// First-retry backoff; attempt `n` may wait up to `base << n`.
    pub backoff_base_ms: u64,
    /// Backoff ceiling per attempt.
    pub backoff_cap_ms: u64,
    /// Seed for the jitter stream — same seed, same sleeps.
    pub seed: u64,
    /// Consecutive failed *calls* (retries exhausted) that open the
    /// circuit breaker. 0 disables the breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects calls before allowing the
    /// half-open probe.
    pub breaker_cooldown_ms: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            socket: PathBuf::new(),
            timeout_ms: None,
            max_retries: 5,
            backoff_base_ms: 10,
            backoff_cap_ms: 2_000,
            seed: 0,
            breaker_threshold: 8,
            breaker_cooldown_ms: 1_000,
        }
    }
}

/// Why a call failed for good.
#[derive(Debug)]
pub enum CallError {
    /// The breaker is open; no socket traffic was attempted.
    BreakerOpen {
        /// Consecutive failures that opened it.
        consecutive_failures: u32,
    },
    /// Transport + `overloaded` retries ran out.
    RetriesExhausted {
        /// Total attempts made (first try + retries).
        attempts: u32,
        /// Human-readable description of the last failure.
        last: String,
    },
    /// The request line itself is unusable (not a JSON object).
    BadRequest(String),
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::BreakerOpen {
                consecutive_failures,
            } => write!(
                f,
                "circuit breaker open after {consecutive_failures} consecutive failures"
            ),
            CallError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s): {last}")
            }
            CallError::BadRequest(why) => write!(f, "bad request line: {why}"),
        }
    }
}

impl std::error::Error for CallError {}

/// One server answer: the raw NDJSON line plus the parsed `ok` flag and
/// error token, pre-extracted because every caller checks them.
#[derive(Debug, Clone)]
pub struct Response {
    /// The raw response line (no trailing newline).
    pub line: String,
    /// The response's `"ok"` field.
    pub ok: bool,
    /// The response's `"error"` field, when `ok` is false.
    pub error: Option<String>,
}

/// Counters the client keeps about its own behavior, for tests and for
/// `pgr call --verbose`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Request attempts that reached a socket write.
    pub attempts: u64,
    /// Attempts beyond the first, across all calls.
    pub retries: u64,
    /// Times the stream was (re)established.
    pub connects: u64,
    /// `overloaded` responses absorbed.
    pub overloaded: u64,
    /// Times the breaker transitioned closed → open.
    pub breaker_opens: u64,
}

/// Breaker state, observable for tests and stats lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation.
    Closed,
    /// Failing fast until the cooldown passes.
    Open,
    /// Cooldown passed; the next call is the probe.
    HalfOpen,
}

/// A connection to the serve socket with retry, backoff, and breaker
/// logic wrapped around one-line-in / one-line-out calls.
pub struct Client {
    config: ClientConfig,
    stream: Option<BufReader<UnixStream>>,
    rng_state: u64,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    stats: ClientStats,
}

impl Client {
    /// A client for `config.socket`. Does not connect yet — the first
    /// call does, so constructing a client against a not-yet-started
    /// server is fine.
    pub fn new(config: ClientConfig) -> Client {
        Client {
            rng_state: splitmix64(config.seed ^ 0x70_67_72_63_6c_69), // "pgrcli"
            config,
            stream: None,
            consecutive_failures: 0,
            opened_at: None,
            stats: ClientStats::default(),
        }
    }

    /// The client's behavior counters so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Current breaker state.
    pub fn breaker(&self) -> BreakerState {
        match self.opened_at {
            None => BreakerState::Closed,
            Some(t) => {
                if t.elapsed() >= Duration::from_millis(self.config.breaker_cooldown_ms) {
                    BreakerState::HalfOpen
                } else {
                    BreakerState::Open
                }
            }
        }
    }

    /// Send one request line and return the server's answer. Retries
    /// transport failures and `overloaded` rejections per the module
    /// docs; any returned [`Response`] — success or in-band error — is
    /// the server's final word.
    ///
    /// # Errors
    ///
    /// [`CallError::BreakerOpen`] without touching the socket when the
    /// breaker is open; [`CallError::RetriesExhausted`] when every
    /// attempt failed; [`CallError::BadRequest`] when `line` is not a
    /// JSON object (nothing to stamp a deadline into).
    pub fn call(&mut self, line: &str) -> Result<Response, CallError> {
        match self.breaker() {
            BreakerState::Closed | BreakerState::HalfOpen => {}
            BreakerState::Open => {
                return Err(CallError::BreakerOpen {
                    consecutive_failures: self.consecutive_failures,
                })
            }
        }
        let request = self.stamp_deadline(line)?;
        let mut last = String::new();
        for attempt in 0..=self.config.max_retries {
            if attempt > 0 {
                self.stats.retries += 1;
            }
            match self.attempt(&request) {
                Ok(resp) if resp.error.as_deref() == Some(OVERLOADED) => {
                    self.stats.overloaded += 1;
                    last = "server overloaded (retry_after_ms hint honored)".to_string();
                    let floor = json::parse(&resp.line)
                        .ok()
                        .and_then(|d| d.get("retry_after_ms").and_then(Value::as_u64))
                        .unwrap_or(0);
                    self.sleep_backoff(attempt, floor);
                }
                Ok(resp) => {
                    self.record_success();
                    return Ok(resp);
                }
                Err(e) => {
                    // The stream is suspect after any I/O failure; drop
                    // it so the next attempt reconnects from scratch.
                    self.stream = None;
                    last = e.to_string();
                    self.sleep_backoff(attempt, 0);
                }
            }
        }
        self.record_failure();
        Err(CallError::RetriesExhausted {
            attempts: self.config.max_retries + 1,
            last,
        })
    }

    /// One attempt: (re)connect if needed, write the line, read one
    /// response line.
    fn attempt(&mut self, request: &str) -> std::io::Result<Response> {
        self.stats.attempts += 1;
        if self.stream.is_none() {
            let stream = UnixStream::connect(&self.config.socket)?;
            if let Some(ms) = self.config.timeout_ms {
                // 2× the request deadline: the server's watchdog answers
                // a wedged worker within that bound, so a longer silence
                // means the *transport* is dead, not the request slow.
                let io = Duration::from_millis(ms.saturating_mul(2).max(1));
                stream.set_read_timeout(Some(io))?;
                stream.set_write_timeout(Some(io))?;
            }
            self.stream = Some(BufReader::new(stream));
            self.stats.connects += 1;
        }
        let reader = self.stream.as_mut().expect("stream just ensured");
        reader.get_mut().write_all(request.as_bytes())?;
        reader.get_mut().write_all(b"\n")?;
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before answering",
            ));
        }
        let line = line.trim_end().to_string();
        let doc = json::parse(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unparseable response: {e}"),
            )
        })?;
        Ok(Response {
            ok: doc.get("ok").and_then(Value::as_bool) == Some(true),
            error: doc.get("error").and_then(Value::as_str).map(str::to_owned),
            line,
        })
    }

    /// Insert the configured `timeout_ms` into a request line that lacks
    /// one, so the server's cooperative cancellation sees the caller's
    /// deadline. A request carrying its own `timeout_ms` wins.
    fn stamp_deadline(&self, line: &str) -> Result<String, CallError> {
        let line = line.trim();
        let Some(ms) = self.config.timeout_ms else {
            return Ok(line.to_string());
        };
        let doc = json::parse(line).map_err(|e| CallError::BadRequest(e.to_string()))?;
        if doc.as_obj().is_none() {
            return Err(CallError::BadRequest("not a JSON object".into()));
        }
        if doc.get("timeout_ms").is_some() {
            return Ok(line.to_string());
        }
        let inner = &line[1..line.len() - 1];
        Ok(if inner.trim().is_empty() {
            format!("{{\"timeout_ms\":{ms}}}")
        } else {
            format!("{{\"timeout_ms\":{ms},{inner}}}")
        })
    }

    /// Sleep the jittered exponential backoff for `attempt`, never less
    /// than the server's `retry_after_ms` floor.
    fn sleep_backoff(&mut self, attempt: u32, floor_ms: u64) {
        let ceiling = self
            .config
            .backoff_base_ms
            .saturating_shl(attempt)
            .min(self.config.backoff_cap_ms)
            .max(1);
        let span = ceiling - ceiling / 2 + 1;
        self.rng_state = splitmix64(self.rng_state);
        let ms = (ceiling / 2 + self.rng_state % span).max(floor_ms);
        std::thread::sleep(Duration::from_millis(ms));
    }

    fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.opened_at = None;
    }

    fn record_failure(&mut self) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.config.breaker_threshold > 0
            && self.consecutive_failures >= self.config.breaker_threshold
        {
            if self.opened_at.is_none() {
                self.stats.breaker_opens += 1;
            }
            self.opened_at = Some(Instant::now());
        }
    }
}

/// `u64::checked_shl` with saturation instead of wrap, for backoff
/// doublings past 63 attempts.
trait SaturatingShl {
    fn saturating_shl(self, n: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, n: u32) -> u64 {
        self.checked_shl(n).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(socket: &std::path::Path) -> ClientConfig {
        ClientConfig {
            socket: socket.to_path_buf(),
            timeout_ms: Some(2_000),
            max_retries: 2,
            backoff_base_ms: 1,
            backoff_cap_ms: 4,
            seed: 7,
            breaker_threshold: 2,
            breaker_cooldown_ms: 50,
        }
    }

    #[test]
    fn deadline_is_stamped_but_never_overwritten() {
        let c = Client::new(cfg(std::path::Path::new("/nonexistent")));
        assert_eq!(
            c.stamp_deadline("{\"op\":\"stats\"}").unwrap(),
            "{\"timeout_ms\":2000,\"op\":\"stats\"}"
        );
        assert_eq!(
            c.stamp_deadline("{\"op\":\"stats\",\"timeout_ms\":5}")
                .unwrap(),
            "{\"op\":\"stats\",\"timeout_ms\":5}"
        );
        assert_eq!(c.stamp_deadline("{}").unwrap(), "{\"timeout_ms\":2000}");
        assert!(c.stamp_deadline("[1,2]").is_err());
        // No configured deadline: the line passes through untouched.
        let mut free = cfg(std::path::Path::new("/nonexistent"));
        free.timeout_ms = None;
        let c = Client::new(free);
        assert_eq!(
            c.stamp_deadline("{\"op\":\"x\"}").unwrap(),
            "{\"op\":\"x\"}"
        );
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_half_opens_after_cooldown() {
        let dir = std::env::temp_dir().join(format!("pgr-client-brk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let socket = dir.join("missing.sock");
        let mut client = Client::new(cfg(&socket)); // nothing listening

        assert!(matches!(
            client.call("{\"op\":\"stats\"}"),
            Err(CallError::RetriesExhausted { attempts: 3, .. })
        ));
        assert_eq!(client.breaker(), BreakerState::Closed, "one failure");
        assert!(client.call("{\"op\":\"stats\"}").is_err());
        assert_eq!(client.breaker(), BreakerState::Open, "threshold of 2 hit");
        assert!(
            matches!(
                client.call("{\"op\":\"stats\"}"),
                Err(CallError::BreakerOpen {
                    consecutive_failures: 2
                })
            ),
            "open breaker fails fast"
        );
        let attempts_while_open = client.stats().attempts;
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(client.breaker(), BreakerState::HalfOpen);
        // The half-open probe is allowed through (and fails again here).
        assert!(matches!(
            client.call("{\"op\":\"stats\"}"),
            Err(CallError::RetriesExhausted { .. })
        ));
        assert!(
            client.stats().attempts > attempts_while_open,
            "probe reached the socket"
        );
        assert_eq!(
            client.breaker(),
            BreakerState::Open,
            "probe failure re-opens"
        );
        assert_eq!(client.stats().breaker_opens, 1, "re-open is not a new open");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backoff_is_deterministic_for_a_seed_and_honors_the_floor() {
        // Same seed ⇒ same jitter stream (observable via rng_state).
        let mut a = Client::new(cfg(std::path::Path::new("/nonexistent")));
        let mut b = Client::new(cfg(std::path::Path::new("/nonexistent")));
        for attempt in 0..3 {
            a.sleep_backoff(attempt, 0);
            b.sleep_backoff(attempt, 0);
            assert_eq!(a.rng_state, b.rng_state);
        }
        // The floor dominates tiny backoffs: a 30 ms hint must sleep
        // ≥ 30 ms even though the computed ceiling is 4 ms.
        let t0 = Instant::now();
        a.sleep_backoff(0, 30);
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn overloaded_then_success_retries_in_band() {
        use std::os::unix::net::UnixListener;

        let dir = std::env::temp_dir().join(format!("pgr-client-ovl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let socket = dir.join("fake.sock");
        let listener = UnixListener::bind(&socket).unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            // First request: reject with a retry hint. The client
            // retries on the same connection.
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("\"timeout_ms\":2000"), "deadline stamped");
            let mut w = stream.try_clone().unwrap();
            writeln!(
                w,
                "{{\"ok\":false,\"error\":\"overloaded\",\"retry_after_ms\":5}}"
            )
            .unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            writeln!(w, "{{\"ok\":true,\"answer\":42}}").unwrap();
        });

        let mut client = Client::new(cfg(&socket));
        let resp = client.call("{\"op\":\"stats\"}").expect("second try lands");
        assert!(resp.ok);
        assert!(resp.line.contains("\"answer\":42"));
        let stats = client.stats();
        assert_eq!(stats.overloaded, 1);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.connects, 1, "in-band retry reuses the connection");
        assert_eq!(client.breaker(), BreakerState::Closed);
        server.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_band_errors_other_than_overloaded_are_final() {
        use std::os::unix::net::UnixListener;

        let dir = std::env::temp_dir().join(format!("pgr-client-fin-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let socket = dir.join("fake.sock");
        let listener = UnixListener::bind(&socket).unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let mut w = stream;
            writeln!(
                w,
                "{{\"ok\":false,\"error\":\"deadline_exceeded\",\"elapsed_ms\":9}}"
            )
            .unwrap();
        });

        let mut client = Client::new(cfg(&socket));
        let resp = client
            .call("{\"op\":\"stats\"}")
            .expect("answered, not retried");
        assert!(!resp.ok);
        assert_eq!(resp.error.as_deref(), Some(DEADLINE_EXCEEDED));
        assert_eq!(client.stats().retries, 0, "final errors are not retried");
        server.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transport_drop_reconnects_and_retries() {
        use std::os::unix::net::UnixListener;

        let dir = std::env::temp_dir().join(format!("pgr-client-drop-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let socket = dir.join("fake.sock");
        let listener = UnixListener::bind(&socket).unwrap();
        let server = std::thread::spawn(move || {
            // First connection: read the request, hang up without answering.
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            drop(reader);
            // Second connection: answer properly.
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            line.clear();
            reader.read_line(&mut line).unwrap();
            let mut w = stream;
            writeln!(w, "{{\"ok\":true}}").unwrap();
        });

        let mut client = Client::new(cfg(&socket));
        let resp = client.call("{\"op\":\"stats\"}").expect("reconnect lands");
        assert!(resp.ok);
        assert_eq!(client.stats().connects, 2, "dropped stream was rebuilt");
        server.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
