//! Interpreter dispatch overhead: interp1 (uncompressed) vs interp_nt
//! (compressed). The paper's scenario tolerates interpretation overhead
//! (ROM-bound embedded code); this quantifies ours.

use criterion::{criterion_group, criterion_main, Criterion};
use pgr_core::{train, TrainConfig};
use pgr_corpus::compile_sample;
use pgr_vm::{Vm, VmConfig};

fn bench_interp(c: &mut Criterion) {
    let program = compile_sample("8q");
    let trained = train(&[&program], &TrainConfig::default()).unwrap();
    let (cp, _) = trained.compress(&program).unwrap();
    let ig = trained.initial();

    let mut group = c.benchmark_group("interp");
    group.sample_size(10);
    group.bench_function("interp1_8q", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&program, VmConfig::default()).unwrap();
            std::hint::black_box(vm.run().unwrap());
        })
    });
    group.bench_function("interp_nt_8q", |b| {
        b.iter(|| {
            let mut vm = Vm::new_compressed(
                &cp.program,
                trained.expanded(),
                ig.nt_start,
                ig.nt_byte,
                VmConfig::default(),
            )
            .unwrap();
            std::hint::black_box(vm.run().unwrap());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_interp);
criterion_main!(benches);
