//! Interpreter dispatch overhead: interp1 (uncompressed) vs interp_nt
//! (compressed). The paper's scenario tolerates interpretation overhead
//! (ROM-bound embedded code); this quantifies ours — and, since the VM
//! grew a precompiled-rule-program fast path with a decoded-segment
//! cache, it also measures that path against the reference grammar
//! walker it replaced. The summary line at the end reports the
//! plain-vs-compressed ratio for every configuration so the README
//! Performance table can quote one number per row.

use criterion::{criterion_group, criterion_main, Criterion};
use pgr_core::{train, TrainConfig};
use pgr_corpus::compile_sample;
use pgr_vm::{Vm, VmConfig};
use std::time::{Duration, Instant};

/// Median-of-`samples` wall-clock for one run under `f`.
fn measure(samples: usize, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

fn bench_interp(c: &mut Criterion) {
    let program = compile_sample("8q");
    let trained = train(&[&program], &TrainConfig::default()).unwrap();
    let (cp, _) = trained.compress(&program).unwrap();
    let ig = trained.initial();

    let compressed_config = |reference_walker: bool, segment_cache_entries: usize| VmConfig {
        reference_walker,
        segment_cache_entries,
        ..VmConfig::default()
    };
    // The tier ladder rows: tier 1 caps execution at segment replay;
    // tier 2 (the default) also fuses hot segments into
    // superinstruction programs.
    let tier_config = |tier: u8| VmConfig {
        tier,
        ..VmConfig::default()
    };
    let run_compressed = |config: VmConfig| {
        let mut vm = Vm::new_compressed(
            &cp.program,
            trained.expanded(),
            ig.nt_start,
            ig.nt_byte,
            config,
        )
        .unwrap();
        std::hint::black_box(vm.run().unwrap());
    };

    let mut group = c.benchmark_group("interp");
    group.sample_size(10);
    group.bench_function("interp1_8q", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&program, VmConfig::default()).unwrap();
            std::hint::black_box(vm.run().unwrap());
        })
    });
    group.bench_function("interp_nt_8q", |b| {
        b.iter(|| run_compressed(compressed_config(false, 1024)))
    });
    group.bench_function("interp_nt_8q_tier1", |b| {
        b.iter(|| run_compressed(tier_config(1)))
    });
    group.bench_function("interp_nt_8q_nocache", |b| {
        b.iter(|| run_compressed(compressed_config(false, 0)))
    });
    group.bench_function("interp_nt_8q_reference", |b| {
        b.iter(|| run_compressed(compressed_config(true, 0)))
    });
    group.finish();

    // Plain-vs-compressed summary: one median per configuration, plus
    // the ratios the README quotes. The reference walker is the PR-4
    // "before"; the rule-program fast path (cache on) is the "after".
    let plain = measure(9, || {
        let mut vm = Vm::new(&program, VmConfig::default()).unwrap();
        std::hint::black_box(vm.run().unwrap());
    });
    let fast = measure(9, || run_compressed(compressed_config(false, 1024)));
    let tier1 = measure(9, || run_compressed(tier_config(1)));
    let nocache = measure(9, || run_compressed(compressed_config(false, 0)));
    let reference = measure(9, || run_compressed(compressed_config(true, 0)));
    let ratio = |a: Duration, b: Duration| a.as_secs_f64() / b.as_secs_f64();
    println!(
        "interp ratio (8q): plain {plain:.2?}; compressed tier2 {fast:.2?} ({:.2}x plain), \
         tier1 {tier1:.2?} ({:.2}x plain), cache-off {nocache:.2?} ({:.2}x plain), \
         reference {reference:.2?} ({:.2}x plain); tier2 is {:.2}x over tier1, \
         {:.2}x over the reference walker",
        ratio(fast, plain),
        ratio(tier1, plain),
        ratio(nocache, plain),
        ratio(reference, plain),
        ratio(tier1, fast),
        ratio(reference, fast),
    );

    // When the PGR_BENCH_METRICS_DIR hook is armed, ship the instrumented
    // compressed run as BENCH_run.json (the committed baseline).
    if pgr_bench::telemetry::metrics_dir().is_some() {
        let m = pgr_bench::telemetry::run_metrics();
        match pgr_bench::telemetry::dump("run", &m) {
            Ok(Some(path)) => println!("metrics dumped to {}", path.display()),
            Ok(None) => {}
            Err(e) => eprintln!("metrics dump failed: {e}"),
        }
    }
}

criterion_group!(benches, bench_interp);
criterion_main!(benches);
