//! Shortest-derivation (Earley) encoding throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pgr_core::{train, TrainConfig};
use pgr_corpus::{corpus, CorpusName};

fn bench_compress(c: &mut Criterion) {
    let gzip = corpus(CorpusName::Gzip);
    let trained = train(&gzip.refs(), &TrainConfig::default()).unwrap();
    let engine = trained.compressor();
    let mut group = c.benchmark_group("compress");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(gzip.code_size() as u64));
    group.bench_function("earley_encode_gzip_corpus", |b| {
        b.iter(|| {
            for p in &gzip.programs {
                std::hint::black_box(engine.compress(p).unwrap());
            }
        })
    });
    group.bench_function("decompress_gzip_corpus", |b| {
        let compressed: Vec<_> = gzip
            .programs
            .iter()
            .map(|p| engine.compress(p).unwrap().0)
            .collect();
        b.iter(|| {
            for cp in &compressed {
                std::hint::black_box(trained.decompress(cp).unwrap());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_compress);
criterion_main!(benches);
