//! Parallel-encoding scaling: the same corpus compressed by a 1-thread
//! engine and by an engine with one worker per CPU. The derivation cache
//! is disabled so the benchmark measures parse fan-out, not memoization
//! (cache effectiveness is its own line at the end).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pgr_core::{train, CompressorConfig, TrainConfig};
use pgr_corpus::{corpus, CorpusName};

fn bench_compress_parallel(c: &mut Criterion) {
    let gzip = corpus(CorpusName::Gzip);
    let trained = train(&gzip.refs(), &TrainConfig::default()).unwrap();
    let cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let mut group = c.benchmark_group("compress_parallel");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(gzip.code_size() as u64));
    let mut threads: Vec<usize> = vec![1];
    if cpus > 1 {
        threads.push(cpus);
    }
    for t in threads {
        let engine = trained.compressor_with(
            CompressorConfig::default()
                .threads(t)
                .segment_cache_capacity(0),
        );
        group.bench_with_input(BenchmarkId::new("threads", t), &t, |b, _| {
            b.iter(|| {
                for p in &gzip.programs {
                    std::hint::black_box(engine.compress(p).unwrap());
                }
            })
        });
    }

    // With the cache on, repeated segments skip the parser entirely.
    let engine = trained.compressor();
    group.bench_function("threads/1+cache", |b| {
        b.iter(|| {
            for p in &gzip.programs {
                std::hint::black_box(engine.compress(p).unwrap());
            }
        })
    });
    group.finish();
    let cs = engine.cache_stats();
    println!(
        "cache: {} hits / {} misses ({} entries, cap {})",
        cs.hits, cs.misses, cs.entries, cs.capacity
    );

    // When the PGR_BENCH_METRICS_DIR hook is armed, ship the instrumented
    // compress run as BENCH_compress.json (the committed baseline).
    if pgr_bench::telemetry::metrics_dir().is_some() {
        let m = pgr_bench::telemetry::compress_metrics();
        match pgr_bench::telemetry::dump("compress", &m) {
            Ok(Some(path)) => println!("metrics dumped to {}", path.display()),
            Ok(None) => {}
            Err(e) => eprintln!("metrics dump failed: {e}"),
        }
    }
}

criterion_group!(benches, bench_compress_parallel);
criterion_main!(benches);
