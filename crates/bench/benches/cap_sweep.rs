//! A1: how the per-non-terminal rule budget affects training cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgr_core::{train, ExpanderConfig, TrainConfig};
use pgr_corpus::{corpus, CorpusName};

fn bench_cap_sweep(c: &mut Criterion) {
    let gzip = corpus(CorpusName::Gzip);
    let mut group = c.benchmark_group("cap_sweep");
    group.sample_size(10);
    for cap in [32usize, 64, 128, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            let config = TrainConfig {
                expander: ExpanderConfig {
                    max_rules_per_nt: cap,
                    ..ExpanderConfig::default()
                },
                ..TrainConfig::default()
            };
            b.iter(|| std::hint::black_box(train(&gzip.refs(), &config).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cap_sweep);
criterion_main!(benches);
