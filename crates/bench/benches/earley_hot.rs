//! The Earley hot path itself: fresh per-parse scratch vs one reused
//! [`ChartArena`], over every straight-line segment of the gzip corpus
//! under an expanded grammar. This isolates the allocation/clearing cost
//! the arena removes from the per-segment path — no tokenizing, caching,
//! or emit work in the loop — and is the before/after evidence for the
//! README "Performance" table.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pgr_bytecode::{instrs, Opcode};
use pgr_core::{canonicalize_program, train, TrainConfig};
use pgr_corpus::{corpus, CorpusName};
use pgr_earley::{ChartArena, ShortestParser};
use pgr_grammar::initial::tokenize_segment;
use pgr_grammar::Terminal;

/// Every straight-line segment of the corpus, canonicalized and
/// tokenized — exactly the inputs the compressor hands the parser.
fn corpus_segments() -> (pgr_core::Trained, Vec<Vec<Terminal>>) {
    let gzip = corpus(CorpusName::Gzip);
    let trained = train(&gzip.refs(), &TrainConfig::default()).unwrap();
    let mut segments = Vec::new();
    for p in &gzip.programs {
        let canon = canonicalize_program(p).unwrap();
        for proc in &canon.procs {
            let mut seg_start = 0usize;
            let mut push = |range: std::ops::Range<usize>| {
                segments.push(tokenize_segment(&proc.code[range]).unwrap());
            };
            for insn in instrs(&proc.code) {
                let insn = insn.expect("canonical code decodes");
                if insn.opcode == Opcode::LABELV {
                    if insn.offset > seg_start {
                        push(seg_start..insn.offset);
                    }
                    seg_start = insn.offset + 1;
                }
            }
            if proc.code.len() > seg_start {
                push(seg_start..proc.code.len());
            }
        }
    }
    (trained, segments)
}

fn bench_earley_hot(c: &mut Criterion) {
    let (trained, segments) = corpus_segments();
    let parser = ShortestParser::new(trained.expanded());
    let start = trained.initial().nt_start;
    let tokens: u64 = segments.iter().map(|s| s.len() as u64).sum();
    println!(
        "earley_hot: {} segments, {} tokens, {} table bytes",
        segments.len(),
        tokens,
        parser.table_bytes()
    );

    let mut group = c.benchmark_group("earley_hot");
    group.sample_size(10);
    group.throughput(Throughput::Elements(tokens));
    group.bench_function("fresh_parser", |b| {
        b.iter(|| {
            for s in &segments {
                std::hint::black_box(parser.parse(start, s).unwrap());
            }
        })
    });
    group.bench_function("reused_arena", |b| {
        let mut arena = ChartArena::new();
        b.iter(|| {
            for s in &segments {
                std::hint::black_box(parser.parse_into(&mut arena, start, s).unwrap());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_earley_hot);
criterion_main!(benches);
