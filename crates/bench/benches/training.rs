//! Expander throughput: forest build + greedy inline/contract loop.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pgr_core::{train, TrainConfig};
use pgr_corpus::{corpus, CorpusName};

fn bench_training(c: &mut Criterion) {
    let gzip = corpus(CorpusName::Gzip);
    let eightq = corpus(CorpusName::EightQ);
    let mut group = c.benchmark_group("training");
    group.sample_size(20);
    group.bench_function("train_8q", |b| {
        b.iter_batched(
            || eightq.refs(),
            |refs| train(&refs, &TrainConfig::default()).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("train_gzip_corpus", |b| {
        b.iter_batched(
            || gzip.refs(),
            |refs| train(&refs, &TrainConfig::default()).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
