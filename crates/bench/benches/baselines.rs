//! Baseline coder throughput on the gzip corpus bytes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pgr_baselines::{huffman, lzsshuff, program_bytes, superop, tunstall};
use pgr_corpus::{corpus, CorpusName};

fn bench_baselines(c: &mut Criterion) {
    let gzip = corpus(CorpusName::Gzip);
    let data: Vec<u8> = gzip.programs.iter().flat_map(program_bytes).collect();
    let mut group = c.benchmark_group("baselines");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("huffman", |b| {
        b.iter(|| std::hint::black_box(huffman::compress_bytes(&data)))
    });
    group.bench_function("lzss_huffman", |b| {
        b.iter(|| std::hint::black_box(lzsshuff::compress(&data)))
    });
    group.bench_function("tunstall_build_and_parse", |b| {
        b.iter(|| {
            let dict = tunstall::Dictionary::build(&data, 12);
            std::hint::black_box(tunstall::compress_segmented(&dict, &[&data]).unwrap())
        })
    });
    group.bench_function("superop_train", |b| {
        b.iter(|| std::hint::black_box(superop::train(&gzip.refs(), 256)))
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
