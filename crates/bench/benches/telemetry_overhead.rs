//! Telemetry overhead: compress throughput with the recorder disabled
//! (the default) must sit within noise of an uninstrumented build, and
//! the enabled cost should stay small. The disabled path is one cached
//! `bool` per flush site — the interpreter and encoder loops never touch
//! an atomic or the clock.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pgr_core::{train, CompressorConfig, TrainConfig};
use pgr_corpus::{corpus, CorpusName};
use pgr_telemetry::Recorder;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: defers entirely to the system allocator; only a counter is
// added on the allocation path.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTING: Counting = Counting;

/// Hard gate, checked before any throughput numbers are collected: the
/// disabled-recorder path (what every uninstrumented run pays, at every
/// flush site) must not allocate or read the clock, histogram-quantile
/// upgrade included. A regression here fails the bench run outright
/// instead of showing up as a few lost percent in the noise.
fn assert_disabled_path_is_free() {
    let r = Recorder::disabled();
    r.add("warm.up", 1);
    r.observe("warm.up.micros", 1);
    drop(r.span("warm.up.span"));
    drop(r.trace_span("warm.up.trace"));
    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        r.add("fast.counter", i);
        r.observe("fast.hist", i);
        drop(r.span("fast.span"));
        drop(r.trace_span("fast.trace"));
        let sw = pgr_telemetry::Stopwatch::start_if(r.is_enabled());
        assert!(!sw.is_running(), "disabled stopwatch read the clock");
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "disabled telemetry fast path allocated");
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    assert_disabled_path_is_free();
    let gzip = corpus(CorpusName::Gzip);
    let trained = train(&gzip.refs(), &TrainConfig::default()).unwrap();

    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(gzip.code_size() as u64));

    // Cache off so every sample does the full Earley parse: a warm cache
    // would hide the per-segment recording cost we are measuring.
    let quiet = trained.compressor_with(CompressorConfig::default().segment_cache_capacity(0));
    group.bench_function("compress_disabled_recorder", |b| {
        b.iter(|| {
            for p in &gzip.programs {
                std::hint::black_box(quiet.compress(p).unwrap());
            }
        })
    });

    let recorder = Recorder::new();
    let loud = trained.compressor_with_recorder(
        CompressorConfig::default().segment_cache_capacity(0),
        recorder.clone(),
    );
    group.bench_function("compress_enabled_recorder", |b| {
        b.iter(|| {
            for p in &gzip.programs {
                std::hint::black_box(loud.compress(p).unwrap());
            }
        })
    });
    let _ = recorder.take();

    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
