//! Telemetry overhead: compress throughput with the recorder disabled
//! (the default) must sit within noise of an uninstrumented build, and
//! the enabled cost should stay small. The disabled path is one cached
//! `bool` per flush site — the interpreter and encoder loops never touch
//! an atomic or the clock.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pgr_core::{train, CompressorConfig, TrainConfig};
use pgr_corpus::{corpus, CorpusName};
use pgr_telemetry::Recorder;

fn bench_telemetry_overhead(c: &mut Criterion) {
    let gzip = corpus(CorpusName::Gzip);
    let trained = train(&gzip.refs(), &TrainConfig::default()).unwrap();

    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(gzip.code_size() as u64));

    // Cache off so every sample does the full Earley parse: a warm cache
    // would hide the per-segment recording cost we are measuring.
    let quiet = trained.compressor_with(CompressorConfig::default().segment_cache_capacity(0));
    group.bench_function("compress_disabled_recorder", |b| {
        b.iter(|| {
            for p in &gzip.programs {
                std::hint::black_box(quiet.compress(p).unwrap());
            }
        })
    });

    let recorder = Recorder::new();
    let loud = trained.compressor_with_recorder(
        CompressorConfig::default().segment_cache_capacity(0),
        recorder.clone(),
    );
    group.bench_function("compress_enabled_recorder", |b| {
        b.iter(|| {
            for p in &gzip.programs {
                std::hint::black_box(loud.compress(p).unwrap());
            }
        })
    });
    let _ = recorder.take();

    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
