//! Regenerate the paper's §6 tables.
//!
//! ```text
//! cargo run -p pgr-bench --release --bin tables -- all
//! cargo run -p pgr-bench --release --bin tables -- e1 e4 a3
//! ```

use pgr_bench::experiments::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| {
        args.is_empty() || args.iter().any(|a| a == name) || args.iter().any(|a| a == "all")
    };

    if want("e1") {
        print_e1();
    }
    if want("e2") {
        print_e2();
    }
    if want("e3") {
        print_e3();
    }
    if want("e4") {
        print_e4();
    }
    if want("e5") {
        print_e5();
    }
    if want("e6") {
        print_e6();
    }
    if want("a1") {
        print_a1();
    }
    if want("a2") {
        print_a2();
    }
    if want("a3") {
        print_a3();
    }
    if want("a4") {
        print_a4();
    }
    if want("a5") {
        print_a5();
    }
    if want("metrics") {
        print_metrics();
    }
}

fn print_metrics() {
    println!("== metrics: instrumented train + self-compress (gzip corpus) ==");
    let m = pgr_bench::telemetry::pipeline_metrics();
    match pgr_bench::telemetry::dump("pipeline", &m) {
        Ok(Some(path)) => println!("wrote {}", path.display()),
        Ok(None) => print!("{}", m.render_table()),
        Err(e) => eprintln!("metrics dump failed: {e}"),
    }
    println!();
}

fn print_e1() {
    println!("== E1: Table 1 — compressed sizes under gcc- and lcc-trained grammars ==");
    println!("(paper: gcc 1,423,370->41%/33%; lcc 199,497->38%/29%; gzip 47,066->42%/41%; 8q 436->35%/32%)");
    let (rows, g_gcc, g_lcc) = e1();
    println!(
        "{:>6} {:>10} | {:>10} {:>6} | {:>10} {:>6}",
        "input", "original", "on gcc", "ratio", "on lcc", "ratio"
    );
    for r in &rows {
        println!(
            "{:>6} {:>10} | {:>10} {:>6} | {:>10} {:>6}",
            r.input,
            r.original,
            r.on_gcc,
            pct(r.on_gcc, r.original),
            r.on_lcc,
            pct(r.on_lcc, r.original),
        );
    }
    println!("grammar sizes: gcc-trained {g_gcc} B, lcc-trained {g_lcc} B (paper: 10,525 B)\n");
}

fn print_e2() {
    println!("== E2: interpreter sizes (lcc-trained grammar) ==");
    println!("(paper: initial 7,855 B; compressed 18,962 B; grammar 10,525 B)");
    let s = e2();
    println!(
        "initial {} B; compressed {} B (delta {} B); grammar {} B ({} of the delta)\n",
        s.initial,
        s.compressed,
        s.delta(),
        s.grammar,
        pct(s.grammar, s.delta()),
    );
}

fn print_e3() {
    println!("== E3: gzip calibration (LZSS+Huffman stand-in) ==");
    println!("(paper: gzip compresses the inputs to 31-44%, larger inputs better)");
    for (name, original, compressed) in e3() {
        println!(
            "{:>6} {:>10} -> {:>10}  ({})",
            name,
            original,
            compressed,
            pct(compressed, original)
        );
    }
    println!();
}

fn print_e4() {
    println!("== E4: Table 2 — whole-executable sizes, lcc corpus ==");
    println!("(paper: uncompressed 292,039; compressed 161,386; x86 240,522)");
    for row in e4() {
        println!("{:>24}: {:>10} B", row.representation, row.bytes);
    }
    println!();
}

fn print_e5() {
    println!("== E5: optimizer interaction ==");
    println!(
        "(paper analogue: MSVC unopt 236,181 vs space-opt 161,716; optimized code is less regular)"
    );
    let [(bc0, n0, c0), (bc1, n1, c1)] = e5();
    println!(
        "unoptimized: bytecode {bc0} B, native {n0} B, self-compressed {c0} B ({})",
        pct(c0, bc0)
    );
    println!(
        "optimized:   bytecode {bc1} B, native {n1} B, self-compressed {c1} B ({})\n",
        pct(c1, bc1)
    );
}

fn print_e6() {
    println!("== E6: remaining overheads (compressed lcc image) ==");
    println!("(paper: label tables 9,628 B; global tables 3,940 B; trampolines 1,674 B; grammar slack 1,863 B)");
    let (s, grammar, slack) = e6();
    println!("compressed code  {:>8} B", s.code);
    println!("label tables     {:>8} B", s.label_tables);
    println!("global table     {:>8} B", s.global_table);
    println!("descriptors      {:>8} B", s.descriptors);
    println!("trampolines      {:>8} B", s.trampolines);
    println!("data + bss       {:>8} B", s.data + s.bss);
    println!("grammar          {:>8} B", grammar);
    println!("  (straightforward recoding would save {slack} B; paper: 1,863 B)");
    println!(
        "  (inlining branch offsets and global addresses would save ~{} B; \"much of that overhead\")\n",
        e6_inline_estimate()
    );
}

fn print_a1() {
    println!("== A1: rule-cap sweep (lcc corpus, self-compressed) ==");
    println!("(the paper fixes 256 so each derivation step is one byte)");
    for (cap, compressed, grammar) in a1(&[32, 64, 128, 256]) {
        println!("cap {cap:>4}: compressed {compressed:>8} B, grammar {grammar:>7} B");
    }
    println!();
}

fn print_a2() {
    println!("== A2: grammar hygiene — subsumed-rule removal and rule dedupe (lcc corpus) ==");
    let [(r1, g1, c1), (r2, g2, c2), (r3, g3, c3)] = a2();
    println!("removal on:           {r1:>5} live rules, grammar {g1:>7} B, compressed {c1:>8} B");
    println!("removal off:          {r2:>5} live rules, grammar {g2:>7} B, compressed {c2:>8} B");
    println!("removal on + dedupe:  {r3:>5} live rules, grammar {g3:>7} B, compressed {c3:>8} B\n");
}

fn print_a3() {
    println!("== A3: baseline shoot-out (self-trained, totals incl. tables) ==");
    println!(
        "{:>6} {:>9} | {:>9} {:>6} | {:>9} {:>6} | {:>9} {:>6} | {:>9} {:>6} | {:>9} {:>6}",
        "input", "orig", "grammar", "", "superop", "", "tunstall", "", "huffman", "", "lzss+h", ""
    );
    for r in a3() {
        println!(
            "{:>6} {:>9} | {:>9} {:>6} | {:>9} {:>6} | {:>9} {:>6} | {:>9} {:>6} | {:>9} {:>6}",
            r.input,
            r.original,
            r.grammar,
            pct(r.grammar, r.original),
            r.superop,
            pct(r.superop, r.original),
            r.tunstall,
            pct(r.tunstall, r.original),
            r.huffman,
            pct(r.huffman, r.original),
            r.lzss,
            pct(r.lzss, r.original),
        );
    }
    println!();
}

fn print_a5() {
    println!("== A5: typed initial grammar (lcc corpus, self-compressed) ==");
    println!("(paper: a grammar tracking stack datatypes \"did not do significantly better\")");
    let ((ub, ug), (tb, tg)) = a5();
    println!("untyped: compressed {ub:>8} B, grammar {ug:>7} B");
    println!("typed:   compressed {tb:>8} B, grammar {tg:>7} B\n");
}

fn print_a4() {
    println!("== A4: greedy (training forest) vs optimal (Earley) encoding, lcc self ==");
    let (greedy, optimal) = a4();
    println!(
        "greedy {greedy} B, optimal {optimal} B (optimal saves {})\n",
        pct(greedy.saturating_sub(optimal), greedy)
    );
}
