//! Experiment implementations. Each function returns plain data so the
//! `tables` binary, the Criterion benches, and the integration tests can
//! share them.

use pgr_baselines::{huffman, lzsshuff, program_bytes, superop, tunstall};
use pgr_bytecode::image::ImageStats;
use pgr_bytecode::Program;
use pgr_core::{canonicalize_program, train, ExpanderConfig, TrainConfig, Trained};
use pgr_corpus::{corpus, corpus_with_options, Corpus, CorpusName};
use pgr_minic::Options;
use pgr_vm::cgen::interpreter_sizes;

/// Train on a corpus with the default (paper) configuration.
pub fn train_on(c: &Corpus) -> Trained {
    train(&c.refs(), &TrainConfig::default()).expect("corpora are valid")
}

/// Compress every program of a corpus under a trained grammar; returns
/// `(original bytes, compressed bytes)`. Builds one engine for the whole
/// corpus so the parser tables and derivation cache are shared.
pub fn compress_corpus(trained: &Trained, c: &Corpus) -> (usize, usize) {
    let engine = trained.compressor();
    let mut original = 0;
    let mut compressed = 0;
    for p in &c.programs {
        let (_, stats) = engine.compress(p).expect("corpora are in the language");
        original += stats.original_code;
        compressed += stats.compressed_code;
    }
    (original, compressed)
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct E1Row {
    /// Input name (gcc/lcc/gzip/8q).
    pub input: &'static str,
    /// Original bytecode bytes.
    pub original: usize,
    /// Compressed bytes under the gcc-trained grammar.
    pub on_gcc: usize,
    /// Compressed bytes under the lcc-trained grammar.
    pub on_lcc: usize,
}

/// E1 — Table 1. Returns the rows plus the two grammars' sizes.
pub fn e1() -> (Vec<E1Row>, usize, usize) {
    let corpora: Vec<Corpus> = CorpusName::ALL.iter().map(|&n| corpus(n)).collect();
    let gcc = &corpora[0];
    let lcc = &corpora[1];
    let trained_gcc = train_on(gcc);
    let trained_lcc = train_on(lcc);
    let rows = corpora
        .iter()
        .map(|c| {
            let (original, on_gcc) = compress_corpus(&trained_gcc, c);
            let (_, on_lcc) = compress_corpus(&trained_lcc, c);
            E1Row {
                input: c.name.label(),
                original,
                on_gcc,
                on_lcc,
            }
        })
        .collect();
    (rows, trained_gcc.grammar_size(), trained_lcc.grammar_size())
}

/// E2 — interpreter sizes for a grammar trained on the lcc corpus.
pub fn e2() -> pgr_vm::cgen::InterpreterSizes {
    let trained = train_on(&corpus(CorpusName::Lcc));
    interpreter_sizes(trained.expanded())
}

/// E3 — the gzip-calibration row for each corpus: `(name, input bytes,
/// compressed bytes)`.
pub fn e3() -> Vec<(&'static str, usize, usize)> {
    CorpusName::ALL
        .iter()
        .map(|&n| {
            let c = corpus(n);
            let data: Vec<u8> = c.programs.iter().flat_map(program_bytes).collect();
            let (_, size) = lzsshuff::compress(&data);
            (n.label(), data.len(), size.total())
        })
        .collect()
}

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct E4Row {
    /// Representation name.
    pub representation: &'static str,
    /// Total image bytes.
    pub bytes: usize,
}

/// E4 — Table 2 for the lcc corpus: whole-executable sizes.
pub fn e4() -> Vec<E4Row> {
    let c = corpus(CorpusName::Lcc);
    let trained = train_on(&c);
    let sizes = interpreter_sizes(trained.expanded());

    let mut uncompressed = 0usize;
    let mut compressed = 0usize;
    let mut native = 0usize;
    for p in &c.programs {
        let canon = canonicalize_program(p).expect("valid corpus");
        uncompressed += ImageStats::of(&canon).total();
        let (cp, _) = trained.compress(p).expect("valid corpus");
        compressed += ImageStats::of(&cp.program).total();
        native += pgr_native::measure_program(p).total();
    }
    vec![
        E4Row {
            representation: "Uncompressed bytecode",
            bytes: uncompressed + sizes.initial,
        },
        E4Row {
            representation: "Compressed bytecode",
            bytes: compressed + sizes.compressed,
        },
        E4Row {
            representation: "native x86 executable",
            bytes: native,
        },
    ]
}

/// E5 — optimizer interaction: `(unoptimized, optimized)` pairs of
/// (bytecode bytes, native code bytes, self-compressed bytes).
pub fn e5() -> [(usize, usize, usize); 2] {
    let mut out = [(0, 0, 0); 2];
    for (slot, optimize) in [false, true].into_iter().enumerate() {
        let c = corpus_with_options(CorpusName::Lcc, &Options { optimize });
        let trained = train_on(&c);
        let (_, compressed) = compress_corpus(&trained, &c);
        let native: usize = c
            .programs
            .iter()
            .map(|p| pgr_native::measure_program(p).code)
            .sum();
        out[slot] = (c.code_size(), native, compressed);
    }
    out
}

/// E6 — overhead accounting for the lcc corpus: aggregate image stats of
/// the compressed form, the grammar size, and how many bytes a
/// "straightforward recoding" of the grammar would save (the paper
/// estimates 1,863 B for its lcc grammar; we entropy-code our
/// serialization to get the analogous figure).
pub fn e6() -> (ImageStats, usize, usize) {
    let c = corpus(CorpusName::Lcc);
    let trained = train_on(&c);
    let mut agg = ImageStats::default();
    for p in &c.programs {
        let (cp, _) = trained.compress(p).expect("valid corpus");
        let s = ImageStats::of(&cp.program);
        agg.code += s.code;
        agg.label_tables += s.label_tables;
        agg.descriptors += s.descriptors;
        agg.global_table += s.global_table;
        agg.trampolines += s.trampolines;
        agg.data += s.data;
        agg.bss += s.bss;
    }
    let encoded = pgr_grammar::encode::encode_grammar(trained.expanded());
    let (_, recoded) = huffman::compress_bytes(&encoded);
    let slack = encoded.len().saturating_sub(recoded.total());
    (agg, trained.grammar_size(), slack)
}

/// E6b — the §6 "inline global addresses and branch offsets" estimate
/// over the compressed lcc images.
pub fn e6_inline_estimate() -> usize {
    let c = corpus(CorpusName::Lcc);
    let trained = train_on(&c);
    c.programs
        .iter()
        .map(|p| {
            let (cp, _) = trained.compress(p).expect("valid corpus");
            // Compressed operands still hold 2-byte indices for branches
            // and globals, so the estimate applies to the original form,
            // where the instruction stream is decodable.
            let _ = cp;
            pgr_bytecode::image::inline_tables_estimate(p)
        })
        .sum()
}

/// A1 — rule-cap sweep on the lcc corpus: `(cap, compressed bytes,
/// grammar bytes)`.
pub fn a1(caps: &[usize]) -> Vec<(usize, usize, usize)> {
    let c = corpus(CorpusName::Lcc);
    caps.iter()
        .map(|&cap| {
            let config = TrainConfig {
                expander: ExpanderConfig {
                    max_rules_per_nt: cap,
                    ..ExpanderConfig::default()
                },
                ..TrainConfig::default()
            };
            let trained = train(&c.refs(), &config).expect("valid corpus");
            let (_, compressed) = compress_corpus(&trained, &c);
            (cap, compressed, trained.grammar_size())
        })
        .collect()
}

/// A2 — grammar-hygiene settings: subsumed-rule removal on/off, plus
/// removal combined with rule deduplication. Returns `(live rules,
/// grammar bytes, compressed bytes)` per setting, in that order.
pub fn a2() -> [(usize, usize, usize); 3] {
    let c = corpus(CorpusName::Lcc);
    let settings = [(true, false), (false, false), (true, true)];
    let mut out = [(0, 0, 0); 3];
    for (slot, (remove, dedupe)) in settings.into_iter().enumerate() {
        let config = TrainConfig {
            expander: ExpanderConfig {
                remove_subsumed: remove,
                dedupe_rules: dedupe,
                ..ExpanderConfig::default()
            },
            ..TrainConfig::default()
        };
        let trained = train(&c.refs(), &config).expect("valid corpus");
        let (_, compressed) = compress_corpus(&trained, &c);
        out[slot] = (
            trained.expanded().live_rule_count(),
            trained.grammar_size(),
            compressed,
        );
    }
    out
}

/// One baseline shoot-out row.
#[derive(Debug, Clone)]
pub struct A3Row {
    /// Input name.
    pub input: &'static str,
    /// Original bytes.
    pub original: usize,
    /// Grammar rewriting, self-trained (payload only, like the others).
    pub grammar: usize,
    /// Canonical Huffman (payload + header).
    pub huffman: usize,
    /// Tunstall k=12 with segment restarts (payload + dictionary).
    pub tunstall: usize,
    /// Superoperators (code + table).
    pub superop: usize,
    /// LZSS+Huffman (no random access; calibration only).
    pub lzss: usize,
}

/// A3 — baseline shoot-out, self-trained per corpus.
pub fn a3() -> Vec<A3Row> {
    CorpusName::ALL
        .iter()
        .map(|&n| {
            let c = corpus(n);
            let trained = train_on(&c);
            let (original, grammar) = compress_corpus(&trained, &c);
            let data: Vec<u8> = c.programs.iter().flat_map(program_bytes).collect();
            let (_, hs) = huffman::compress_bytes(&data);
            let (_, ls) = lzsshuff::compress(&data);
            // Tunstall over the segment structure of every procedure.
            let dict = tunstall::Dictionary::build(&data, 12);
            let mut segments: Vec<Vec<u8>> = Vec::new();
            for p in &c.programs {
                for proc in &p.procs {
                    for range in proc.segments().expect("valid corpus") {
                        segments.push(proc.code[range].to_vec());
                    }
                }
            }
            let seg_refs: Vec<&[u8]> = segments.iter().map(|s| s.as_slice()).collect();
            let ts = tunstall::compress_segmented(&dict, &seg_refs)
                .expect("dictionary built from the same data")
                .1;
            let refs = c.refs();
            let set = superop::train(&refs, 256);
            let ss: usize = c
                .programs
                .iter()
                .map(|p| superop::measure_program(&set, p).code)
                .sum::<usize>()
                + set.table_bytes();
            A3Row {
                input: n.label(),
                original,
                grammar,
                huffman: hs.total(),
                tunstall: ts.total(),
                superop: ss,
                lzss: ls.total(),
            }
        })
        .collect()
}

/// A5 — the typed-grammar exploration of §6 ("a more complex grammar
/// that tracked the datatype of each element on the stack did not do
/// significantly better"): train the untyped and the typed initial
/// grammars on the same corpus, compress the corpus under both; returns
/// `((untyped bytes, untyped grammar), (typed bytes, typed grammar))`.
pub fn a5() -> ((usize, usize), (usize, usize)) {
    use pgr_core::canonicalize_program as canon;
    use pgr_core::expander::expand;
    use pgr_core::Compressor;
    use pgr_grammar::initial::tokenize_segment;
    use pgr_grammar::typed::TypedGrammar;
    use pgr_grammar::Forest;

    let c = corpus(CorpusName::Lcc);

    // Untyped (the shipping pipeline).
    let trained = train_on(&c);
    let (_, untyped_bytes) = compress_corpus(&trained, &c);
    let untyped = (untyped_bytes, trained.grammar_size());

    // Typed: same expander, same encoder, typed initial grammar.
    let tg = TypedGrammar::build();
    let mut grammar = tg.grammar.clone();
    let mut forest = Forest::new();
    for p in &c.programs {
        let p = canon(p).expect("valid corpus");
        for proc in &p.procs {
            for range in proc.segments().expect("valid corpus") {
                let tokens = tokenize_segment(&proc.code[range]).expect("valid corpus");
                tg.add_segment(&mut forest, &tokens).expect("typed parse");
            }
        }
    }
    expand(&mut grammar, &mut forest, &ExpanderConfig::default());
    let engine = Compressor::new(&grammar, tg.nt_start);
    let mut typed_bytes = 0usize;
    for p in &c.programs {
        let (_, stats) = engine.compress(p).expect("typed language covers corpus");
        typed_bytes += stats.compressed_code;
    }
    let typed = (typed_bytes, pgr_grammar::encode::grammar_size(&grammar));
    (untyped, typed)
}

/// A4 — greedy (training-forest) vs optimal (Earley) self-encoding on
/// the lcc corpus: `(greedy bytes, optimal bytes)`.
pub fn a4() -> (usize, usize) {
    let c = corpus(CorpusName::Lcc);
    let trained = train_on(&c);
    let greedy = trained.stats.derivation_after;
    let (_, optimal) = compress_corpus(&trained, &c);
    (greedy, optimal)
}

/// Render a percentage.
pub fn pct(part: usize, whole: usize) -> String {
    if whole == 0 {
        "-".to_string()
    } else {
        format!("{:.0}%", 100.0 * part as f64 / whole as f64)
    }
}

/// Shared helper for the interpreter-overhead bench: run a program both
/// ways and return the executed step counts.
pub fn run_both_ways(program: &Program) -> (u64, u64) {
    use pgr_vm::{Vm, VmConfig};
    let mut vm = Vm::new(program, VmConfig::default()).expect("loadable");
    let plain = vm.run().expect("runs").steps;
    let trained = train(&[program], &TrainConfig::default()).expect("valid");
    let (cp, _) = trained.compress(program).expect("valid");
    let ig = trained.initial();
    let mut cvm = Vm::new_compressed(
        &cp.program,
        trained.expanded(),
        ig.nt_start,
        ig.nt_byte,
        VmConfig::default(),
    )
    .expect("loadable");
    let compressed = cvm.run().expect("runs").steps;
    (plain, compressed)
}
