//! Machine-readable metric dumps: the `BENCH_*.json` hook.
//!
//! Every bench or experiment can ship its telemetry as a
//! `pgr-metrics/2` JSON document (the same shape `pgr ... --metrics
//! json` emits, so `pgr metrics-check` validates it). Dumps are written
//! to the directory named by the `PGR_BENCH_METRICS_DIR` environment
//! variable as `BENCH_<name>.json`; when the variable is unset the hook
//! is inert, so benches stay side-effect-free by default.
//!
//! `tables -- metrics` drives [`pipeline_metrics`] — an instrumented
//! train + self-compress of the gzip corpus — through this hook, which
//! makes the perf trajectory machine-readable from one command:
//!
//! ```text
//! PGR_BENCH_METRICS_DIR=out cargo run -p pgr-bench --release --bin tables -- metrics
//! pgr metrics-check out/BENCH_pipeline.json
//! ```

use pgr_core::{train, TrainConfig};
use pgr_corpus::{corpus, CorpusName};
use pgr_telemetry::Metrics;
use std::path::PathBuf;

/// The dump directory, when the `PGR_BENCH_METRICS_DIR` hook is armed.
pub fn metrics_dir() -> Option<PathBuf> {
    std::env::var_os("PGR_BENCH_METRICS_DIR").map(PathBuf::from)
}

/// Write `metrics` to `BENCH_<name>.json` under [`metrics_dir`].
/// Returns the path written, or `None` when the hook is unarmed.
///
/// # Errors
///
/// Propagates directory-creation and file-write failures.
pub fn dump(name: &str, metrics: &Metrics) -> std::io::Result<Option<PathBuf>> {
    let Some(dir) = metrics_dir() else {
        return Ok(None);
    };
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, metrics.to_json())?;
    Ok(Some(path))
}

/// Run an instrumented compress of the gzip corpus under its own trained
/// grammar (training itself is unobserved) and return exactly what a
/// `pgr compress --metrics json` run records: `compress.*`, `cache.*`,
/// and `earley.*` families. This is the `BENCH_compress.json` baseline
/// the repo commits and CI re-validates.
pub fn compress_metrics() -> Metrics {
    let c = corpus(CorpusName::Gzip);
    let trained = train(&c.refs(), &TrainConfig::default()).expect("gzip corpus trains");
    let recorder = pgr_telemetry::Recorder::new();
    let engine =
        trained.compressor_with_recorder(pgr_core::CompressorConfig::default(), recorder.clone());
    for p in &c.programs {
        engine.compress(p).expect("gzip corpus compresses");
    }
    recorder.snapshot()
}

/// Run an instrumented compressed execution of the 8-queens sample
/// under its own trained grammar and return exactly what a
/// `pgr run <image>.pgrc --metrics json` run records: the `vm.*` step,
/// call, walk, dispatch, segment-cache, and rule-program families. This
/// is the `BENCH_run.json` baseline the repo commits and CI
/// re-validates.
pub fn run_metrics() -> Metrics {
    let program = pgr_corpus::compile_sample("8q");
    let trained = train(&[&program], &TrainConfig::default()).expect("8q trains");
    let (cp, _) = trained.compress(&program).expect("8q compresses");
    let ig = trained.initial();
    let recorder = pgr_telemetry::Recorder::new();
    let config = pgr_vm::VmConfig {
        recorder: recorder.clone(),
        ..pgr_vm::VmConfig::default()
    };
    let mut vm = pgr_vm::Vm::new_compressed(
        &cp.program,
        trained.expanded(),
        ig.nt_start,
        ig.nt_byte,
        config,
    )
    .expect("8q image loads");
    vm.run().expect("8q runs");
    recorder.snapshot()
}

/// Run an instrumented train + self-compress of the gzip corpus and
/// return everything the pipeline recorded: trainer, validator, Earley,
/// cache, and per-phase span metrics.
pub fn pipeline_metrics() -> Metrics {
    let recorder = pgr_telemetry::Recorder::new();
    let c = corpus(CorpusName::Gzip);
    let config = TrainConfig {
        recorder: recorder.clone(),
        ..TrainConfig::default()
    };
    let trained = train(&c.refs(), &config).expect("gzip corpus trains");
    let engine =
        trained.compressor_with_recorder(pgr_core::CompressorConfig::default(), recorder.clone());
    for p in &c.programs {
        engine.compress(p).expect("gzip corpus compresses");
    }
    recorder.snapshot()
}
