//! # pgr-bench
//!
//! The benchmark harness: everything needed to regenerate the paper's §6
//! evaluation. The [`experiments`] module computes each table's rows;
//! the `tables` binary prints them (run
//! `cargo run -p pgr-bench --release --bin tables -- all`), and the
//! Criterion benches under `benches/` measure throughput of the pipeline
//! stages.
//!
//! Experiment index (see DESIGN.md for the full mapping):
//!
//! * **E1** — Table 1: compression ratios of {gcc, lcc, gzip, 8q} under
//!   grammars trained on gcc and on lcc.
//! * **E2** — interpreter sizes: initial vs compressed-bytecode
//!   interpreter, and the grammar's share of the delta.
//! * **E3** — gzip calibration (LZSS+Huffman stand-in).
//! * **E4** — Table 2: whole-executable sizes (uncompressed / compressed
//!   / native x86) for the lcc corpus.
//! * **E5** — optimizer interaction: peephole-optimized bytecode, its
//!   native size, and its compressibility.
//! * **E6** — §6's overhead bullet list: label/global tables,
//!   trampolines, grammar encoding.
//! * **A1–A4** — ablations: rule-cap sweep, subsumed-rule removal,
//!   baseline shoot-out, greedy vs optimal encoding.

#![warn(missing_docs)]

pub mod experiments;
pub mod telemetry;
