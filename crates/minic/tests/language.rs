//! Additional language-coverage tests: corner cases of the C subset that
//! the main suite doesn't hit, plus negative tests pinning down the
//! dialect's documented limits.

use pgr_bytecode::validate_program;
use pgr_minic::compile;
use pgr_vm::{Vm, VmConfig};

fn run(src: &str) -> (String, i32) {
    let program = compile(src).unwrap_or_else(|e| panic!("compile error: {e}\n{src}"));
    validate_program(&program).unwrap_or_else(|e| panic!("invalid bytecode: {e}"));
    let mut vm = Vm::new(&program, VmConfig::default()).unwrap();
    let result = vm.run().unwrap_or_else(|e| panic!("runtime error: {e}"));
    let ret = result.exit_code.unwrap_or_else(|| result.ret.i());
    (String::from_utf8_lossy(&result.output).into_owned(), ret)
}

#[test]
fn two_dimensional_arrays() {
    let src = "
        int grid[3][4];
        int main() {
            int r; int c; int total = 0;
            for (r = 0; r < 3; r++)
                for (c = 0; c < 4; c++)
                    grid[r][c] = r * 10 + c;
            for (r = 0; r < 3; r++) total += grid[r][3 - r];
            return total;   /* 3 + 12 + 21 */
        }
    ";
    assert_eq!(run(src).1, 36);
}

#[test]
fn array_of_structs_and_nested_access() {
    let src = "
        struct Item { int id; short kind; };
        struct Item items[5];
        int main() {
            int i;
            int total = 0;
            for (i = 0; i < 5; i++) {
                items[i].id = i * i;
                items[i].kind = (short)(i - 2);
            }
            for (i = 0; i < 5; i++) {
                if (items[i].kind < 0) total += items[i].id;
            }
            return total;  /* 0 + 1 */
        }
    ";
    assert_eq!(run(src).1, 1);
}

#[test]
fn pointer_to_struct_field_through_function() {
    let src = "
        struct Counter { int lo; int hi; };
        void bump(int *slot, int by) { *slot += by; }
        int main() {
            struct Counter c;
            c.lo = 1; c.hi = 10;
            bump(&c.lo, 5);
            bump(&c.hi, -3);
            return c.lo * 10 + c.hi;
        }
    ";
    assert_eq!(run(src).1, 67);
}

#[test]
fn chained_assignment_and_assignment_value() {
    let src = "
        int main() {
            int a; int b; int c;
            a = b = c = 5;
            a += (b = 2);
            return a * 100 + b * 10 + c;
        }
    ";
    assert_eq!(run(src).1, 725);
}

#[test]
fn ternary_inside_call_arguments_and_indexes() {
    let src = "
        int pick(int a, int b) { return a - b; }
        int table[4] = {10, 20, 30, 40};
        int main() {
            int i = 2;
            return pick(i > 1 ? 100 : 200, table[i < 3 ? i : 0]);
        }
    ";
    assert_eq!(run(src).1, 70);
}

#[test]
fn logical_operators_in_value_positions() {
    let src = "
        int main() {
            int x = 5;
            int a = (x > 3) + (x > 3 && x < 10) * 10 + (x == 0 || x == 5) * 100;
            int b = !!x;          /* normalized to 1 */
            return a + b;
        }
    ";
    assert_eq!(run(src).1, 112);
}

#[test]
fn do_while_with_continue() {
    let src = "
        int main() {
            int i = 0;
            int total = 0;
            do {
                i++;
                if (i % 2) continue;   /* continue re-tests the condition */
                total += i;
            } while (i < 10);
            return total;  /* 2+4+6+8+10 */
        }
    ";
    assert_eq!(run(src).1, 30);
}

#[test]
fn for_without_parts_and_nested_breaks() {
    let src = "
        int main() {
            int n = 0;
            for (;;) {
                int k;
                for (k = 0; ; k++) {
                    if (k == 3) break;
                    n++;
                }
                if (n >= 9) break;
            }
            return n;
        }
    ";
    assert_eq!(run(src).1, 9);
}

#[test]
fn switch_on_expression_with_negative_cases() {
    let src = "
        int sign_code(int v) {
            switch (v < 0 ? -1 : (v > 0 ? 1 : 0)) {
                case -1: return 'n';
                case 0: return 'z';
                case 1: return 'p';
            }
            return '?';
        }
        int main() {
            return (sign_code(-5) == 'n') + (sign_code(0) == 'z') * 10
                 + (sign_code(9) == 'p') * 100;
        }
    ";
    assert_eq!(run(src).1, 111);
}

#[test]
fn hex_literals_and_large_constants() {
    let src = "
        int main() {
            unsigned a = 0xDEADBEEFu;
            int b = 0x7FFF;
            int c = 1000000;          /* needs LIT3 */
            return (a > 0x80000000u) + (b == 32767) * 10 + (c / 1000 == 1000) * 100;
        }
    ";
    assert_eq!(run(src).1, 111);
}

#[test]
fn float_to_int_in_conditions_and_mixed_compare() {
    let src = "
        int main() {
            float f = 0.5f;
            double d = 0.25;
            int hits = 0;
            if (f) hits++;            /* non-zero float is true */
            if (d) hits++;
            if (f > d) hits++;        /* mixed promotes to double */
            while (d < 1.0) { d = d + 0.25; hits++; }
            return hits;
        }
    ";
    assert_eq!(run(src).1, 6);
}

#[test]
fn recursion_through_function_pointers() {
    let src = "
        int dispatch(int (*f)(int), int v);
        int half(int v) { if (v <= 1) return 0; return 1 + dispatch(half, v / 2); }
        int dispatch(int (*f)(int), int v) { return f(v); }
        int main() { return dispatch(half, 64); }
    ";
    assert_eq!(run(src).1, 6);
}

#[test]
fn string_escapes_and_indexing() {
    let src = "
        int main() {
            char *s = \"a\\tb\\0hidden\";
            return (s[1] == '\\t') + (s[3] == 0) * 10 + (s[0] == 'a') * 100;
        }
    ";
    assert_eq!(run(src).1, 111);
}

#[test]
fn global_initializer_expressions() {
    let src = "
        int a = 3 * 4 + 1;
        int b = sizeof(double) << 2;
        short c = (short)0xFFFF;
        char d = 'A' + 2;
        double e = -1.5;
        int main() {
            return (a == 13) + (b == 32) * 10 + (c == -1) * 100
                 + (d == 'C') * 1000 + (e < 0.0) * 10000;
        }
    ";
    assert_eq!(run(src).1, 11111);
}

// ---- negative tests: the dialect's documented limits --------------------

#[test]
fn dialect_limits_are_reported() {
    // Struct returns.
    assert!(
        compile("struct S { int x; }; struct S f(void) { } int main(){return 0;}")
            .unwrap_err()
            .message
            .contains("structs")
    );
    // Struct containing itself by value.
    assert!(compile("struct S { struct S inner; }; int main(){return 0;}").is_err());
    // Local array initializer lists (rejected at parse time: a brace is
    // not an expression in local-declaration position).
    assert!(compile("int main() { int a[2] = {1, 2}; return 0; }").is_err());
    // Pointer-typed global initializers.
    assert!(compile("char *s = \"x\"; int main(){return 0;}").is_err());
    // Case labels must be constant.
    assert!(
        compile("int main() { int x = 1; switch (x) { case x: return 1; } return 0; }")
            .unwrap_err()
            .message
            .contains("constant")
    );
    // Duplicate cases.
    assert!(
        compile("int main() { switch (1) { case 1: case 1: return 1; } return 0; }")
            .unwrap_err()
            .message
            .contains("duplicate")
    );
    // Calling with the wrong arity.
    assert!(
        compile("int f(int a) { return a; } int main() { return f(1, 2); }")
            .unwrap_err()
            .message
            .contains("arguments")
    );
    // Prototype without a definition.
    assert!(compile("int ghost(int x); int main() { return 0; }")
        .unwrap_err()
        .message
        .contains("definition"));
    // Dereferencing a non-pointer.
    assert!(compile("int main() { int x = 1; return *x; }")
        .unwrap_err()
        .message
        .contains("dereference"));
    // Void in expression position.
    assert!(compile("void v(void) {} int main() { return 1 + v(); }").is_err());
}

#[test]
fn float_modulo_and_pointer_multiplication_are_rejected() {
    assert!(compile("int main() { double d = 1.0; return (int)(d % 2.0); }").is_err());
    assert!(compile("int main() { int *p; int *q; return (int)(p * q); }").is_err());
    assert!(compile("int main() { int *p; return (int)(p + q); }").is_err());
}
