//! End-to-end compiler tests: compile a C program, validate the emitted
//! bytecode against the grammar's stack discipline, run it on the VM, and
//! check its observable behaviour.

use pgr_bytecode::validate_program;
use pgr_minic::{compile, compile_with, Options};
use pgr_vm::{Vm, VmConfig};

/// Compile, validate, run; return (output-as-string, return value).
fn run(src: &str) -> (String, i32) {
    run_with(src, VmConfig::default())
}

fn run_with(src: &str, config: VmConfig) -> (String, i32) {
    let program = compile(src).unwrap_or_else(|e| panic!("compile error: {e}\n{src}"));
    validate_program(&program).unwrap_or_else(|e| panic!("invalid bytecode: {e}"));
    let mut vm = Vm::new(&program, config).unwrap();
    let result = vm.run().unwrap_or_else(|e| panic!("runtime error: {e}"));
    let ret = result.exit_code.unwrap_or_else(|| result.ret.i());
    (String::from_utf8_lossy(&result.output).into_owned(), ret)
}

#[test]
fn minimal_main() {
    assert_eq!(run("int main(void) { return 42; }").1, 42);
}

#[test]
fn arithmetic_precedence_and_unary() {
    assert_eq!(run("int main() { return 2 + 3 * 4 - 6 / 2; }").1, 11);
    assert_eq!(run("int main() { return -(3 - 10); }").1, 7);
    assert_eq!(run("int main() { return ~0 + 2; }").1, 1);
    assert_eq!(run("int main() { return !5 + !0; }").1, 1);
    assert_eq!(run("int main() { return (7 % 3) << 4 >> 2; }").1, 4);
    assert_eq!(run("int main() { return 12 & 10 | 1 ^ 4; }").1, 13);
}

#[test]
fn signed_and_unsigned_division() {
    assert_eq!(run("int main() { return -7 / 2; }").1, -3);
    assert_eq!(run("int main() { return -7 % 2; }").1, -1);
    assert_eq!(
        run("int main() { unsigned a = 7u; unsigned b = 2u; return (int)(a / b); }").1,
        3
    );
    // Unsigned comparison differs from signed.
    assert_eq!(
        run("int main() { unsigned big = 3000000000u; return big > 5u; }").1,
        1
    );
    assert_eq!(
        run("int main() { int big = (int)3000000000u; return big > 5; }").1,
        0
    );
}

#[test]
fn locals_params_and_calls() {
    let src = "
        int add3(int a, int b, int c) { return a + b + c; }
        int main() { int x = 10; return add3(x, 20, 12); }
    ";
    assert_eq!(run(src).1, 42);
}

#[test]
fn recursion_fib_and_gcd() {
    let src = "
        int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
        int gcd(int a, int b) { if (b == 0) return a; return gcd(b, a % b); }
        int main() { return fib(10) * 10 + gcd(48, 36); }
    ";
    assert_eq!(run(src).1, 55 * 10 + 12);
}

#[test]
fn while_for_do_loops() {
    let src = "
        int main() {
            int total = 0;
            int i;
            for (i = 1; i <= 10; i++) total += i;     /* 55 */
            while (i > 0) { total += 1; i -= 2; }      /* +6: i = 11,9,7,5,3,1 */
            do { total += 100; } while (0);            /* +100 */
            return total;
        }
    ";
    assert_eq!(run(src).1, 161);
}

#[test]
fn break_continue_nesting() {
    let src = "
        int main() {
            int count = 0;
            int i;
            for (i = 0; i < 10; i++) {
                if (i == 7) break;
                if (i % 2 == 0) continue;
                count = count * 10 + i;   /* 1, 3, 5 */
            }
            return count;
        }
    ";
    assert_eq!(run(src).1, 135);
}

#[test]
fn pointers_and_swap() {
    let src = "
        void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }
        int main() {
            int x = 3; int y = 4;
            swap(&x, &y);
            return x * 10 + y;
        }
    ";
    assert_eq!(run(src).1, 43);
}

#[test]
fn arrays_and_pointer_arithmetic() {
    let src = "
        int main() {
            int a[5];
            int *p;
            int i;
            for (i = 0; i < 5; i++) a[i] = i * i;
            p = a + 2;
            return a[4] + *p + *(p + 1) + (int)(p - a);
        }
    ";
    assert_eq!(run(src).1, 16 + 4 + 9 + 2);
}

#[test]
fn global_arrays_with_initializers() {
    let src = "
        int table[5] = {5, 10, 15, 20};
        int scale = 3;
        int main() {
            return table[0] + table[3] + table[4] + scale;
        }
    ";
    assert_eq!(run(src).1, (5 + 20) + 3);
}

#[test]
fn chars_shorts_and_sign_extension() {
    let src = "
        int main() {
            char c = 200;       /* wraps to -56 */
            short s = 70000;    /* wraps to 4464 */
            unsigned char u;
            u = 200;
            return (c < 0) * 100 + (s == 4464) * 10 + (u > 100);
        }
    ";
    // `unsigned char` maps to unsigned storage here, so u > 100 holds.
    assert_eq!(run(src).1, 111);
}

#[test]
fn strings_and_putstr() {
    let src = "
        int main() {
            char *greeting = \"hello\";
            putstr(greeting);
            putchar(' ');
            putstr(\"world\\n\");
            return greeting[1];
        }
    ";
    let (out, ret) = run(src);
    assert_eq!(out, "hello world\n");
    assert_eq!(ret, i32::from(b'e'));
}

#[test]
fn local_char_array_from_string() {
    let src = "
        int main() {
            char buf[6] = \"abcde\";
            buf[2] = 'X';
            putstr(buf);
            return 0;
        }
    ";
    assert_eq!(run(src).0, "abXde");
}

#[test]
fn structs_fields_and_pointers() {
    let src = "
        struct Point { int x; int y; };
        struct Rect { struct Point min; struct Point max; };
        int area(struct Rect *r) {
            return (r->max.x - r->min.x) * (r->max.y - r->min.y);
        }
        int main() {
            struct Rect r;
            r.min.x = 1; r.min.y = 2;
            r.max.x = 5; r.max.y = 10;
            return area(&r);
        }
    ";
    assert_eq!(run(src).1, 32);
}

#[test]
fn struct_assignment_and_by_value_args() {
    let src = "
        struct Pair { int a; int b; };
        int sum(struct Pair p) { p.a += 1; return p.a + p.b; }
        int main() {
            struct Pair x;
            struct Pair y;
            x.a = 10; x.b = 20;
            y = x;              /* block copy */
            y.b = 5;
            return sum(y) * 100 + x.b;  /* by-value: x unchanged */
        }
    ";
    assert_eq!(run(src).1, 16 * 100 + 20);
}

#[test]
fn switch_decision_tree() {
    let src = "
        int classify(int c) {
            switch (c) {
                case 0: return 100;
                case 1:
                case 2: return 200;
                case 5: return 500;
                case 9: return 900;
                case 12: return 1200;
                case 40: return 4000;
                default: return -1;
            }
        }
        int main() {
            return (classify(0) == 100)
                 + (classify(1) == 200)
                 + (classify(2) == 200)
                 + (classify(5) == 500)
                 + (classify(9) == 900)
                 + (classify(12) == 1200)
                 + (classify(40) == 4000)
                 + (classify(7) == -1)
                 + (classify(-3) == -1);
        }
    ";
    assert_eq!(run(src).1, 9);
}

#[test]
fn switch_fallthrough_and_break() {
    let src = "
        int main() {
            int v = 0;
            switch (2) {
                case 1: v += 1;
                case 2: v += 2;   /* enters here */
                case 3: v += 4;   /* falls through */
                    break;
                case 4: v += 8;
            }
            return v;
        }
    ";
    assert_eq!(run(src).1, 6);
}

#[test]
fn short_circuit_evaluation() {
    let src = "
        int calls = 0;
        int bump(int r) { calls++; return r; }
        int main() {
            int a = 0 && bump(1);       /* bump not called */
            int b = 1 || bump(1);       /* bump not called */
            int c = 1 && bump(7);       /* called, c = 1 */
            int d = 0 || bump(0);       /* called, d = 0 */
            return calls * 1000 + a * 100 + b * 10 + c + d;
        }
    ";
    assert_eq!(run(src).1, 2011);
}

#[test]
fn ternary_and_nested_conditionals() {
    let src = "
        int main() {
            int x = 7;
            int big = x > 5 ? 100 : 200;
            double d = x > 5 ? 1.5 : 2;   /* mixed arms promote */
            return big + (d == 1.5 ? 1 : 0) + (x < 0 ? 1 : x == 7 ? 10 : 20);
        }
    ";
    assert_eq!(run(src).1, 111);
}

#[test]
fn increments_and_compound_assignment() {
    let src = "
        int main() {
            int i = 5;
            int a = i++;    /* a=5 i=6 */
            int b = ++i;    /* b=7 i=7 */
            int c = i--;    /* c=7 i=6 */
            i <<= 2;        /* 24 */
            i |= 1;         /* 25 */
            i %= 7;         /* 4 */
            return a * 1000 + b * 100 + c * 10 + i;
        }
    ";
    assert_eq!(run(src).1, 5000 + 700 + 70 + 4);
}

#[test]
fn pointer_increment_walks_elements() {
    let src = "
        int main() {
            int a[4];
            int *p = a;
            int total = 0;
            a[0] = 1; a[1] = 2; a[2] = 4; a[3] = 8;
            total += *p++;
            total += *p++;
            p += 1;
            total += *p;
            return total;
        }
    ";
    assert_eq!(run(src).1, 1 + 2 + 8);
}

#[test]
fn floats_and_doubles() {
    let src = "
        double half(double d) { return d / 2; }
        int main() {
            float f = 1.5f;
            double d = 2.25;
            f = f * 2.0f;               /* 3.0 */
            d = half(d) + (double)f;    /* 1.125 + 3.0 */
            return (int)(d * 1000.0);
        }
    ";
    assert_eq!(run(src).1, 4125);
}

#[test]
fn float_comparisons_and_conversions() {
    let src = "
        int main() {
            double a = 0.5;
            float b = 0.25f;
            int big = 1000000;
            double c = (double)big + a;
            return (a > (double)b) * 100 + ((int)c == 1000000) * 10 + (a != 0.0);
        }
    ";
    assert_eq!(run(src).1, 111);
}

#[test]
fn function_pointers() {
    let src = "
        int twice(int x) { return 2 * x; }
        int thrice(int x) { return 3 * x; }
        int apply(int (*f)(int), int v) { return f(v); }
        int main() {
            int (*g)(int);
            g = twice;
            return apply(g, 10) + apply(thrice, 10);
        }
    ";
    assert_eq!(run(src).1, 50);
}

#[test]
fn natives_malloc_memset_memcpy() {
    let src = "
        int main() {
            char *p = (char *)malloc(16u);
            char *q = (char *)malloc(16u);
            memset((void *)p, 'a', 5u);
            p[5] = 0;
            memcpy((void *)q, (void *)p, 6u);
            q[0] = 'A';
            putstr(q);
            free((void *)q);
            return 0;
        }
    ";
    assert_eq!(run(src).0, "Aaaaa");
}

#[test]
fn getchar_and_exit() {
    let src = "
        int main() {
            int c = getchar();
            while (c != -1) { putchar(c + 1); c = getchar(); }
            exit(9);
            return 0;
        }
    ";
    let (out, code) = run_with(
        src,
        VmConfig {
            input: b"HAL".to_vec(),
            ..VmConfig::default()
        },
    );
    assert_eq!(out, "IBM");
    assert_eq!(code, 9);
}

#[test]
fn rand_is_deterministic() {
    let src = "
        int main() {
            int a;
            int b;
            srand(42u);
            a = rand();
            srand(42u);
            b = rand();
            return (a == b) * 10 + (a >= 0);
        }
    ";
    assert_eq!(run(src).1, 11);
}

#[test]
fn putint_formats_decimals() {
    let src = "
        int main() {
            putint(-42);
            putchar(' ');
            putuint(3000000000u);
            return 0;
        }
    ";
    assert_eq!(run(src).0, "-42 3000000000");
}

#[test]
fn sizeof_values() {
    let src = "
        struct S { char c; double d; };
        int main() {
            return sizeof(char) + sizeof(short) * 10 + sizeof(int) * 100
                 + sizeof(double) * 1000 + (sizeof(struct S) == 16) * 10000
                 + (sizeof(int *) == 4) * 100000;
        }
    ";
    assert_eq!(run(src).1, 1 + 20 + 400 + 8000 + 10000 + 100000);
}

#[test]
fn global_bss_is_zeroed() {
    let src = "
        int counters[8];
        double acc;
        int main() {
            int i;
            int total = 0;
            for (i = 0; i < 8; i++) total += counters[i];
            return total + (acc == 0.0 ? 5 : 6);
        }
    ";
    assert_eq!(run(src).1, 5);
}

#[test]
fn comma_separated_globals_and_protos() {
    let src = "
        int helper(int x);
        int a = 1, b = 2, c;
        int helper(int x) { return x + a + b; }
        int main() { c = helper(10); return c; }
    ";
    assert_eq!(run(src).1, 13);
}

#[test]
fn struct_initializer_globals() {
    let src = "
        struct P { int x; int y; };
        struct P origin = {3, 4};
        int grid[2] = {7, 8};
        int main() { return origin.x * origin.y + grid[1]; }
    ";
    assert_eq!(run(src).1, 20);
}

#[test]
fn nested_call_arguments() {
    let src = "
        int add(int a, int b) { return a + b; }
        int main() { return add(1, add(add(2, 3), 4)) + add(5, 6); }
    ";
    assert_eq!(run(src).1, 21);
}

#[test]
fn eight_queens_smoke() {
    // The paper's 8q benchmark, condensed: count solutions.
    let src = "
        int rows[8], d1[15], d2[15];
        int count = 0;
        void place(int c) {
            int r;
            if (c == 8) { count++; return; }
            for (r = 0; r < 8; r++) {
                if (!rows[r] && !d1[r + c] && !d2[r - c + 7]) {
                    rows[r] = 1; d1[r + c] = 1; d2[r - c + 7] = 1;
                    place(c + 1);
                    rows[r] = 0; d1[r + c] = 0; d2[r - c + 7] = 0;
                }
            }
        }
        int main() { place(0); return count; }
    ";
    assert_eq!(run(src).1, 92);
}

#[test]
fn optimizer_preserves_behaviour() {
    let src = "
        int work(int n) {
            int acc = 0;
            int i;
            for (i = 0; i < n; i++) {
                acc += i * 1 + 0;
                if (i < n / 2) acc -= 0;
                acc ^= (2 * 3);
            }
            return acc;
        }
        int main() { putint(work(17)); return work(9); }
    ";
    let plain = run(src);
    let opt_program = compile_with(src, &Options { optimize: true }).unwrap();
    validate_program(&opt_program).unwrap();
    let mut vm = Vm::new(&opt_program, VmConfig::default()).unwrap();
    let r = vm.run().unwrap();
    assert_eq!(String::from_utf8_lossy(&r.output), plain.0);
    assert_eq!(r.ret.i(), plain.1);
    // And it should actually shrink this code.
    let plain_program = compile(src).unwrap();
    assert!(opt_program.code_size() < plain_program.code_size());
}

#[test]
fn compressed_execution_matches_for_compiled_c() {
    use pgr_core::{train, TrainConfig};
    let src = "
        int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
        int main() {
            int i;
            for (i = 0; i < 10; i++) { putint(fib(i)); putchar(' '); }
            return fib(10);
        }
    ";
    let program = compile(src).unwrap();
    validate_program(&program).unwrap();
    let mut vm = Vm::new(&program, VmConfig::default()).unwrap();
    let plain = vm.run().unwrap();

    let trained = train(&[&program], &TrainConfig::default()).unwrap();
    let (cp, stats) = trained.compress(&program).unwrap();
    assert!(stats.compressed_code < stats.original_code);
    let ig = trained.initial();
    let mut cvm = Vm::new_compressed(
        &cp.program,
        trained.expanded(),
        ig.nt_start,
        ig.nt_byte,
        VmConfig::default(),
    )
    .unwrap();
    let compressed = cvm.run().unwrap();
    assert_eq!(plain.output, compressed.output);
    assert_eq!(plain.ret, compressed.ret);
    assert_eq!(plain.output, b"0 1 1 2 3 5 8 13 21 34 ");
    assert_eq!(plain.ret.u(), 55);
}

#[test]
fn error_reporting_is_positioned() {
    let e = compile("int main() { return x; }").unwrap_err();
    assert!(e.message.contains("undefined"));
    let e = compile("int main() { return 1 +; }").unwrap_err();
    assert!(e.pos.line == 1 && e.pos.col > 0);
    let e = compile("int f(int a) { return a; }").unwrap_err();
    assert!(e.message.contains("main"));
    let e = compile("int main() { break; }").unwrap_err();
    assert!(e.message.contains("break"));
    let e = compile("void main() { return 1; }").unwrap_err();
    assert!(e.message.contains("void"));
}
