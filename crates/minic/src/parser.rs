//! Recursive-descent parser.
//!
//! The grammar is the classic C expression/statement grammar over the
//! subset in the crate docs. There are no typedefs, so `(T)e` casts are
//! unambiguous: a parenthesized type starts with a type keyword or
//! `struct`.

use crate::ast::*;
use crate::lexer::{Tok, Token};
use crate::sema::eval_const_int;
use crate::types::{FuncSig, Type, TypeTable};
use crate::{Error, Pos};

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    types: TypeTable,
    /// Comma-separated global declarators beyond the first, queued so
    /// `top_level` can keep returning one item at a time.
    pending: Vec<Item>,
    /// Parameter list (with names) of the most recent direct function
    /// declarator, for function definitions.
    last_params: Option<Vec<(Option<String>, Type)>>,
}

/// Parse a token stream into a [`Unit`].
///
/// # Errors
///
/// Returns the first syntax error with its position.
pub fn parse(toks: Vec<Token>) -> Result<Unit, Error> {
    let mut p = Parser {
        toks,
        pos: 0,
        types: TypeTable::default(),
        pending: Vec::new(),
        last_params: None,
    };
    let mut items = Vec::new();
    while !p.at_eof() {
        if let Some(item) = p.top_level()? {
            items.push(item);
        }
    }
    Ok(Unit {
        items,
        types: p.types,
    })
}

const TYPE_KEYWORDS: &[&str] = &[
    "void", "char", "short", "int", "unsigned", "float", "double", "struct",
];

impl Parser {
    fn here(&self) -> Pos {
        self.toks[self.pos].pos
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek_at(&self, n: usize) -> &Tok {
        self.toks
            .get(self.pos + n)
            .map(|t| &t.tok)
            .unwrap_or(&Tok::Eof)
    }

    fn at_eof(&self) -> bool {
        *self.peek() == Tok::Eof
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, p: &str) -> bool {
        if self.peek().is(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, p: &str) -> Result<(), Error> {
        if self.eat(p) {
            Ok(())
        } else {
            Err(Error::new(
                self.here(),
                format!("expected `{p}`, found {:?}", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, Error> {
        match self.peek().clone() {
            Tok::Ident(s) if !TYPE_KEYWORDS.contains(&s.as_str()) => {
                self.bump();
                Ok(s)
            }
            other => Err(Error::new(
                self.here(),
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    fn starts_type(&self) -> bool {
        matches!(self.peek(), Tok::Ident(s) if TYPE_KEYWORDS.contains(&s.as_str()))
    }

    // ---- types ------------------------------------------------------

    /// Parse a type specifier (`int`, `unsigned int`, `struct s`, …).
    fn type_specifier(&mut self) -> Result<Type, Error> {
        let pos = self.here();
        if self.eat_kw("void") {
            return Ok(Type::Void);
        }
        if self.eat_kw("char") {
            return Ok(Type::Char);
        }
        if self.eat_kw("short") {
            self.eat_kw("int");
            return Ok(Type::Short);
        }
        if self.eat_kw("int") {
            return Ok(Type::Int);
        }
        if self.eat_kw("unsigned") {
            // `unsigned`, `unsigned int`, `unsigned char/short` all map
            // onto the two unsigned shapes the bytecode distinguishes.
            if self.eat_kw("char") || self.eat_kw("short") {
                return Ok(Type::Uint); // stored promoted
            }
            self.eat_kw("int");
            return Ok(Type::Uint);
        }
        if self.eat_kw("float") {
            return Ok(Type::Float);
        }
        if self.eat_kw("double") {
            return Ok(Type::Double);
        }
        if self.eat_kw("struct") {
            let name = self.ident()?;
            if self.peek().is("{") {
                // Definition. Reserve the id first so fields can hold
                // pointers to the struct being defined.
                if self.types.struct_by_name(&name).is_some() {
                    return Err(Error::new(pos, format!("struct {name} redefined")));
                }
                let id = self.types.declare_struct(name);
                self.bump();
                let mut fields = Vec::new();
                while !self.eat("}") {
                    let base = self.type_specifier()?;
                    loop {
                        let (fname, ty) = self.declarator(base.clone())?;
                        let fname =
                            fname.ok_or_else(|| Error::new(pos, "struct field needs a name"))?;
                        if ty == Type::Struct(id) {
                            return Err(Error::new(pos, "struct cannot contain itself by value"));
                        }
                        fields.push((fname, ty));
                        if !self.eat(",") {
                            break;
                        }
                    }
                    self.expect(";")?;
                }
                self.types.complete_struct(id, fields);
                return Ok(Type::Struct(id));
            }
            let id = self
                .types
                .struct_by_name(&name)
                .ok_or_else(|| Error::new(pos, format!("unknown struct {name}")))?;
            return Ok(Type::Struct(id));
        }
        Err(Error::new(
            pos,
            format!("expected type, found {:?}", self.peek()),
        ))
    }

    /// Parse a declarator over `base`: pointers, a name (or function
    /// pointer core), array and parameter-list suffixes.
    fn declarator(&mut self, base: Type) -> Result<(Option<String>, Type), Error> {
        let mut ty = base;
        while self.eat("*") {
            ty = ty.ptr_to();
        }
        // Function pointer: ( * name ) ( params )
        if self.peek().is("(") && self.peek_at(1).is("*") {
            self.bump(); // (
            let mut stars = 0usize;
            while self.eat("*") {
                stars += 1;
            }
            let name = self.ident()?;
            self.expect(")")?;
            self.expect("(")?;
            let params = self.param_types()?;
            let mut fty = Type::Func(Box::new(FuncSig { ret: ty, params }));
            for _ in 0..stars {
                fty = fty.ptr_to();
            }
            return Ok((Some(name), fty));
        }
        let name = if matches!(self.peek(), Tok::Ident(s) if !TYPE_KEYWORDS.contains(&s.as_str())) {
            Some(self.ident()?)
        } else {
            None
        };
        if self.peek().is("(") {
            self.bump();
            let params = self.params()?;
            let param_types = params.iter().map(|(_, t)| t.clone()).collect();
            self.last_params = Some(params);
            return Ok((
                name,
                Type::Func(Box::new(FuncSig {
                    ret: ty,
                    params: param_types,
                })),
            ));
        }
        // Array suffixes, applied right-to-left.
        let mut dims: Vec<Option<u32>> = Vec::new();
        while self.eat("[") {
            if self.eat("]") {
                dims.push(None); // size inferred from the initializer
            } else {
                let pos = self.here();
                let e = self.expr()?;
                let n = eval_const_int(&e, &self.types)
                    .ok_or_else(|| Error::new(pos, "array size must be constant"))?;
                if n <= 0 {
                    return Err(Error::new(pos, "array size must be positive"));
                }
                dims.push(Some(n as u32));
                self.expect("]")?;
            }
        }
        for dim in dims.into_iter().rev() {
            // A deferred size is encoded as 0 and fixed up by the
            // initializer handling.
            ty = Type::Array(Box::new(ty), dim.unwrap_or(0));
        }
        Ok((name, ty))
    }

    /// Parse `(params)` contents after the opening parenthesis, with
    /// names (for definitions) or without.
    fn params(&mut self) -> Result<Vec<(Option<String>, Type)>, Error> {
        let mut out = Vec::new();
        if self.eat(")") {
            return Ok(out);
        }
        if self.peek().is_kw("void") && self.peek_at(1).is(")") {
            self.bump();
            self.bump();
            return Ok(out);
        }
        loop {
            let base = self.type_specifier()?;
            let (name, ty) = self.declarator(base)?;
            // Array parameters decay to pointers.
            let ty = match ty {
                Type::Array(elem, _) => Type::Ptr(elem),
                Type::Func(sig) => Type::Ptr(Box::new(Type::Func(sig))),
                other => other,
            };
            out.push((name, ty));
            if !self.eat(",") {
                break;
            }
        }
        self.expect(")")?;
        Ok(out)
    }

    fn param_types(&mut self) -> Result<Vec<Type>, Error> {
        Ok(self.params()?.into_iter().map(|(_, t)| t).collect())
    }

    // ---- top level --------------------------------------------------

    fn top_level(&mut self) -> Result<Option<Item>, Error> {
        if !self.pending.is_empty() {
            return Ok(Some(self.pending.remove(0)));
        }
        let pos = self.here();
        let base = self.type_specifier()?;
        // Bare `struct s { ... };`
        if self.eat(";") {
            return Ok(None);
        }
        self.last_params = None;
        let (name, ty) = self.declarator(base.clone())?;
        let name = name.ok_or_else(|| Error::new(pos, "declaration needs a name"))?;

        if let Type::Func(sig) = &ty {
            if self.peek().is("{") {
                let params = self
                    .last_params
                    .take()
                    .expect("direct function declarator records its parameters");
                let mut named = Vec::with_capacity(params.len());
                for (pname, pty) in params {
                    let pname = pname.ok_or_else(|| {
                        Error::new(pos, "function definition parameters need names")
                    })?;
                    named.push((pname, pty));
                }
                let body = self.block()?;
                return Ok(Some(Item::Func(FuncDef {
                    name,
                    ret: sig.ret.clone(),
                    params: named,
                    body,
                    pos,
                })));
            }
            self.expect(";")?;
            return Ok(Some(Item::Proto(name, sig.clone(), pos)));
        }

        // Global variable(s); comma declarators queue as pending items.
        let mut items = self.global_with_init(name, ty, pos)?;
        while self.eat(",") {
            let pos = self.here();
            let (name, ty) = self.declarator(base.clone())?;
            let name = name.ok_or_else(|| Error::new(pos, "declaration needs a name"))?;
            items.extend(self.global_with_init(name, ty, pos)?);
        }
        self.expect(";")?;
        let mut it = items.into_iter();
        let first = it.next().expect("at least one declarator");
        self.pending.extend(it);
        Ok(Some(first))
    }

    fn global_with_init(
        &mut self,
        name: String,
        mut ty: Type,
        pos: Pos,
    ) -> Result<Vec<Item>, Error> {
        let init = if self.eat("=") {
            let init = self.initializer()?;
            // Infer deferred array lengths.
            if let Type::Array(elem, 0) = &ty {
                let n = match &init {
                    Init::List(items) => items.len() as u32,
                    Init::Expr(Expr {
                        kind: ExprKind::Str(bytes),
                        ..
                    }) => bytes.len() as u32 + 1,
                    _ => {
                        return Err(Error::new(
                            pos,
                            "cannot infer array size from this initializer",
                        ))
                    }
                };
                ty = Type::Array(elem.clone(), n);
            }
            Some(init)
        } else {
            None
        };
        if matches!(ty, Type::Array(_, 0)) {
            return Err(Error::new(pos, "array needs a size or an initializer"));
        }
        Ok(vec![Item::Global(GlobalDecl {
            name,
            ty,
            init,
            pos,
        })])
    }

    fn initializer(&mut self) -> Result<Init, Error> {
        if self.eat("{") {
            let mut items = Vec::new();
            if !self.eat("}") {
                loop {
                    items.push(self.initializer()?);
                    if !self.eat(",") {
                        break;
                    }
                    if self.peek().is("}") {
                        break; // trailing comma
                    }
                }
                self.expect("}")?;
            }
            Ok(Init::List(items))
        } else {
            Ok(Init::Expr(self.assign_expr()?))
        }
    }

    // ---- statements -------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, Error> {
        self.expect("{")?;
        let mut out = Vec::new();
        while !self.eat("}") {
            if self.at_eof() {
                return Err(Error::new(self.here(), "unterminated block"));
            }
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn local_decl(&mut self) -> Result<Stmt, Error> {
        let base = self.type_specifier()?;
        let mut decls = Vec::new();
        loop {
            let pos = self.here();
            let (name, mut ty) = self.declarator(base.clone())?;
            let name = name.ok_or_else(|| Error::new(pos, "declaration needs a name"))?;
            let init = if self.eat("=") {
                let e = self.assign_expr()?;
                if let Type::Array(elem, 0) = &ty {
                    if let ExprKind::Str(bytes) = &e.kind {
                        ty = Type::Array(elem.clone(), bytes.len() as u32 + 1);
                    }
                }
                Some(e)
            } else {
                None
            };
            if matches!(ty, Type::Array(_, 0)) {
                return Err(Error::new(pos, "array needs a size or an initializer"));
            }
            decls.push(LocalDecl {
                name,
                ty,
                init,
                pos,
            });
            if !self.eat(",") {
                break;
            }
        }
        self.expect(";")?;
        Ok(Stmt::Decl(decls))
    }

    fn stmt(&mut self) -> Result<Stmt, Error> {
        let pos = self.here();
        if self.peek().is("{") {
            return Ok(Stmt::Block(self.block()?));
        }
        if self.starts_type() {
            return self.local_decl();
        }
        if self.eat(";") {
            return Ok(Stmt::Empty);
        }
        if self.eat_kw("if") {
            self.expect("(")?;
            let cond = self.expr()?;
            self.expect(")")?;
            let then = Box::new(self.stmt()?);
            let els = if self.eat_kw("else") {
                Some(Box::new(self.stmt()?))
            } else {
                None
            };
            return Ok(Stmt::If(cond, then, els));
        }
        if self.eat_kw("while") {
            self.expect("(")?;
            let cond = self.expr()?;
            self.expect(")")?;
            return Ok(Stmt::While(cond, Box::new(self.stmt()?)));
        }
        if self.eat_kw("do") {
            let body = Box::new(self.stmt()?);
            if !self.eat_kw("while") {
                return Err(Error::new(self.here(), "expected `while` after do-body"));
            }
            self.expect("(")?;
            let cond = self.expr()?;
            self.expect(")")?;
            self.expect(";")?;
            return Ok(Stmt::DoWhile(body, cond));
        }
        if self.eat_kw("for") {
            self.expect("(")?;
            let init = if self.peek().is(";") {
                self.bump();
                None
            } else if self.starts_type() {
                Some(Box::new(self.local_decl()?))
            } else {
                let e = self.expr()?;
                self.expect(";")?;
                Some(Box::new(Stmt::Expr(e)))
            };
            let cond = if self.peek().is(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect(";")?;
            let step = if self.peek().is(")") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect(")")?;
            return Ok(Stmt::For(init, cond, step, Box::new(self.stmt()?)));
        }
        if self.eat_kw("switch") {
            self.expect("(")?;
            let scrutinee = self.expr()?;
            self.expect(")")?;
            self.expect("{")?;
            let mut arms: Vec<SwitchArm> = Vec::new();
            while !self.eat("}") {
                let pos = self.here();
                if self.eat_kw("case") {
                    let e = self.expr()?;
                    let v = eval_const_int(&e, &self.types)
                        .ok_or_else(|| Error::new(pos, "case value must be constant"))?;
                    self.expect(":")?;
                    if arms.iter().any(|a| a.value == Some(v)) {
                        return Err(Error::new(pos, format!("duplicate case {v}")));
                    }
                    arms.push(SwitchArm {
                        value: Some(v),
                        body: Vec::new(),
                        pos,
                    });
                } else if self.eat_kw("default") {
                    self.expect(":")?;
                    if arms.iter().any(|a| a.value.is_none()) {
                        return Err(Error::new(pos, "duplicate default"));
                    }
                    arms.push(SwitchArm {
                        value: None,
                        body: Vec::new(),
                        pos,
                    });
                } else {
                    let stmt = self.stmt()?;
                    match arms.last_mut() {
                        Some(arm) => arm.body.push(stmt),
                        None => return Err(Error::new(pos, "statement before first case label")),
                    }
                }
            }
            return Ok(Stmt::Switch(scrutinee, arms, pos));
        }
        if self.eat_kw("break") {
            self.expect(";")?;
            return Ok(Stmt::Break(pos));
        }
        if self.eat_kw("continue") {
            self.expect(";")?;
            return Ok(Stmt::Continue(pos));
        }
        if self.eat_kw("return") {
            if self.eat(";") {
                return Ok(Stmt::Return(None, pos));
            }
            let e = self.expr()?;
            self.expect(";")?;
            return Ok(Stmt::Return(Some(e), pos));
        }
        let e = self.expr()?;
        self.expect(";")?;
        Ok(Stmt::Expr(e))
    }

    // ---- expressions ------------------------------------------------

    fn expr(&mut self) -> Result<Expr, Error> {
        self.assign_expr()
    }

    fn assign_expr(&mut self) -> Result<Expr, Error> {
        let lhs = self.cond_expr()?;
        let pos = self.here();
        let op = match self.peek() {
            t if t.is("=") => None,
            t if t.is("+=") => Some(BinOp::Add),
            t if t.is("-=") => Some(BinOp::Sub),
            t if t.is("*=") => Some(BinOp::Mul),
            t if t.is("/=") => Some(BinOp::Div),
            t if t.is("%=") => Some(BinOp::Rem),
            t if t.is("&=") => Some(BinOp::And),
            t if t.is("|=") => Some(BinOp::Or),
            t if t.is("^=") => Some(BinOp::Xor),
            t if t.is("<<=") => Some(BinOp::Shl),
            t if t.is(">>=") => Some(BinOp::Shr),
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.assign_expr()?;
        Ok(Expr::new(
            ExprKind::Assign(op, Box::new(lhs), Box::new(rhs)),
            pos,
        ))
    }

    fn cond_expr(&mut self) -> Result<Expr, Error> {
        let cond = self.binary_expr(0)?;
        if self.peek().is("?") {
            let pos = self.here();
            self.bump();
            let t = self.expr()?;
            self.expect(":")?;
            let e = self.cond_expr()?;
            return Ok(Expr::new(
                ExprKind::Cond(Box::new(cond), Box::new(t), Box::new(e)),
                pos,
            ));
        }
        Ok(cond)
    }

    /// Precedence climbing over the binary operators.
    fn binary_expr(&mut self, min_level: u8) -> Result<Expr, Error> {
        const LEVELS: &[&[(&str, Option<BinOp>)]] = &[
            &[("||", None)],
            &[("&&", None)],
            &[("|", Some(BinOp::Or))],
            &[("^", Some(BinOp::Xor))],
            &[("&", Some(BinOp::And))],
            &[("==", Some(BinOp::Eq)), ("!=", Some(BinOp::Ne))],
            &[
                ("<=", Some(BinOp::Le)),
                (">=", Some(BinOp::Ge)),
                ("<", Some(BinOp::Lt)),
                (">", Some(BinOp::Gt)),
            ],
            &[("<<", Some(BinOp::Shl)), (">>", Some(BinOp::Shr))],
            &[("+", Some(BinOp::Add)), ("-", Some(BinOp::Sub))],
            &[
                ("*", Some(BinOp::Mul)),
                ("/", Some(BinOp::Div)),
                ("%", Some(BinOp::Rem)),
            ],
        ];
        if min_level as usize >= LEVELS.len() {
            return self.unary_expr();
        }
        let mut lhs = self.binary_expr(min_level + 1)?;
        'outer: loop {
            for &(text, op) in LEVELS[min_level as usize] {
                if self.peek().is(text) {
                    let pos = self.here();
                    self.bump();
                    let rhs = self.binary_expr(min_level + 1)?;
                    lhs = match op {
                        Some(op) => {
                            Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), pos)
                        }
                        None => Expr::new(
                            ExprKind::Logic(text == "&&", Box::new(lhs), Box::new(rhs)),
                            pos,
                        ),
                    };
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, Error> {
        let pos = self.here();
        if self.eat("-") {
            return Ok(Expr::new(
                ExprKind::Unary(UnOp::Neg, Box::new(self.unary_expr()?)),
                pos,
            ));
        }
        if self.eat("!") {
            return Ok(Expr::new(
                ExprKind::Unary(UnOp::Not, Box::new(self.unary_expr()?)),
                pos,
            ));
        }
        if self.eat("~") {
            return Ok(Expr::new(
                ExprKind::Unary(UnOp::BitNot, Box::new(self.unary_expr()?)),
                pos,
            ));
        }
        if self.eat("*") {
            return Ok(Expr::new(
                ExprKind::Unary(UnOp::Deref, Box::new(self.unary_expr()?)),
                pos,
            ));
        }
        if self.eat("&") {
            return Ok(Expr::new(
                ExprKind::Unary(UnOp::Addr, Box::new(self.unary_expr()?)),
                pos,
            ));
        }
        if self.eat("++") {
            return Ok(Expr::new(
                ExprKind::PreIncDec(true, Box::new(self.unary_expr()?)),
                pos,
            ));
        }
        if self.eat("--") {
            return Ok(Expr::new(
                ExprKind::PreIncDec(false, Box::new(self.unary_expr()?)),
                pos,
            ));
        }
        if self.peek().is_kw("sizeof") {
            self.bump();
            self.expect("(")?;
            let base = self.type_specifier()?;
            let (_, ty) = self.declarator(base)?;
            self.expect(")")?;
            return Ok(Expr::new(ExprKind::Sizeof(ty), pos));
        }
        // Cast: `(` type …
        if self.peek().is("(")
            && matches!(self.peek_at(1), Tok::Ident(s) if TYPE_KEYWORDS.contains(&s.as_str()))
        {
            self.bump();
            let base = self.type_specifier()?;
            let (_, ty) = self.declarator(base)?;
            self.expect(")")?;
            let e = self.unary_expr()?;
            return Ok(Expr::new(ExprKind::Cast(ty, Box::new(e)), pos));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, Error> {
        let mut e = self.primary_expr()?;
        loop {
            let pos = self.here();
            if self.eat("(") {
                let mut args = Vec::new();
                if !self.eat(")") {
                    loop {
                        args.push(self.assign_expr()?);
                        if !self.eat(",") {
                            break;
                        }
                    }
                    self.expect(")")?;
                }
                e = Expr::new(ExprKind::Call(Box::new(e), args), pos);
            } else if self.eat("[") {
                let idx = self.expr()?;
                self.expect("]")?;
                e = Expr::new(ExprKind::Index(Box::new(e), Box::new(idx)), pos);
            } else if self.eat(".") {
                let f = self.ident()?;
                e = Expr::new(ExprKind::Member(Box::new(e), f), pos);
            } else if self.eat("->") {
                let f = self.ident()?;
                e = Expr::new(ExprKind::Arrow(Box::new(e), f), pos);
            } else if self.eat("++") {
                e = Expr::new(ExprKind::PostIncDec(true, Box::new(e)), pos);
            } else if self.eat("--") {
                e = Expr::new(ExprKind::PostIncDec(false, Box::new(e)), pos);
            } else {
                return Ok(e);
            }
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, Error> {
        let pos = self.here();
        match self.peek().clone() {
            Tok::Int(v, unsigned) => {
                self.bump();
                Ok(Expr::new(ExprKind::Int(v, unsigned), pos))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::Float(v), pos))
            }
            Tok::Double(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::Double(v), pos))
            }
            Tok::Char(c) => {
                self.bump();
                Ok(Expr::new(ExprKind::Char(c), pos))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::new(ExprKind::Str(s), pos))
            }
            Tok::Ident(name) if !TYPE_KEYWORDS.contains(&name.as_str()) && name != "sizeof" => {
                self.bump();
                Ok(Expr::new(ExprKind::Ident(name), pos))
            }
            t if t.is("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect(")")?;
                Ok(Expr::new(ExprKind::Paren(Box::new(e)), pos))
            }
            other => Err(Error::new(
                pos,
                format!("expected expression, found {other:?}"),
            )),
        }
    }
}
