//! Bytecode generation.
//!
//! One pass per function over the AST, emitting postfix code in the
//! Appendix 2 discipline: every straight-line segment is a sequence of
//! complete statements, so the evaluation stack is empty at every label.
//! Short-circuit operators, conditionals, and assignment values are
//! lowered with frame temporaries (as lcc's front end does), switches
//! become decision trees (§6), and `LocalCALL` is used for all direct
//! calls while address-taken procedures get trampolines via the global
//! table (§3).

use crate::ast::*;
use crate::sema::{eval_const_double, eval_const_int, usual_arith};
use crate::types::{FuncSig, Type, TypeTable};
use crate::{Error, Pos};
use pgr_bytecode::{GlobalEntry, Opcode, Procedure, Program};
use std::collections::HashMap;

/// Generate a program from a parsed unit.
///
/// # Errors
///
/// Returns the first semantic error (undefined names, type misuse,
/// unsupported constructs) with its position.
pub fn generate(unit: &Unit) -> Result<Program, Error> {
    let mut cg = Cg::new(unit);
    cg.register_items()?;
    for item in &unit.items {
        if let Item::Func(f) = item {
            cg.gen_function(f)?;
        }
    }
    let main = cg
        .funcs
        .get("main")
        .ok_or_else(|| Error::new(Pos::default(), "no `main` function"))?
        .0;
    cg.program.entry = main;
    cg.program.procs[main as usize].needs_trampoline = true;
    Ok(cg.program)
}

/// How a name resolves inside a function.
#[derive(Debug, Clone)]
enum Sym {
    Local { offset: u32, ty: Type },
    Param { offset: u32, ty: Type },
    Global { index: u32, ty: Type },
}

impl Sym {
    fn ty(&self) -> &Type {
        match self {
            Sym::Local { ty, .. } | Sym::Param { ty, .. } | Sym::Global { ty, .. } => ty,
        }
    }
}

struct Cg<'u> {
    unit: &'u Unit,
    program: Program,
    /// name -> (proc index, signature)
    funcs: HashMap<String, (u32, FuncSig)>,
    /// variable name -> (global table index, type)
    globals: HashMap<String, (u32, Type)>,
    /// native name -> global table index
    natives: HashMap<String, u32>,
    /// function name -> global table index of its trampoline address
    func_addrs: HashMap<String, u32>,
    str_pool: HashMap<Vec<u8>, u32>,
    dbl_pool: HashMap<u64, u32>,
}

fn native_sig(name: &str) -> Option<FuncSig> {
    let (ret, params): (Type, Vec<Type>) = match name {
        "putchar" => (Type::Int, vec![Type::Int]),
        "putint" => (Type::Void, vec![Type::Int]),
        "putuint" => (Type::Void, vec![Type::Uint]),
        "putstr" => (Type::Void, vec![Type::Char.ptr_to()]),
        "getchar" => (Type::Int, vec![]),
        "exit" => (Type::Void, vec![Type::Int]),
        "abort" => (Type::Void, vec![]),
        "malloc" => (Type::Void.ptr_to(), vec![Type::Uint]),
        "free" => (Type::Void, vec![Type::Void.ptr_to()]),
        "memcpy" => (
            Type::Void.ptr_to(),
            vec![Type::Void.ptr_to(), Type::Void.ptr_to(), Type::Uint],
        ),
        "memset" => (
            Type::Void.ptr_to(),
            vec![Type::Void.ptr_to(), Type::Int, Type::Uint],
        ),
        "srand" => (Type::Void, vec![Type::Uint]),
        "rand" => (Type::Int, vec![]),
        _ => return None,
    };
    Some(FuncSig { ret, params })
}

/// Bytes one argument occupies in the contiguous argument block.
fn param_slot(ty: &Type, types: &TypeTable) -> u32 {
    match ty {
        Type::Double => 8,
        Type::Struct(_) => (ty.size(types) + 3) & !3,
        _ => 4,
    }
}

/// Whether generating this expression emits statement-level operators or
/// labels (calls emit `ARG` statements, assignments emit `ASGN`
/// statements, `&&`/`||`/`?:` emit branches). Such expressions must not
/// be generated while other values sit on the evaluation stack, or the
/// emitted code leaves the language of the Appendix 2 grammar — lcc's
/// front end hoists them into temporaries, and so do we.
fn has_barrier(e: &Expr) -> bool {
    use ExprKind::*;
    match &e.kind {
        Logic(..) | Cond(..) | Call(..) | Assign(..) | PreIncDec(..) | PostIncDec(..) => true,
        Int(..) | Float(_) | Double(_) | Char(_) | Str(_) | Ident(_) | Sizeof(_) => false,
        Unary(_, a) | Member(a, _) | Arrow(a, _) | Cast(_, a) | Paren(a) => has_barrier(a),
        Binary(_, a, b) | Index(a, b) => has_barrier(a) || has_barrier(b),
    }
}

impl<'u> Cg<'u> {
    fn new(unit: &'u Unit) -> Cg<'u> {
        Cg {
            unit,
            program: Program::new(),
            funcs: HashMap::new(),
            globals: HashMap::new(),
            natives: HashMap::new(),
            func_addrs: HashMap::new(),
            str_pool: HashMap::new(),
            dbl_pool: HashMap::new(),
        }
    }

    fn types(&self) -> &TypeTable {
        &self.unit.types
    }

    /// Register all functions and globals up front so forward references
    /// work.
    fn register_items(&mut self) -> Result<(), Error> {
        for item in &self.unit.items {
            match item {
                Item::Func(f) => {
                    if self.funcs.contains_key(&f.name) {
                        return Err(Error::new(f.pos, format!("function {} redefined", f.name)));
                    }
                    if matches!(f.ret, Type::Struct(_) | Type::Array(_, _)) {
                        return Err(Error::new(
                            f.pos,
                            "functions cannot return structs or arrays",
                        ));
                    }
                    let idx = self.program.procs.len() as u32;
                    self.program.procs.push(Procedure::new(&f.name));
                    let sig = FuncSig {
                        ret: f.ret.clone(),
                        params: f.params.iter().map(|(_, t)| t.clone()).collect(),
                    };
                    self.funcs.insert(f.name.clone(), (idx, sig));
                }
                Item::Proto(name, _sig, pos) => {
                    if native_sig(name).is_some() {
                        continue; // redundant prototype for a library routine
                    }
                    let defined = self
                        .unit
                        .items
                        .iter()
                        .any(|i| matches!(i, Item::Func(f) if f.name == *name));
                    if !defined {
                        return Err(Error::new(
                            *pos,
                            format!("prototype for {name} has no definition"),
                        ));
                    }
                }
                Item::Global(_) => {}
            }
        }
        for item in &self.unit.items {
            if let Item::Global(g) = item {
                self.register_global(g)?;
            }
        }
        Ok(())
    }

    fn register_global(&mut self, g: &GlobalDecl) -> Result<(), Error> {
        if self.globals.contains_key(&g.name) {
            return Err(Error::new(g.pos, format!("global {} redefined", g.name)));
        }
        if matches!(g.ty, Type::Void | Type::Func(_)) {
            return Err(Error::new(g.pos, "global has no object type"));
        }
        let align = g.ty.align(self.types());
        let size = g.ty.size(self.types());
        let index = self.program.globals.len() as u32;
        match &g.init {
            Some(init) => {
                let mut bytes = Vec::new();
                self.init_bytes(&g.ty, init, g.pos, &mut bytes)?;
                debug_assert_eq!(bytes.len() as u32, size);
                while !(self.program.data.len() as u32).is_multiple_of(align) {
                    self.program.data.push(0);
                }
                let offset = self.program.data.len() as u32;
                self.program.data.extend_from_slice(&bytes);
                self.program.globals.push(GlobalEntry::Data {
                    name: g.name.clone(),
                    offset,
                });
            }
            None => {
                let offset = self.program.bss_size.div_ceil(align) * align;
                self.program.bss_size = offset + size;
                self.program.globals.push(GlobalEntry::Bss {
                    name: g.name.clone(),
                    offset,
                });
            }
        }
        self.globals.insert(g.name.clone(), (index, g.ty.clone()));
        Ok(())
    }

    /// Encode a global initializer into bytes (with internal padding).
    fn init_bytes(&self, ty: &Type, init: &Init, pos: Pos, out: &mut Vec<u8>) -> Result<(), Error> {
        match (ty, init) {
            (Type::Array(elem, n), Init::List(items)) => {
                if items.len() as u32 > *n {
                    return Err(Error::new(pos, "too many initializers"));
                }
                for item in items {
                    self.init_bytes(elem, item, pos, out)?;
                }
                let pad = (*n as usize - items.len()) * elem.size(self.types()) as usize;
                out.extend(std::iter::repeat_n(0u8, pad));
                Ok(())
            }
            (Type::Array(elem, n), Init::Expr(e)) => match (&**elem, &e.kind) {
                (Type::Char, ExprKind::Str(bytes)) => {
                    if bytes.len() as u32 + 1 > *n {
                        return Err(Error::new(pos, "string longer than array"));
                    }
                    out.extend_from_slice(bytes);
                    out.extend(std::iter::repeat_n(0u8, *n as usize - bytes.len()));
                    Ok(())
                }
                _ => Err(Error::new(pos, "array initializer must be a list")),
            },
            (Type::Struct(id), Init::List(items)) => {
                let def = &self.types().structs[*id];
                if items.len() > def.fields.len() {
                    return Err(Error::new(pos, "too many initializers"));
                }
                let base = out.len() as u32;
                for (field, item) in def.fields.iter().zip(items) {
                    while (out.len() as u32 - base) < field.offset {
                        out.push(0);
                    }
                    self.init_bytes(&field.ty, item, pos, out)?;
                }
                while (out.len() as u32 - base) < def.size {
                    out.push(0);
                }
                Ok(())
            }
            (scalar, Init::Expr(e)) => {
                match scalar {
                    Type::Char => {
                        let v = eval_const_int(e, self.types())
                            .ok_or_else(|| Error::new(pos, "initializer must be constant"))?;
                        out.push(v as u8);
                    }
                    Type::Short => {
                        let v = eval_const_int(e, self.types())
                            .ok_or_else(|| Error::new(pos, "initializer must be constant"))?;
                        out.extend_from_slice(&(v as u16).to_le_bytes());
                    }
                    Type::Int | Type::Uint => {
                        let v = eval_const_int(e, self.types())
                            .ok_or_else(|| Error::new(pos, "initializer must be constant"))?;
                        out.extend_from_slice(&(v as u32).to_le_bytes());
                    }
                    Type::Float => {
                        let v = eval_const_double(e, self.types())
                            .ok_or_else(|| Error::new(pos, "initializer must be constant"))?;
                        out.extend_from_slice(&(v as f32).to_bits().to_le_bytes());
                    }
                    Type::Double => {
                        let v = eval_const_double(e, self.types())
                            .ok_or_else(|| Error::new(pos, "initializer must be constant"))?;
                        out.extend_from_slice(&v.to_bits().to_le_bytes());
                    }
                    _ => return Err(Error::new(
                        pos,
                        "unsupported global initializer (pointer initializers are not supported)",
                    )),
                }
                Ok(())
            }
            _ => Err(Error::new(pos, "initializer shape does not match type")),
        }
    }

    fn native_index(&mut self, name: &str) -> u32 {
        if let Some(&idx) = self.natives.get(name) {
            return idx;
        }
        let idx = self.program.globals.len() as u32;
        self.program.globals.push(GlobalEntry::Native {
            name: name.to_string(),
        });
        self.natives.insert(name.to_string(), idx);
        idx
    }

    fn func_addr_index(&mut self, name: &str) -> u32 {
        if let Some(&idx) = self.func_addrs.get(name) {
            return idx;
        }
        let proc_index = self.funcs[name].0;
        // Taking a procedure's address forces a trampoline (§3).
        self.program.procs[proc_index as usize].needs_trampoline = true;
        let idx = self.program.globals.len() as u32;
        self.program.globals.push(GlobalEntry::Proc { proc_index });
        self.func_addrs.insert(name.to_string(), idx);
        idx
    }

    fn string_index(&mut self, bytes: &[u8]) -> u32 {
        if let Some(&idx) = self.str_pool.get(bytes) {
            return idx;
        }
        let offset = self.program.data.len() as u32;
        self.program.data.extend_from_slice(bytes);
        self.program.data.push(0);
        let idx = self.program.globals.len() as u32;
        self.program.globals.push(GlobalEntry::Data {
            name: format!("$str{}", self.str_pool.len()),
            offset,
        });
        self.str_pool.insert(bytes.to_vec(), idx);
        idx
    }

    fn double_index(&mut self, value: f64) -> u32 {
        let bits = value.to_bits();
        if let Some(&idx) = self.dbl_pool.get(&bits) {
            return idx;
        }
        while !self.program.data.len().is_multiple_of(8) {
            self.program.data.push(0);
        }
        let offset = self.program.data.len() as u32;
        self.program.data.extend_from_slice(&bits.to_le_bytes());
        let idx = self.program.globals.len() as u32;
        self.program.globals.push(GlobalEntry::Data {
            name: format!("$dbl{}", self.dbl_pool.len()),
            offset,
        });
        self.dbl_pool.insert(bits, idx);
        idx
    }

    fn gen_function(&mut self, f: &FuncDef) -> Result<(), Error> {
        let (code, labels, frame_size, arg_size) = {
            let mut fcg = FnCg::new(self, f);
            fcg.gen_body(f)?;
            (fcg.code, fcg.labels, fcg.frame_size, fcg.arg_size)
        };
        let proc_idx = self.funcs[&f.name].0 as usize;
        let proc = &mut self.program.procs[proc_idx];
        proc.frame_size = frame_size;
        proc.arg_size = arg_size;
        proc.code = code;
        proc.labels = labels;
        Ok(())
    }
}

/// Per-function code generator.
struct FnCg<'a, 'u> {
    cg: &'a mut Cg<'u>,
    code: Vec<u8>,
    labels: Vec<u32>,
    scopes: Vec<HashMap<String, Sym>>,
    frame_size: u32,
    arg_size: u32,
    /// Free temporary slots: (offset, is 8 bytes wide).
    free_temps: Vec<(u32, bool)>,
    break_labels: Vec<u16>,
    continue_labels: Vec<u16>,
    ret: Type,
    fname: String,
}

impl<'a, 'u> FnCg<'a, 'u> {
    fn new(cg: &'a mut Cg<'u>, f: &FuncDef) -> FnCg<'a, 'u> {
        FnCg {
            cg,
            code: Vec::new(),
            labels: Vec::new(),
            scopes: vec![HashMap::new()],
            frame_size: 0,
            arg_size: 0,
            free_temps: Vec::new(),
            break_labels: Vec::new(),
            continue_labels: Vec::new(),
            ret: f.ret.clone(),
            fname: f.name.clone(),
        }
    }

    fn types(&self) -> &TypeTable {
        &self.cg.unit.types
    }

    // ---- emission helpers --------------------------------------------

    fn emit(&mut self, op: Opcode) {
        debug_assert_eq!(op.operand_bytes(), 0);
        self.code.push(op as u8);
    }

    fn emit16(&mut self, op: Opcode, v: u16) {
        debug_assert_eq!(op.operand_bytes(), 2);
        self.code.push(op as u8);
        self.code.extend_from_slice(&v.to_le_bytes());
    }

    /// Push an integer constant with the smallest literal operator.
    fn emit_lit(&mut self, v: u32) {
        let bytes = v.to_le_bytes();
        if v < 1 << 8 {
            self.code.push(Opcode::LIT1 as u8);
            self.code.push(bytes[0]);
        } else if v < 1 << 16 {
            self.code.push(Opcode::LIT2 as u8);
            self.code.extend_from_slice(&bytes[..2]);
        } else if v < 1 << 24 {
            self.code.push(Opcode::LIT3 as u8);
            self.code.extend_from_slice(&bytes[..3]);
        } else {
            self.code.push(Opcode::LIT4 as u8);
            self.code.extend_from_slice(&bytes);
        }
    }

    fn new_label(&mut self) -> u16 {
        self.labels.push(u32::MAX);
        (self.labels.len() - 1) as u16
    }

    fn place_label(&mut self, label: u16) {
        debug_assert_eq!(self.labels[label as usize], u32::MAX, "label placed twice");
        self.labels[label as usize] = self.code.len() as u32;
        self.code.push(Opcode::LABELV as u8);
    }

    fn err(&self, pos: Pos, msg: impl Into<String>) -> Error {
        Error::new(pos, format!("in {}: {}", self.fname, msg.into()))
    }

    // ---- frame layout --------------------------------------------------

    fn alloc_local(&mut self, ty: &Type) -> u32 {
        let align = ty.align(self.types()).max(1);
        let size = ty.size(self.types()).max(1);
        let offset = self.frame_size.div_ceil(align) * align;
        self.frame_size = offset + size;
        offset
    }

    fn temp(&mut self, wide: bool) -> u32 {
        if let Some(i) = self.free_temps.iter().position(|&(_, w)| w == wide) {
            return self.free_temps.swap_remove(i).0;
        }
        let ty = if wide { Type::Double } else { Type::Uint };
        self.alloc_local(&ty)
    }

    fn untemp(&mut self, offset: u32, wide: bool) {
        self.free_temps.push((offset, wide));
    }

    /// Store the top of stack into a temp; returns (offset, wide).
    fn spill(&mut self, ty: &Type) -> (u32, bool) {
        let wide = *ty == Type::Double;
        let t = self.temp(wide);
        self.emit16(Opcode::ADDRLP, t as u16);
        self.emit(match ty {
            Type::Double => Opcode::ASGND,
            Type::Float => Opcode::ASGNF,
            _ => Opcode::ASGNU,
        });
        (t, wide)
    }

    /// Load a previously spilled temp back.
    fn unspill(&mut self, offset: u32, ty: &Type) {
        self.emit16(Opcode::ADDRLP, offset as u16);
        self.emit(match ty {
            Type::Double => Opcode::INDIRD,
            Type::Float => Opcode::INDIRF,
            _ => Opcode::INDIRU,
        });
    }

    /// If `e` is a barrier expression (see [`has_barrier`]), evaluate it
    /// now — while the evaluation stack is empty — into a temporary.
    fn hoist(&mut self, e: &Expr) -> Result<Option<(u32, Type, bool)>, Error> {
        if !has_barrier(e) {
            return Ok(None);
        }
        let t = self.gen_value(e)?;
        if t == Type::Void {
            return Err(self.err(e.pos, "void value used in an expression"));
        }
        let (off, wide) = self.spill(&t);
        Ok(Some((off, t, wide)))
    }

    /// Push a hoisted value back (or generate the expression if it was
    /// not hoisted); returns its computation type.
    fn unhoist(&mut self, hoisted: Option<(u32, Type, bool)>, e: &Expr) -> Result<Type, Error> {
        match hoisted {
            Some((off, t, wide)) => {
                self.unspill(off, &t);
                self.untemp(off, wide);
                Ok(t)
            }
            None => self.gen_value(e),
        }
    }

    fn lookup(&self, name: &str) -> Option<Sym> {
        for scope in self.scopes.iter().rev() {
            if let Some(sym) = scope.get(name) {
                return Some(sym.clone());
            }
        }
        self.cg.globals.get(name).map(|(index, ty)| Sym::Global {
            index: *index,
            ty: ty.clone(),
        })
    }

    // ---- conversions ----------------------------------------------------

    /// Convert the value atop the stack from computation type `from` to
    /// (the computation form of) `to`; returns the resulting type.
    fn convert(&mut self, from: &Type, to: &Type, pos: Pos) -> Result<Type, Error> {
        use Opcode::*;
        let from = from.decay();
        let to_comp = match to {
            Type::Char | Type::Short => Type::Int,
            other => other.decay(),
        };
        let from_class = |t: &Type| match t {
            Type::Float => 2,
            Type::Double => 3,
            t if t.is_integer() || t.is_pointer() => 1,
            _ => 0,
        };
        match (from_class(&from), from_class(&to_comp)) {
            (1, 1) => {}
            (1, 2) => self.emit(CVIF),
            (1, 3) => self.emit(CVID),
            (2, 1) => self.emit(CVFI),
            (3, 1) => self.emit(CVDI),
            (2, 3) => self.emit(CVFD),
            (3, 2) => self.emit(CVDF),
            (2, 2) | (3, 3) => {}
            _ => {
                return Err(self.err(pos, format!("cannot convert {from} to {to}")));
            }
        }
        // Canonicalize narrow integer targets (casts like `(char)x`).
        match to {
            Type::Char => self.emit(CVI1I4),
            Type::Short => self.emit(CVI2I4),
            _ => {}
        }
        Ok(to_comp)
    }

    /// Emit the load for an lvalue of type `ty` whose address is on the
    /// stack; returns the computation type.
    fn emit_load(&mut self, ty: &Type, pos: Pos) -> Result<Type, Error> {
        use Opcode::*;
        Ok(match ty {
            Type::Char => {
                self.emit(INDIRC);
                self.emit(CVI1I4);
                Type::Int
            }
            Type::Short => {
                self.emit(INDIRS);
                self.emit(CVI2I4);
                Type::Int
            }
            Type::Int => {
                self.emit(INDIRU);
                Type::Int
            }
            Type::Uint => {
                self.emit(INDIRU);
                Type::Uint
            }
            Type::Float => {
                self.emit(INDIRF);
                Type::Float
            }
            Type::Double => {
                self.emit(INDIRD);
                Type::Double
            }
            Type::Ptr(_) => {
                self.emit(INDIRU);
                ty.clone()
            }
            // Arrays and structs "load" as their address.
            Type::Array(elem, _) => Type::Ptr(elem.clone()),
            Type::Struct(_) => ty.clone(),
            Type::Void | Type::Func(_) => {
                return Err(self.err(pos, format!("cannot load a value of type {ty}")))
            }
        })
    }

    /// The store operator for an object type.
    fn store_op(&self, ty: &Type, pos: Pos) -> Result<Opcode, Error> {
        use Opcode::*;
        Ok(match ty {
            Type::Char => ASGNC,
            Type::Short => ASGNS,
            Type::Int | Type::Uint | Type::Ptr(_) => ASGNU,
            Type::Float => ASGNF,
            Type::Double => ASGND,
            _ => return Err(self.err(pos, format!("cannot store a value of type {ty}"))),
        })
    }

    // ---- function body -------------------------------------------------

    fn gen_body(&mut self, f: &FuncDef) -> Result<(), Error> {
        let mut offset = 0u32;
        for (name, ty) in &f.params {
            let slot = param_slot(ty, self.types());
            self.scopes[0].insert(
                name.clone(),
                Sym::Param {
                    offset,
                    ty: ty.clone(),
                },
            );
            offset += slot;
        }
        self.arg_size = offset;
        self.scopes.push(HashMap::new());
        for stmt in &f.body {
            self.gen_stmt(stmt)?;
        }
        // Implicit return at the end of the body.
        match self.ret.clone() {
            Type::Void => self.emit(Opcode::RETV),
            Type::Double => {
                let idx = self.cg.double_index(0.0);
                self.emit16(Opcode::ADDRGP, idx as u16);
                self.emit(Opcode::INDIRD);
                self.emit(Opcode::RETD);
            }
            Type::Float => {
                self.emit_lit4_exact(0);
                self.emit(Opcode::RETF);
            }
            _ => {
                self.emit_lit(0);
                self.emit(Opcode::RETU);
            }
        }
        for (i, &off) in self.labels.iter().enumerate() {
            assert_ne!(off, u32::MAX, "label {i} never placed");
        }
        Ok(())
    }

    // ---- statements ------------------------------------------------------

    fn gen_stmt(&mut self, s: &Stmt) -> Result<(), Error> {
        match s {
            Stmt::Empty => Ok(()),
            Stmt::Expr(e) => self.gen_expr_stmt(e),
            Stmt::Block(stmts) => {
                self.scopes.push(HashMap::new());
                for s in stmts {
                    self.gen_stmt(s)?;
                }
                self.scopes.pop();
                Ok(())
            }
            Stmt::Decl(decls) => {
                for d in decls {
                    self.gen_local_decl(d)?;
                }
                Ok(())
            }
            Stmt::If(cond, then, els) => {
                let l_end = self.new_label();
                let l_false = if els.is_some() {
                    self.new_label()
                } else {
                    l_end
                };
                self.gen_branch_if_false(cond, l_false)?;
                self.gen_stmt(then)?;
                if let Some(els) = els {
                    self.emit16(Opcode::JUMPV, l_end);
                    self.place_label(l_false);
                    self.gen_stmt(els)?;
                }
                self.place_label(l_end);
                Ok(())
            }
            Stmt::While(cond, body) => {
                let l_cond = self.new_label();
                let l_end = self.new_label();
                self.place_label(l_cond);
                self.gen_branch_if_false(cond, l_end)?;
                self.break_labels.push(l_end);
                self.continue_labels.push(l_cond);
                self.gen_stmt(body)?;
                self.break_labels.pop();
                self.continue_labels.pop();
                self.emit16(Opcode::JUMPV, l_cond);
                self.place_label(l_end);
                Ok(())
            }
            Stmt::DoWhile(body, cond) => {
                let l_top = self.new_label();
                let l_cont = self.new_label();
                let l_end = self.new_label();
                self.place_label(l_top);
                self.break_labels.push(l_end);
                self.continue_labels.push(l_cont);
                self.gen_stmt(body)?;
                self.break_labels.pop();
                self.continue_labels.pop();
                self.place_label(l_cont);
                self.gen_flag(cond)?;
                self.emit16(Opcode::BrTrue, l_top);
                self.place_label(l_end);
                Ok(())
            }
            Stmt::For(init, cond, step, body) => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.gen_stmt(init)?;
                }
                let l_cond = self.new_label();
                let l_step = self.new_label();
                let l_end = self.new_label();
                self.place_label(l_cond);
                if let Some(cond) = cond {
                    self.gen_branch_if_false(cond, l_end)?;
                }
                self.break_labels.push(l_end);
                self.continue_labels.push(l_step);
                self.gen_stmt(body)?;
                self.break_labels.pop();
                self.continue_labels.pop();
                self.place_label(l_step);
                if let Some(step) = step {
                    self.gen_expr_stmt(step)?;
                }
                self.emit16(Opcode::JUMPV, l_cond);
                self.place_label(l_end);
                self.scopes.pop();
                Ok(())
            }
            Stmt::Switch(scrutinee, arms, pos) => self.gen_switch(scrutinee, arms, *pos),
            Stmt::Break(pos) => {
                let l = *self
                    .break_labels
                    .last()
                    .ok_or_else(|| self.err(*pos, "break outside loop or switch"))?;
                self.emit16(Opcode::JUMPV, l);
                Ok(())
            }
            Stmt::Continue(pos) => {
                let l = *self
                    .continue_labels
                    .last()
                    .ok_or_else(|| self.err(*pos, "continue outside loop"))?;
                self.emit16(Opcode::JUMPV, l);
                Ok(())
            }
            Stmt::Return(e, pos) => {
                match (e, self.ret.clone()) {
                    (None, Type::Void) => self.emit(Opcode::RETV),
                    (None, _) => return Err(self.err(*pos, "return needs a value")),
                    (Some(_), Type::Void) => {
                        return Err(self.err(*pos, "void function returns a value"))
                    }
                    (Some(e), ret) => {
                        let vt = self.gen_value(e)?;
                        self.convert(&vt, &ret, *pos)?;
                        self.emit(match ret {
                            Type::Double => Opcode::RETD,
                            Type::Float => Opcode::RETF,
                            _ => Opcode::RETU,
                        });
                    }
                }
                Ok(())
            }
        }
    }

    fn gen_local_decl(&mut self, d: &LocalDecl) -> Result<(), Error> {
        if matches!(d.ty, Type::Void | Type::Func(_)) {
            return Err(self.err(d.pos, "local has no object type"));
        }
        let offset = self.alloc_local(&d.ty);
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(
                d.name.clone(),
                Sym::Local {
                    offset,
                    ty: d.ty.clone(),
                },
            );
        if let Some(init) = &d.init {
            match &d.ty {
                Type::Array(elem, n) if **elem == Type::Char => {
                    if let ExprKind::Str(bytes) = &init.kind {
                        // char s[] = "..." copies from the string pool.
                        let idx = self.cg.string_index(bytes);
                        self.emit16(Opcode::ADDRGP, idx as u16);
                        self.emit16(Opcode::ADDRLP, offset as u16);
                        self.emit16(Opcode::ASGNB, *n as u16);
                        return Ok(());
                    }
                    return Err(self.err(d.pos, "unsupported array initializer"));
                }
                Type::Array(_, _) => {
                    return Err(self.err(d.pos, "local array initializers are not supported"))
                }
                Type::Struct(_) => {
                    // struct a = b;
                    let vt = self.gen_value(init)?;
                    if vt != d.ty {
                        return Err(self.err(d.pos, "struct initializer type mismatch"));
                    }
                    self.emit16(Opcode::ADDRLP, offset as u16);
                    let size = d.ty.size(self.types());
                    self.emit16(Opcode::ASGNB, size as u16);
                    return Ok(());
                }
                _ => {}
            }
            let vt = self.gen_value(init)?;
            self.convert(&vt, &d.ty, d.pos)?;
            self.emit16(Opcode::ADDRLP, offset as u16);
            let op = self.store_op(&d.ty, d.pos)?;
            self.emit(op);
        }
        Ok(())
    }

    fn gen_switch(&mut self, scrutinee: &Expr, arms: &[SwitchArm], pos: Pos) -> Result<(), Error> {
        let vt = self.gen_value(scrutinee)?;
        if !vt.is_integer() {
            return Err(self.err(pos, "switch needs an integer scrutinee"));
        }
        let (tmp, wide) = self.spill(&Type::Int);
        let l_end = self.new_label();
        let default_label = self.new_label();
        let mut case_labels: Vec<(i32, u16)> = Vec::new();
        let mut arm_labels: Vec<u16> = Vec::new();
        let mut has_default = false;
        for arm in arms {
            let l = self.new_label();
            arm_labels.push(l);
            match arm.value {
                Some(v) => case_labels.push((v, l)),
                None => has_default = true,
            }
        }
        case_labels.sort_by_key(|&(v, _)| v);
        // The decision tree ends by jumping to the default arm (or past
        // the switch).
        let miss = if has_default { default_label } else { l_end };
        self.gen_switch_tree(tmp, &case_labels, miss)?;
        self.untemp(tmp, wide);

        self.break_labels.push(l_end);
        for (arm, &l) in arms.iter().zip(&arm_labels) {
            if arm.value.is_none() {
                self.place_label(default_label);
            }
            self.place_label(l);
            for s in &arm.body {
                self.gen_stmt(s)?;
            }
            // Fallthrough to the next arm is implicit.
        }
        self.break_labels.pop();
        if !has_default {
            // default_label was never used as a target.
            self.labels[default_label as usize] = self.code.len() as u32;
            self.code.push(Opcode::LABELV as u8);
        }
        self.place_label(l_end);
        Ok(())
    }

    /// Emit a binary decision tree over sorted case values (the lcc
    /// switch-to-decision-tree option of §6).
    fn gen_switch_tree(&mut self, tmp: u32, cases: &[(i32, u16)], miss: u16) -> Result<(), Error> {
        if cases.len() <= 4 {
            for &(v, l) in cases {
                self.emit16(Opcode::ADDRLP, tmp as u16);
                self.emit(Opcode::INDIRU);
                self.emit_lit(v as u32);
                self.emit(Opcode::EQU);
                self.emit16(Opcode::BrTrue, l);
            }
            self.emit16(Opcode::JUMPV, miss);
            return Ok(());
        }
        let mid = cases.len() / 2;
        let l_right = self.new_label();
        // if (x >= cases[mid].0) goto right-half
        self.emit16(Opcode::ADDRLP, tmp as u16);
        self.emit(Opcode::INDIRU);
        self.emit_lit(cases[mid].0 as u32);
        self.emit(Opcode::GEI);
        self.emit16(Opcode::BrTrue, l_right);
        self.gen_switch_tree(tmp, &cases[..mid], miss)?;
        self.place_label(l_right);
        self.gen_switch_tree(tmp, &cases[mid..], miss)
    }

    /// Generate a condition and branch to `target` when it is FALSE.
    fn gen_branch_if_false(&mut self, cond: &Expr, target: u16) -> Result<(), Error> {
        self.gen_flag(cond)?;
        self.emit_lit(0);
        self.emit(Opcode::EQU);
        self.emit16(Opcode::BrTrue, target);
        Ok(())
    }

    /// Generate a scalar "flag": an integer that is non-zero iff the
    /// condition holds (what `BrTrue` consumes).
    fn gen_flag(&mut self, e: &Expr) -> Result<(), Error> {
        let vt = self.gen_value(e)?;
        match vt {
            Type::Float => {
                self.emit_lit4_exact(0); // 0.0f bit pattern
                self.emit(Opcode::NEF);
            }
            Type::Double => {
                let idx = self.cg.double_index(0.0);
                self.emit16(Opcode::ADDRGP, idx as u16);
                self.emit(Opcode::INDIRD);
                self.emit(Opcode::NED);
            }
            t if t.is_integer() || t.is_pointer() => {}
            t => return Err(self.err(e.pos, format!("{t} is not a condition"))),
        }
        Ok(())
    }

    /// Expression statement: evaluate for side effects only.
    fn gen_expr_stmt(&mut self, e: &Expr) -> Result<(), Error> {
        match &e.kind {
            ExprKind::Assign(op, lhs, rhs) => {
                self.gen_assign(*op, lhs, rhs, false, e.pos)?;
                Ok(())
            }
            ExprKind::PreIncDec(inc, target) | ExprKind::PostIncDec(inc, target) => {
                self.gen_incdec(*inc, target, false, e.pos)?;
                Ok(())
            }
            ExprKind::Paren(inner) => self.gen_expr_stmt(inner),
            _ => {
                let vt = self.gen_value(e)?;
                match vt {
                    Type::Void => {}
                    Type::Double => self.emit(Opcode::POPD),
                    Type::Float => self.emit(Opcode::POPF),
                    _ => self.emit(Opcode::POPU),
                }
                Ok(())
            }
        }
    }

    // ---- lvalues ---------------------------------------------------------

    /// Push the address of an lvalue; returns the *object* type.
    fn gen_addr(&mut self, e: &Expr) -> Result<Type, Error> {
        match &e.kind {
            ExprKind::Ident(name) => match self.lookup(name) {
                Some(Sym::Local { offset, ty }) => {
                    self.emit16(Opcode::ADDRLP, offset as u16);
                    Ok(ty)
                }
                Some(Sym::Param { offset, ty }) => {
                    self.emit16(Opcode::ADDRFP, offset as u16);
                    Ok(ty)
                }
                Some(Sym::Global { index, ty }) => {
                    self.emit16(Opcode::ADDRGP, index as u16);
                    Ok(ty)
                }
                None => Err(self.err(e.pos, format!("undefined variable {name}"))),
            },
            ExprKind::Unary(UnOp::Deref, inner) => {
                let vt = self.gen_value(inner)?;
                match vt.pointee() {
                    Some(p) => Ok(p.clone()),
                    None => Err(self.err(e.pos, format!("cannot dereference {vt}"))),
                }
            }
            ExprKind::Index(base, index) => {
                let hi = self.hoist(index)?;
                let bt = self.gen_value(base)?;
                let elem = bt
                    .pointee()
                    .cloned()
                    .ok_or_else(|| self.err(e.pos, format!("cannot index {bt}")))?;
                let it = self.unhoist(hi, index)?;
                if !it.is_integer() {
                    return Err(self.err(e.pos, "index must be an integer"));
                }
                let size = elem.size(self.types());
                if size != 1 {
                    self.emit_lit(size);
                    self.emit(Opcode::MULU);
                }
                self.emit(Opcode::ADDU);
                Ok(elem)
            }
            ExprKind::Member(base, field) => {
                let bt = self.gen_addr(base)?;
                let Type::Struct(id) = bt else {
                    return Err(self.err(e.pos, format!("{bt} has no members")));
                };
                let f = self.types().structs[id]
                    .field(field)
                    .ok_or_else(|| self.err(e.pos, format!("no field {field}")))?
                    .clone();
                if f.offset != 0 {
                    self.emit_lit(f.offset);
                    self.emit(Opcode::ADDU);
                }
                Ok(f.ty)
            }
            ExprKind::Arrow(base, field) => {
                let bt = self.gen_value(base)?;
                let Some(Type::Struct(id)) = bt.pointee().cloned() else {
                    return Err(self.err(e.pos, format!("{bt} is not a struct pointer")));
                };
                let f = self.types().structs[id]
                    .field(field)
                    .ok_or_else(|| self.err(e.pos, format!("no field {field}")))?
                    .clone();
                if f.offset != 0 {
                    self.emit_lit(f.offset);
                    self.emit(Opcode::ADDU);
                }
                Ok(f.ty)
            }
            ExprKind::Str(bytes) => {
                let idx = self.cg.string_index(bytes);
                self.emit16(Opcode::ADDRGP, idx as u16);
                Ok(Type::Array(Box::new(Type::Char), bytes.len() as u32 + 1))
            }
            ExprKind::Paren(inner) => self.gen_addr(inner),
            _ => Err(self.err(e.pos, "expression is not an lvalue")),
        }
    }

    // ---- values ------------------------------------------------------------

    /// Push the value of an expression; returns its computation type
    /// (`Void` when nothing was pushed).
    fn gen_value(&mut self, e: &Expr) -> Result<VTypeR, Error> {
        match &e.kind {
            ExprKind::Int(v, unsigned) => {
                self.emit_lit(*v);
                Ok(if *unsigned { Type::Uint } else { Type::Int })
            }
            ExprKind::Char(c) => {
                self.emit_lit(u32::from(*c));
                Ok(Type::Int)
            }
            ExprKind::Float(v) => {
                self.emit_lit4_exact(v.to_bits());
                Ok(Type::Float)
            }
            ExprKind::Double(v) => {
                let idx = self.cg.double_index(*v);
                self.emit16(Opcode::ADDRGP, idx as u16);
                self.emit(Opcode::INDIRD);
                Ok(Type::Double)
            }
            ExprKind::Str(_) => {
                let ty = self.gen_addr(e)?;
                Ok(ty.decay())
            }
            ExprKind::Ident(name) => {
                if self.lookup(name).is_some() {
                    let ty = self.gen_addr(e)?;
                    return self.emit_load(&ty, e.pos);
                }
                // A bare function name decays to its (trampoline) address.
                if self.cg.funcs.contains_key(name) {
                    let sig = self.cg.funcs[name].1.clone();
                    let idx = self.cg.func_addr_index(name);
                    self.emit16(Opcode::ADDRGP, idx as u16);
                    return Ok(Type::Ptr(Box::new(Type::Func(Box::new(sig)))));
                }
                if let Some(sig) = native_sig(name) {
                    let idx = self.cg.native_index(name);
                    self.emit16(Opcode::ADDRGP, idx as u16);
                    return Ok(Type::Ptr(Box::new(Type::Func(Box::new(sig)))));
                }
                Err(self.err(e.pos, format!("undefined name {name}")))
            }
            ExprKind::Paren(inner) => self.gen_value(inner),
            ExprKind::Sizeof(ty) => {
                self.emit_lit(ty.size(self.types()));
                Ok(Type::Uint)
            }
            ExprKind::Cast(to, inner) => {
                if *to == Type::Void {
                    self.gen_expr_stmt(inner)?;
                    return Ok(Type::Void);
                }
                let vt = self.gen_value(inner)?;
                self.convert(&vt, to, e.pos)
            }
            ExprKind::Unary(UnOp::Addr, inner) => {
                if let ExprKind::Ident(name) = &inner.kind {
                    if self.lookup(name).is_none() && self.cg.funcs.contains_key(name) {
                        // &function
                        return self.gen_value(inner);
                    }
                }
                let ty = self.gen_addr(inner)?;
                Ok(ty.decay_addr())
            }
            ExprKind::Unary(UnOp::Deref, _)
            | ExprKind::Index(_, _)
            | ExprKind::Member(_, _)
            | ExprKind::Arrow(_, _) => {
                let ty = self.gen_addr(e)?;
                self.emit_load(&ty, e.pos)
            }
            ExprKind::Unary(UnOp::Neg, inner) => {
                let vt = self.gen_value(inner)?;
                match &vt {
                    Type::Float => self.emit(Opcode::NEGF),
                    Type::Double => self.emit(Opcode::NEGD),
                    t if t.is_integer() => self.emit(Opcode::NEGI),
                    t => return Err(self.err(e.pos, format!("cannot negate {t}"))),
                }
                Ok(vt)
            }
            ExprKind::Unary(UnOp::Not, inner) => {
                self.gen_flag(inner)?;
                self.emit_lit(0);
                self.emit(Opcode::EQU);
                Ok(Type::Int)
            }
            ExprKind::Unary(UnOp::BitNot, inner) => {
                let vt = self.gen_value(inner)?;
                if !vt.is_integer() {
                    return Err(self.err(e.pos, format!("cannot complement {vt}")));
                }
                self.emit(Opcode::BCOMU);
                Ok(vt)
            }
            ExprKind::PreIncDec(inc, target) => self.gen_incdec(*inc, target, true, e.pos),
            ExprKind::PostIncDec(inc, target) => self.gen_postincdec(*inc, target, e.pos),
            ExprKind::Binary(op, a, b) => self.gen_binary(*op, a, b, e.pos),
            ExprKind::Logic(is_and, a, b) => self.gen_logic(*is_and, a, b),
            ExprKind::Assign(op, lhs, rhs) => self.gen_assign(*op, lhs, rhs, true, e.pos),
            ExprKind::Cond(c, t, f) => self.gen_cond_expr(c, t, f, e.pos),
            ExprKind::Call(callee, args) => self.gen_call(callee, args, e.pos),
        }
    }

    /// A genuine 4-byte literal. Float values always use `LIT4`, even
    /// when their bit pattern would fit a shorter literal: typed grammars
    /// (the A5 ablation) classify `LIT1..LIT3` as integer-only, and the
    /// uniform width also mirrors how lcc materializes float constants.
    fn emit_lit4_exact(&mut self, bits: u32) {
        self.code.push(Opcode::LIT4 as u8);
        self.code.extend_from_slice(&bits.to_le_bytes());
    }

    fn gen_binary(&mut self, op: BinOp, a: &Expr, b: &Expr, pos: Pos) -> Result<Type, Error> {
        use Opcode::*;
        let at = self.peek_type(a)?;
        let bt = self.peek_type(b)?;

        // Pointer arithmetic.
        if at.is_pointer() || bt.is_pointer() {
            return self.gen_pointer_binary(op, a, b, &at, &bt, pos);
        }
        if !at.is_arith() || !bt.is_arith() {
            return Err(self.err(pos, format!("cannot apply operator to {at} and {bt}")));
        }
        let common = usual_arith(&at.promote(), &bt.promote());
        let hb = self.hoist(b)?;
        let avt = self.gen_value(a)?;
        self.convert(&avt, &common, pos)?;
        let bvt = self.unhoist(hb, b)?;
        self.convert(&bvt, &common, pos)?;

        let is_cmp = op.is_comparison();
        let opcode = match (&common, op) {
            (Type::Double, BinOp::Add) => ADDD,
            (Type::Double, BinOp::Sub) => SUBD,
            (Type::Double, BinOp::Mul) => MULD,
            (Type::Double, BinOp::Div) => DIVD,
            (Type::Double, BinOp::Eq) => EQD,
            (Type::Double, BinOp::Ne) => NED,
            (Type::Double, BinOp::Lt) => LTD,
            (Type::Double, BinOp::Le) => LED,
            (Type::Double, BinOp::Gt) => GTD,
            (Type::Double, BinOp::Ge) => GED,
            (Type::Float, BinOp::Add) => ADDF,
            (Type::Float, BinOp::Sub) => SUBF,
            (Type::Float, BinOp::Mul) => MULF,
            (Type::Float, BinOp::Div) => DIVF,
            (Type::Float, BinOp::Eq) => EQF,
            (Type::Float, BinOp::Ne) => NEF,
            (Type::Float, BinOp::Lt) => LTF,
            (Type::Float, BinOp::Le) => LEF,
            (Type::Float, BinOp::Gt) => GTF,
            (Type::Float, BinOp::Ge) => GEF,
            (Type::Uint, BinOp::Add) => ADDU,
            (Type::Uint, BinOp::Sub) => SUBU,
            (Type::Uint, BinOp::Mul) => MULU,
            (Type::Uint, BinOp::Div) => DIVU,
            (Type::Uint, BinOp::Rem) => MODU,
            (Type::Uint, BinOp::Shl) => LSHU,
            (Type::Uint, BinOp::Shr) => RSHU,
            (Type::Uint, BinOp::Eq) => EQU,
            (Type::Uint, BinOp::Ne) => NEU,
            (Type::Uint, BinOp::Lt) => LTU,
            (Type::Uint, BinOp::Le) => LEU,
            (Type::Uint, BinOp::Gt) => GTU,
            (Type::Uint, BinOp::Ge) => GEU,
            (Type::Int, BinOp::Add) => ADDU, // sign-agnostic (Appendix 2)
            (Type::Int, BinOp::Sub) => SUBU,
            (Type::Int, BinOp::Mul) => MULI,
            (Type::Int, BinOp::Div) => DIVI,
            (Type::Int, BinOp::Rem) => MODI,
            (Type::Int, BinOp::Shl) => LSHI,
            (Type::Int, BinOp::Shr) => RSHI,
            (Type::Int, BinOp::Eq) => EQU,
            (Type::Int, BinOp::Ne) => NEU,
            (Type::Int, BinOp::Lt) => LTI,
            (Type::Int, BinOp::Le) => LEI,
            (Type::Int, BinOp::Gt) => GTI,
            (Type::Int, BinOp::Ge) => GEI,
            (Type::Int | Type::Uint, BinOp::And) => BANDU,
            (Type::Int | Type::Uint, BinOp::Or) => BORU,
            (Type::Int | Type::Uint, BinOp::Xor) => BXORU,
            (t, op) => return Err(self.err(pos, format!("operator {op:?} not defined on {t}"))),
        };
        self.emit(opcode);
        Ok(if is_cmp { Type::Int } else { common })
    }

    fn gen_pointer_binary(
        &mut self,
        op: BinOp,
        a: &Expr,
        b: &Expr,
        at: &Type,
        bt: &Type,
        pos: Pos,
    ) -> Result<Type, Error> {
        use Opcode::*;
        let scale = |t: &Type, s: &Self| -> Result<u32, Error> {
            t.pointee()
                .map(|p| p.size(s.types()))
                .ok_or_else(|| s.err(pos, "pointer arithmetic on non-pointer"))
        };
        let hb = self.hoist(b)?;
        match op {
            BinOp::Add => {
                if at.is_pointer() && bt.is_integer() {
                    let sz = scale(at, self)?;
                    self.gen_value(a)?;
                    self.unhoist(hb, b)?;
                    if sz != 1 {
                        self.emit_lit(sz);
                        self.emit(MULU);
                    }
                    self.emit(ADDU);
                    Ok(at.decay())
                } else if at.is_integer() && bt.is_pointer() {
                    let sz = scale(bt, self)?;
                    self.gen_value(a)?;
                    if sz != 1 {
                        self.emit_lit(sz);
                        self.emit(MULU);
                    }
                    self.unhoist(hb, b)?;
                    self.emit(ADDU);
                    Ok(bt.decay())
                } else {
                    Err(self.err(pos, "cannot add two pointers"))
                }
            }
            BinOp::Sub => {
                if at.is_pointer() && bt.is_integer() {
                    let sz = scale(at, self)?;
                    self.gen_value(a)?;
                    self.unhoist(hb, b)?;
                    if sz != 1 {
                        self.emit_lit(sz);
                        self.emit(MULU);
                    }
                    self.emit(SUBU);
                    Ok(at.decay())
                } else if at.is_pointer() && bt.is_pointer() {
                    let sz = scale(at, self)?;
                    self.gen_value(a)?;
                    self.unhoist(hb, b)?;
                    self.emit(SUBU);
                    if sz != 1 {
                        self.emit_lit(sz);
                        self.emit(DIVU);
                    }
                    Ok(Type::Int)
                } else {
                    Err(self.err(pos, "cannot subtract a pointer from an integer"))
                }
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                self.gen_value(a)?;
                self.unhoist(hb, b)?;
                self.emit(match op {
                    BinOp::Eq => EQU,
                    BinOp::Ne => NEU,
                    BinOp::Lt => LTU,
                    BinOp::Le => LEU,
                    BinOp::Gt => GTU,
                    _ => GEU,
                });
                Ok(Type::Int)
            }
            _ => Err(self.err(pos, "operator not defined on pointers")),
        }
    }

    /// Short-circuit `&&` / `||` materialized through a temporary, so the
    /// evaluation stack is empty at the internal labels.
    fn gen_logic(&mut self, is_and: bool, a: &Expr, b: &Expr) -> Result<Type, Error> {
        let t = self.temp(false);
        let l_decided = self.new_label();
        let l_end = self.new_label();
        self.gen_flag(a)?;
        if is_and {
            // a false -> result 0 without evaluating b.
            self.emit16(Opcode::BrTrue, l_decided);
            self.emit_lit(0);
        } else {
            // a true -> result 1 without evaluating b.
            self.emit_lit(0);
            self.emit(Opcode::EQU);
            self.emit16(Opcode::BrTrue, l_decided);
            self.emit_lit(1);
        }
        self.emit16(Opcode::ADDRLP, t as u16);
        self.emit(Opcode::ASGNU);
        self.emit16(Opcode::JUMPV, l_end);
        self.place_label(l_decided);
        // Normalize b to exactly 0/1.
        self.gen_flag(b)?;
        self.emit_lit(0);
        self.emit(Opcode::NEU);
        self.emit16(Opcode::ADDRLP, t as u16);
        self.emit(Opcode::ASGNU);
        self.place_label(l_end);
        self.emit16(Opcode::ADDRLP, t as u16);
        self.emit(Opcode::INDIRU);
        self.untemp(t, false);
        Ok(Type::Int)
    }

    fn gen_cond_expr(&mut self, c: &Expr, t: &Expr, f: &Expr, pos: Pos) -> Result<Type, Error> {
        let tt = self.peek_type(t)?;
        let ft = self.peek_type(f)?;
        let common = if tt.is_arith() && ft.is_arith() {
            usual_arith(&tt.promote(), &ft.promote())
        } else if tt.is_pointer() && (ft.is_pointer() || ft.is_integer()) {
            tt.decay()
        } else if ft.is_pointer() && tt.is_integer() {
            ft.decay()
        } else if tt == Type::Void && ft == Type::Void {
            // Both sides for effect.
            let l_false = self.new_label();
            let l_end = self.new_label();
            self.gen_branch_if_false(c, l_false)?;
            self.gen_expr_stmt(t)?;
            self.emit16(Opcode::JUMPV, l_end);
            self.place_label(l_false);
            self.gen_expr_stmt(f)?;
            self.place_label(l_end);
            return Ok(Type::Void);
        } else {
            return Err(self.err(pos, format!("incompatible ?: arms: {tt} vs {ft}")));
        };
        let wide = common == Type::Double;
        let tmp = self.temp(wide);
        let l_false = self.new_label();
        let l_end = self.new_label();
        self.gen_branch_if_false(c, l_false)?;
        let vt = self.gen_value(t)?;
        self.convert(&vt, &common, pos)?;
        self.emit16(Opcode::ADDRLP, tmp as u16);
        let store = self.store_op(&common, pos)?;
        self.emit(store);
        self.emit16(Opcode::JUMPV, l_end);
        self.place_label(l_false);
        let vf = self.gen_value(f)?;
        self.convert(&vf, &common, pos)?;
        self.emit16(Opcode::ADDRLP, tmp as u16);
        self.emit(store);
        self.place_label(l_end);
        self.unspill(tmp, &common);
        self.untemp(tmp, wide);
        Ok(common)
    }

    fn gen_assign(
        &mut self,
        op: Option<BinOp>,
        lhs: &Expr,
        rhs: &Expr,
        want_value: bool,
        pos: Pos,
    ) -> Result<Type, Error> {
        let lty = self.peek_lvalue_type(lhs)?;

        // Struct assignment copies blocks.
        if let Type::Struct(_) = lty {
            if op.is_some() {
                return Err(self.err(pos, "compound assignment on a struct"));
            }
            let hl = if has_barrier(lhs) {
                // Destination address first, parked in a temp.
                self.gen_addr(lhs)?;
                Some(self.spill(&Type::Uint))
            } else {
                None
            };
            let rt = self.gen_value(rhs)?; // struct value = its address
            if rt != lty {
                return Err(self.err(pos, "struct assignment type mismatch"));
            }
            if let Some((off, wide)) = hl {
                let size = lty.size(self.types());
                self.unspill(off, &Type::Uint);
                self.untemp(off, wide);
                self.emit16(Opcode::ASGNB, size as u16);
                if want_value {
                    return Err(self.err(pos, "struct assignment value unsupported here"));
                }
                return Ok(Type::Void);
            }
            let size = lty.size(self.types());
            if want_value {
                let lt = self.gen_addr(lhs)?;
                let (atmp, _) = self.spill(&Type::Uint);
                self.unspill(atmp, &Type::Uint);
                self.emit16(Opcode::ASGNB, size as u16);
                self.unspill(atmp, &Type::Uint);
                self.untemp(atmp, false);
                let _ = lt;
                return Ok(lty);
            }
            self.gen_addr(lhs)?;
            self.emit16(Opcode::ASGNB, size as u16);
            return Ok(Type::Void);
        }

        match (op, want_value) {
            (None, false) if !has_barrier(lhs) => {
                // value; addr; store
                let vt = self.gen_value(rhs)?;
                self.convert(&vt, &lty, pos)?;
                self.gen_addr(lhs)?;
                let store = self.store_op(&lty, pos)?;
                self.emit(store);
                Ok(Type::Void)
            }
            _ => {
                // Address into a temp so it can be reused (for the old
                // value in `op=`, for the result re-load, and so that a
                // barrier right-hand side never runs with the address on
                // the evaluation stack).
                self.gen_addr(lhs)?;
                let (atmp, _) = self.spill(&Type::Uint);
                let hr = self.hoist(rhs)?;
                let vt = match op {
                    Some(binop) => {
                        // old value
                        self.unspill(atmp, &Type::Uint);
                        let old_t = self.emit_load(&lty, pos)?;
                        // rhs, with pointer scaling for ptr += n.
                        if lty.is_pointer() {
                            let sz = lty.pointee().map(|p| p.size(self.types())).unwrap_or(1);
                            let rt = self.unhoist(hr, rhs)?;
                            if !rt.is_integer() {
                                return Err(self.err(pos, "pointer step must be an integer"));
                            }
                            if sz != 1 {
                                self.emit_lit(sz);
                                self.emit(Opcode::MULU);
                            }
                            self.emit(match binop {
                                BinOp::Add => Opcode::ADDU,
                                BinOp::Sub => Opcode::SUBU,
                                _ => return Err(self.err(pos, "operator not defined on pointers")),
                            });
                            lty.decay()
                        } else {
                            let common = {
                                let rt = self.peek_type(rhs)?;
                                usual_arith(&old_t.promote(), &rt.promote())
                            };
                            self.convert(&old_t, &common, pos)?;
                            let rt = self.unhoist(hr, rhs)?;
                            self.convert(&rt, &common, pos)?;
                            self.emit_arith_op(binop, &common, pos)?;
                            common
                        }
                    }
                    None => self.unhoist(hr, rhs)?,
                };
                self.convert(&vt, &lty, pos)?;
                self.unspill(atmp, &Type::Uint);
                let store = self.store_op(&lty, pos)?;
                self.emit(store);
                if want_value {
                    self.unspill(atmp, &Type::Uint);
                    let t = self.emit_load(&lty, pos)?;
                    self.untemp(atmp, false);
                    Ok(t)
                } else {
                    self.untemp(atmp, false);
                    Ok(Type::Void)
                }
            }
        }
    }

    fn emit_arith_op(&mut self, op: BinOp, common: &Type, pos: Pos) -> Result<(), Error> {
        use Opcode::*;
        let opcode = match (common, op) {
            (Type::Double, BinOp::Add) => ADDD,
            (Type::Double, BinOp::Sub) => SUBD,
            (Type::Double, BinOp::Mul) => MULD,
            (Type::Double, BinOp::Div) => DIVD,
            (Type::Float, BinOp::Add) => ADDF,
            (Type::Float, BinOp::Sub) => SUBF,
            (Type::Float, BinOp::Mul) => MULF,
            (Type::Float, BinOp::Div) => DIVF,
            (Type::Uint, BinOp::Add) => ADDU,
            (Type::Uint, BinOp::Sub) => SUBU,
            (Type::Uint, BinOp::Mul) => MULU,
            (Type::Uint, BinOp::Div) => DIVU,
            (Type::Uint, BinOp::Rem) => MODU,
            (Type::Uint, BinOp::Shl) => LSHU,
            (Type::Uint, BinOp::Shr) => RSHU,
            (Type::Int, BinOp::Add) => ADDU,
            (Type::Int, BinOp::Sub) => SUBU,
            (Type::Int, BinOp::Mul) => MULI,
            (Type::Int, BinOp::Div) => DIVI,
            (Type::Int, BinOp::Rem) => MODI,
            (Type::Int, BinOp::Shl) => LSHI,
            (Type::Int, BinOp::Shr) => RSHI,
            (Type::Int | Type::Uint, BinOp::And) => BANDU,
            (Type::Int | Type::Uint, BinOp::Or) => BORU,
            (Type::Int | Type::Uint, BinOp::Xor) => BXORU,
            (t, op) => return Err(self.err(pos, format!("operator {op:?} not defined on {t}"))),
        };
        self.emit(opcode);
        Ok(())
    }

    /// `++x`/`--x` (pre) and the shared machinery for both forms.
    fn gen_incdec(
        &mut self,
        inc: bool,
        target: &Expr,
        want_value: bool,
        pos: Pos,
    ) -> Result<Type, Error> {
        let one = Expr::new(ExprKind::Int(1, false), pos);
        let op = if inc { BinOp::Add } else { BinOp::Sub };
        self.gen_assign(Some(op), target, &one, want_value, pos)
    }

    /// `x++`/`x--`: the old value is the result.
    fn gen_postincdec(&mut self, inc: bool, target: &Expr, pos: Pos) -> Result<Type, Error> {
        let lty = self.peek_lvalue_type(target)?;
        if !(lty.is_integer() || lty.is_pointer()) {
            return Err(self.err(pos, "++/-- needs an integer or pointer"));
        }
        self.gen_addr(target)?;
        let (atmp, _) = self.spill(&Type::Uint);
        // old value -> vtmp
        self.unspill(atmp, &Type::Uint);
        let vt = self.emit_load(&lty, pos)?;
        let (vtmp, _) = self.spill(&vt);
        // new = old +- step
        self.unspill(vtmp, &vt);
        let step = match lty.pointee() {
            Some(p) => p.size(self.types()),
            None => 1,
        };
        self.emit_lit(step);
        self.emit(if inc { Opcode::ADDU } else { Opcode::SUBU });
        self.unspill(atmp, &Type::Uint);
        let store = self.store_op(&lty, pos)?;
        self.emit(store);
        // result = old value
        self.unspill(vtmp, &vt);
        self.untemp(atmp, false);
        self.untemp(vtmp, false);
        Ok(vt)
    }

    fn gen_call(&mut self, callee: &Expr, args: &[Expr], pos: Pos) -> Result<Type, Error> {
        // Resolve the callee shape.
        enum Target {
            Direct(u32),
            Native(u32),
            Indirect,
        }
        let (target, sig) = match &callee.kind {
            ExprKind::Ident(name) if self.lookup(name).is_none() => {
                if let Some((idx, sig)) = self.cg.funcs.get(name).cloned() {
                    (Target::Direct(idx), sig)
                } else if let Some(sig) = native_sig(name) {
                    let idx = self.cg.native_index(name);
                    (Target::Native(idx), sig)
                } else {
                    return Err(self.err(pos, format!("call to undefined function {name}")));
                }
            }
            _ => {
                // Function pointer: the sig comes from the type. The
                // address is pushed LAST (after the arguments), as in
                // the paper's example, so peek the type first.
                let ct = self.peek_type(callee)?;
                let sig = match &ct {
                    Type::Ptr(inner) => match &**inner {
                        Type::Func(sig) => (**sig).clone(),
                        _ => return Err(self.err(pos, format!("{ct} is not callable"))),
                    },
                    _ => return Err(self.err(pos, format!("{ct} is not callable"))),
                };
                (Target::Indirect, sig)
            }
        };
        if args.len() != sig.params.len() {
            return Err(self.err(
                pos,
                format!(
                    "call passes {} arguments, function takes {}",
                    args.len(),
                    sig.params.len()
                ),
            ));
        }
        // Arguments in order (first argument lands at ADDRFP 0).
        for (arg, pty) in args.iter().zip(&sig.params) {
            match pty {
                Type::Struct(_) => {
                    let at = self.gen_value(arg)?;
                    if at != *pty {
                        return Err(self.err(arg.pos, "struct argument type mismatch"));
                    }
                    let size = param_slot(pty, self.types());
                    self.emit16(Opcode::ARGB, size as u16);
                }
                Type::Double => {
                    let at = self.gen_value(arg)?;
                    self.convert(&at, &Type::Double, arg.pos)?;
                    self.emit(Opcode::ARGD);
                }
                Type::Float => {
                    let at = self.gen_value(arg)?;
                    self.convert(&at, &Type::Float, arg.pos)?;
                    self.emit(Opcode::ARGF);
                }
                _ => {
                    let at = self.gen_value(arg)?;
                    self.convert(&at, &pty.promote(), arg.pos)?;
                    self.emit(Opcode::ARGU);
                }
            }
        }
        let ret = sig.ret.clone();
        match target {
            Target::Direct(idx) => {
                let op = match ret {
                    Type::Double => Opcode::LocalCALLD,
                    Type::Float => Opcode::LocalCALLF,
                    Type::Void => Opcode::LocalCALLV,
                    _ => Opcode::LocalCALLU,
                };
                self.emit16(op, idx as u16);
            }
            Target::Native(idx) => {
                self.emit16(Opcode::ADDRGP, idx as u16);
                self.emit_call_op(&ret);
            }
            Target::Indirect => {
                self.gen_value(callee)?;
                self.emit_call_op(&ret);
            }
        }
        Ok(ret.decay())
    }

    fn emit_call_op(&mut self, ret: &Type) {
        self.emit(match ret {
            Type::Double => Opcode::CALLD,
            Type::Float => Opcode::CALLF,
            Type::Void => Opcode::CALLV,
            _ => Opcode::CALLU,
        });
    }

    // ---- type peeking (no emission) --------------------------------------

    /// Compute an expression's computation type without emitting code.
    fn peek_type(&mut self, e: &Expr) -> Result<Type, Error> {
        Ok(match &e.kind {
            ExprKind::Int(_, unsigned) => {
                if *unsigned {
                    Type::Uint
                } else {
                    Type::Int
                }
            }
            ExprKind::Char(_) => Type::Int,
            ExprKind::Float(_) => Type::Float,
            ExprKind::Double(_) => Type::Double,
            ExprKind::Str(_) => Type::Char.ptr_to(),
            ExprKind::Sizeof(_) => Type::Uint,
            ExprKind::Paren(inner) => self.peek_type(inner)?,
            ExprKind::Ident(name) => {
                if let Some(sym) = self.lookup(name) {
                    match sym.ty() {
                        Type::Char | Type::Short => Type::Int,
                        other => other.decay(),
                    }
                } else if let Some((_, sig)) = self.cg.funcs.get(name) {
                    Type::Ptr(Box::new(Type::Func(Box::new(sig.clone()))))
                } else if let Some(sig) = native_sig(name) {
                    Type::Ptr(Box::new(Type::Func(Box::new(sig))))
                } else {
                    return Err(self.err(e.pos, format!("undefined name {name}")));
                }
            }
            ExprKind::Cast(to, _) => match to {
                Type::Char | Type::Short => Type::Int,
                other => other.decay(),
            },
            ExprKind::Unary(UnOp::Addr, inner) => self.peek_lvalue_type(inner)?.decay_addr(),
            ExprKind::Unary(UnOp::Deref, inner) => {
                let t = self.peek_type(inner)?;
                match t.pointee() {
                    Some(p) => match p {
                        Type::Char | Type::Short => Type::Int,
                        other => other.decay(),
                    },
                    None => return Err(self.err(e.pos, format!("cannot dereference {t}"))),
                }
            }
            ExprKind::Unary(UnOp::Neg, inner) => self.peek_type(inner)?.promote(),
            ExprKind::Unary(UnOp::Not, _) => Type::Int,
            ExprKind::Unary(UnOp::BitNot, inner) => self.peek_type(inner)?.promote(),
            ExprKind::PreIncDec(_, t) | ExprKind::PostIncDec(_, t) => {
                self.peek_lvalue_type(t)?.decay()
            }
            ExprKind::Binary(op, a, b) => {
                if op.is_comparison() {
                    Type::Int
                } else {
                    let at = self.peek_type(a)?;
                    let bt = self.peek_type(b)?;
                    if at.is_pointer() && bt.is_pointer() {
                        Type::Int // ptr - ptr
                    } else if at.is_pointer() {
                        at
                    } else if bt.is_pointer() {
                        bt
                    } else {
                        usual_arith(&at.promote(), &bt.promote())
                    }
                }
            }
            ExprKind::Logic(_, _, _) => Type::Int,
            ExprKind::Assign(_, lhs, _) => self.peek_lvalue_type(lhs)?.decay(),
            ExprKind::Cond(_, t, f) => {
                let tt = self.peek_type(t)?;
                let ft = self.peek_type(f)?;
                if tt.is_arith() && ft.is_arith() {
                    usual_arith(&tt.promote(), &ft.promote())
                } else if tt.is_pointer() {
                    tt.decay()
                } else {
                    ft.decay()
                }
            }
            ExprKind::Call(callee, _) => {
                let ct = self.peek_type(callee)?;
                match &ct {
                    Type::Ptr(inner) => match &**inner {
                        Type::Func(sig) => sig.ret.decay(),
                        _ => return Err(self.err(e.pos, format!("{ct} is not callable"))),
                    },
                    _ => return Err(self.err(e.pos, format!("{ct} is not callable"))),
                }
            }
            ExprKind::Index(base, _) => {
                let bt = self.peek_type(base)?;
                match bt.pointee() {
                    Some(p) => match p {
                        Type::Char | Type::Short => Type::Int,
                        other => other.decay(),
                    },
                    None => return Err(self.err(e.pos, format!("cannot index {bt}"))),
                }
            }
            ExprKind::Member(_, _) | ExprKind::Arrow(_, _) => {
                let ty = self.peek_lvalue_type(e)?;
                match ty {
                    Type::Char | Type::Short => Type::Int,
                    other => other.decay(),
                }
            }
        })
    }

    /// Compute an lvalue's object type without emitting code.
    fn peek_lvalue_type(&mut self, e: &Expr) -> Result<Type, Error> {
        match &e.kind {
            ExprKind::Ident(name) => self
                .lookup(name)
                .map(|s| s.ty().clone())
                .ok_or_else(|| self.err(e.pos, format!("undefined variable {name}"))),
            ExprKind::Paren(inner) => self.peek_lvalue_type(inner),
            ExprKind::Unary(UnOp::Deref, inner) => {
                let t = self.peek_type(inner)?;
                t.pointee()
                    .cloned()
                    .ok_or_else(|| self.err(e.pos, format!("cannot dereference {t}")))
            }
            ExprKind::Index(base, _) => {
                let t = self.peek_type(base)?;
                t.pointee()
                    .cloned()
                    .ok_or_else(|| self.err(e.pos, format!("cannot index {t}")))
            }
            ExprKind::Member(base, field) => {
                let bt = self.peek_lvalue_type(base)?;
                let Type::Struct(id) = bt else {
                    return Err(self.err(e.pos, format!("{bt} has no members")));
                };
                self.types().structs[id]
                    .field(field)
                    .map(|f| f.ty.clone())
                    .ok_or_else(|| self.err(e.pos, format!("no field {field}")))
            }
            ExprKind::Arrow(base, field) => {
                let bt = self.peek_type(base)?;
                let Some(Type::Struct(id)) = bt.pointee().cloned() else {
                    return Err(self.err(e.pos, format!("{bt} is not a struct pointer")));
                };
                self.types().structs[id]
                    .field(field)
                    .map(|f| f.ty.clone())
                    .ok_or_else(|| self.err(e.pos, format!("no field {field}")))
            }
            ExprKind::Str(bytes) => Ok(Type::Array(Box::new(Type::Char), bytes.len() as u32 + 1)),
            _ => Err(self.err(e.pos, "expression is not an lvalue")),
        }
    }
}

/// Helper: `&T` for lvalue type `T` (arrays give a pointer to the array's
/// element only through decay; `&arr` is a pointer to the array, which we
/// flatten to element pointer — the two are interchangeable here).
trait DecayAddr {
    fn decay_addr(&self) -> Type;
}

impl DecayAddr for Type {
    fn decay_addr(&self) -> Type {
        match self {
            Type::Array(elem, _) => Type::Ptr(elem.clone()),
            other => other.clone().ptr_to(),
        }
    }
}

/// Alias used in signatures above.
type VTypeR = Type;
