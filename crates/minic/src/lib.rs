//! # pgr-minic
//!
//! A small C compiler targeting the initial bytecode of `pgr-bytecode`.
//!
//! The paper's bytecode "is a simple postfix encoding of lcc trees" (§3);
//! its training and test inputs are C programs (gcc, lcc, gzip, eight
//! queens) compiled by lcc. lcc itself is unavailable, so this crate is
//! the substitute substrate: a one-pass C-subset compiler that emits the
//! same postfix, stack-based instruction set with the same conventions —
//! label-table indices instead of branch offsets, a global-address table,
//! trampolines only for address-taken procedures, `LocalCALL` for direct
//! calls, and switches lowered to decision trees (the paper's lcc option,
//! §6, because "the current implementation of the bytecode cannot handle
//! indirect jumps").
//!
//! ## Language
//!
//! Types: `void`, `char`, `short`, `int`, `unsigned`, `float`, `double`,
//! pointers, 1-D arrays, flat `struct`s, and function pointers. Control:
//! `if`/`else`, `while`, `do`, `for`, `switch`, `break`, `continue`,
//! `return`. Expressions: the full C operator set including assignment
//! operators, `?:`, short-circuit `&&`/`||` (lowered to branches and
//! temporaries, as lcc's front end does), casts, `sizeof`, `++`/`--`,
//! struct member access, and calls through function pointers. The
//! library is the VM's native registry (`putchar`, `putint`, `putstr`,
//! `getchar`, `exit`, `malloc`, `memcpy`, `memset`, `srand`, `rand`, …),
//! implicitly declared.
//!
//! ## Example
//!
//! ```
//! let program = pgr_minic::compile(
//!     "int main(void) { putstr(\"hi\\n\"); return 40 + 2; }",
//! ).unwrap();
//! assert_eq!(program.procs[0].name, "main");
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod codegen;
pub mod lexer;
pub mod opt;
pub mod parser;
pub mod sema;
pub mod types;

use pgr_bytecode::Program;
use std::fmt;

/// Source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A compilation error with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Where it happened.
    pub pos: Pos,
    /// What went wrong.
    pub message: String,
}

impl Error {
    pub(crate) fn new(pos: Pos, message: impl Into<String>) -> Error {
        Error {
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for Error {}

/// Compile a translation unit to a bytecode program.
///
/// The entry point is `main` (which, per §3, always gets a trampoline).
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic [`Error`].
pub fn compile(source: &str) -> Result<Program, Error> {
    compile_with(source, &Options::default())
}

/// Compilation options.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Run the peephole optimizer over each procedure (the §6
    /// optimization-interaction ablation toggles this).
    pub optimize: bool,
}

/// Compile with explicit [`Options`].
///
/// # Errors
///
/// Returns the first lexical, syntactic, or semantic [`Error`].
pub fn compile_with(source: &str, options: &Options) -> Result<Program, Error> {
    let tokens = lexer::lex(source)?;
    let unit = parser::parse(tokens)?;
    let mut program = codegen::generate(&unit)?;
    if options.optimize {
        opt::peephole_program(&mut program);
    }
    Ok(program)
}
