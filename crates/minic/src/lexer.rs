//! The lexer.

use crate::{Error, Pos};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are distinguished by the parser
    /// via [`Tok::is_kw`] helpers).
    Ident(String),
    /// Integer literal (value and whether it had a `u` suffix).
    Int(u32, bool),
    /// Float literal with `f` suffix.
    Float(f32),
    /// Double literal (no suffix).
    Double(f64),
    /// Character literal, already decoded.
    Char(u8),
    /// String literal, already decoded (no terminating NUL).
    Str(Vec<u8>),
    /// One punctuator: `+ - * / % ... <<= >>=` etc.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl Tok {
    /// Whether this token is the given punctuator.
    pub fn is(&self, p: &str) -> bool {
        matches!(self, Tok::Punct(q) if *q == p)
    }

    /// Whether this token is the given keyword.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Tok::Ident(s) if s == kw)
    }
}

/// A token plus its position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// Multi-character punctuators, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "&=", "|=", "^=", "+", "-", "*", "/", "%", "=", "<", ">", "!", "~",
    "&", "|", "^", "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
];

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'s> Lexer<'s> {
    fn here(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_trivia(&mut self) -> Result<(), Error> {
        loop {
            match (self.peek(), self.peek2()) {
                (Some(b), _) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                (Some(b'/'), Some(b'/')) => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                (Some(b'/'), Some(b'*')) => {
                    let start = self.here();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(Error::new(start, "unterminated comment"));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn escape(&mut self, pos: Pos) -> Result<u8, Error> {
        match self.bump() {
            Some(b'n') => Ok(b'\n'),
            Some(b't') => Ok(b'\t'),
            Some(b'r') => Ok(b'\r'),
            Some(b'0') => Ok(0),
            Some(b'\\') => Ok(b'\\'),
            Some(b'\'') => Ok(b'\''),
            Some(b'"') => Ok(b'"'),
            Some(c) => Err(Error::new(pos, format!("unknown escape '\\{}'", c as char))),
            None => Err(Error::new(pos, "unterminated escape")),
        }
    }

    fn number(&mut self, pos: Pos) -> Result<Tok, Error> {
        let start = self.pos;
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let hex_start = self.pos;
            while matches!(self.peek(), Some(b) if b.is_ascii_hexdigit()) {
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[hex_start..self.pos]).expect("ascii");
            if text.is_empty() {
                return Err(Error::new(pos, "empty hex literal"));
            }
            let v = u32::from_str_radix(text, 16)
                .map_err(|_| Error::new(pos, "hex literal overflows 32 bits"))?;
            let unsigned = matches!(self.peek(), Some(b'u') | Some(b'U'));
            if unsigned {
                self.bump();
            }
            return Ok(Tok::Int(v, unsigned));
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.bump();
        }
        let is_float =
            self.peek() == Some(b'.') && matches!(self.peek2(), Some(b) if b.is_ascii_digit());
        if is_float {
            self.bump(); // '.'
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
            let v: f64 = text
                .parse()
                .map_err(|_| Error::new(pos, "bad float literal"))?;
            if matches!(self.peek(), Some(b'f') | Some(b'F')) {
                self.bump();
                Ok(Tok::Float(v as f32))
            } else {
                Ok(Tok::Double(v))
            }
        } else {
            let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
            let v: u32 = text
                .parse()
                .map_err(|_| Error::new(pos, "integer literal overflows 32 bits"))?;
            let unsigned = matches!(self.peek(), Some(b'u') | Some(b'U'));
            if unsigned {
                self.bump();
            }
            Ok(Tok::Int(v, unsigned))
        }
    }

    fn next_token(&mut self) -> Result<Token, Error> {
        self.skip_trivia()?;
        let pos = self.here();
        let Some(b) = self.peek() else {
            return Ok(Token { tok: Tok::Eof, pos });
        };

        if b.is_ascii_alphabetic() || b == b'_' {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
            return Ok(Token {
                tok: Tok::Ident(text.to_string()),
                pos,
            });
        }
        if b.is_ascii_digit() {
            let tok = self.number(pos)?;
            return Ok(Token { tok, pos });
        }
        if b == b'\'' {
            self.bump();
            let c = match self.bump() {
                Some(b'\\') => self.escape(pos)?,
                Some(c) => c,
                None => return Err(Error::new(pos, "unterminated character literal")),
            };
            if self.bump() != Some(b'\'') {
                return Err(Error::new(pos, "unterminated character literal"));
            }
            return Ok(Token {
                tok: Tok::Char(c),
                pos,
            });
        }
        if b == b'"' {
            self.bump();
            let mut bytes = Vec::new();
            loop {
                match self.bump() {
                    Some(b'"') => break,
                    Some(b'\\') => bytes.push(self.escape(pos)?),
                    Some(c) => bytes.push(c),
                    None => return Err(Error::new(pos, "unterminated string literal")),
                }
            }
            return Ok(Token {
                tok: Tok::Str(bytes),
                pos,
            });
        }

        for &p in PUNCTS {
            if self.src[self.pos..].starts_with(p.as_bytes()) {
                for _ in 0..p.len() {
                    self.bump();
                }
                return Ok(Token {
                    tok: Tok::Punct(p),
                    pos,
                });
            }
        }
        Err(Error::new(pos, format!("stray character {:?}", b as char)))
    }
}

/// Tokenize a source string. The result always ends with [`Tok::Eof`].
///
/// # Errors
///
/// Returns an [`Error`] for malformed literals, comments, or stray bytes.
pub fn lex(source: &str) -> Result<Vec<Token>, Error> {
    let mut lexer = Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    loop {
        let t = lexer.next_token()?;
        let done = t.tok == Tok::Eof;
        out.push(t);
        if done {
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn identifiers_numbers_and_puncts() {
        assert_eq!(
            toks("int x = 42;"),
            vec![
                Tok::Ident("int".into()),
                Tok::Ident("x".into()),
                Tok::Punct("="),
                Tok::Int(42, false),
                Tok::Punct(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn maximal_munch_on_operators() {
        assert_eq!(
            toks("a <<= b >> c >= d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<<="),
                Tok::Ident("b".into()),
                Tok::Punct(">>"),
                Tok::Ident("c".into()),
                Tok::Punct(">="),
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numeric_literal_forms() {
        assert_eq!(toks("0xff"), vec![Tok::Int(255, false), Tok::Eof]);
        assert_eq!(toks("7u"), vec![Tok::Int(7, true), Tok::Eof]);
        assert_eq!(toks("1.5f"), vec![Tok::Float(1.5), Tok::Eof]);
        assert_eq!(toks("2.25"), vec![Tok::Double(2.25), Tok::Eof]);
        assert_eq!(
            toks("4294967295"),
            vec![Tok::Int(u32::MAX, false), Tok::Eof]
        );
        assert!(lex("4294967296").is_err());
    }

    #[test]
    fn char_and_string_escapes() {
        assert_eq!(toks("'a'"), vec![Tok::Char(b'a'), Tok::Eof]);
        assert_eq!(toks("'\\n'"), vec![Tok::Char(b'\n'), Tok::Eof]);
        assert_eq!(
            toks("\"hi\\n\""),
            vec![Tok::Str(b"hi\n".to_vec()), Tok::Eof]
        );
        assert!(lex("'ab'").is_err());
        assert!(lex("\"open").is_err());
    }

    #[test]
    fn comments_are_trivia() {
        assert_eq!(
            toks("a // line\n /* block\n comment */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
        assert!(lex("/* unterminated").is_err());
    }

    #[test]
    fn positions_are_tracked() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn member_access_vs_float() {
        assert_eq!(
            toks("p.x"),
            vec![
                Tok::Ident("p".into()),
                Tok::Punct("."),
                Tok::Ident("x".into()),
                Tok::Eof
            ]
        );
    }
}
