//! A small peephole optimizer over the emitted bytecode.
//!
//! This plays the role of the paper's §6 optimization-interaction
//! experiment knob ("it would be interesting to run our compressor on
//! bytecodes that have been through such an optimizer … highly optimized
//! code is usually less regular and thus less compressible"). The
//! rewrites are local, label-safe (no window spans a `LABELV`, and label
//! tables are rebuilt from the surviving markers), and semantics
//! preserving:
//!
//! * algebraic identities: `x + 0`, `x - 0`, `x * 1`, `x / 1`,
//! * literal folding: `LIT a; LIT b; op` → `LIT (a op b)`,
//! * branch-polarity inversion: `cmp; LIT 0; EQU; BrTrue` →
//!   `inverted-cmp; BrTrue` (integer comparisons only — inverting float
//!   comparisons is wrong under NaN),
//! * flag simplification: `x; LIT 0; NEU; BrTrue` → `x; BrTrue`.

use pgr_bytecode::{decode, Instruction, Opcode, Procedure, Program};

fn lit_value(insn: &Instruction) -> Option<u32> {
    match insn.opcode {
        Opcode::LIT1 | Opcode::LIT2 | Opcode::LIT3 | Opcode::LIT4 => Some(insn.operand_u32()),
        _ => None,
    }
}

fn make_lit(v: u32) -> Instruction {
    let bytes = v.to_le_bytes();
    if v < 1 << 8 {
        Instruction::new(Opcode::LIT1, &bytes[..1])
    } else if v < 1 << 16 {
        Instruction::new(Opcode::LIT2, &bytes[..2])
    } else if v < 1 << 24 {
        Instruction::new(Opcode::LIT3, &bytes[..3])
    } else {
        Instruction::new(Opcode::LIT4, &bytes)
    }
}

/// The integer-comparison inversion table (floats excluded: NaN).
fn invert_int_compare(op: Opcode) -> Option<Opcode> {
    use Opcode::*;
    Some(match op {
        EQU => NEU,
        NEU => EQU,
        LTI => GEI,
        GEI => LTI,
        GTI => LEI,
        LEI => GTI,
        LTU => GEU,
        GEU => LTU,
        GTU => LEU,
        LEU => GTU,
        _ => return None,
    })
}

/// One rewriting pass; returns true if anything changed.
fn pass(insns: &mut Vec<Instruction>) -> bool {
    let mut changed = false;
    let mut i = 0;
    while i < insns.len() {
        // Window accessors that refuse to cross labels.
        let get = |k: usize| -> Option<&Instruction> {
            let insn = insns.get(k)?;
            (insn.opcode != Opcode::LABELV).then_some(insn)
        };

        // LIT a; LIT b; fold-able op
        if let (Some(a), Some(b), Some(op)) = (get(i), get(i + 1), get(i + 2)) {
            if let (Some(va), Some(vb)) = (lit_value(a), lit_value(b)) {
                let folded = match op.opcode {
                    Opcode::ADDU => Some(va.wrapping_add(vb)),
                    Opcode::SUBU => Some(va.wrapping_sub(vb)),
                    Opcode::MULU => Some(va.wrapping_mul(vb)),
                    Opcode::MULI => Some((va as i32).wrapping_mul(vb as i32) as u32),
                    Opcode::BANDU => Some(va & vb),
                    Opcode::BORU => Some(va | vb),
                    Opcode::BXORU => Some(va ^ vb),
                    _ => None,
                };
                if let Some(v) = folded {
                    insns.splice(i..i + 3, [make_lit(v)]);
                    changed = true;
                    continue;
                }
            }
        }

        // LIT identity; op  (x+0, x-0, x*1, x/1, shifts by 0)
        if let (Some(lit), Some(op)) = (get(i), get(i + 1)) {
            if let Some(v) = lit_value(lit) {
                let removable = matches!(
                    (v, op.opcode),
                    (
                        0,
                        Opcode::ADDU | Opcode::SUBU | Opcode::BORU | Opcode::BXORU
                    ) | (0, Opcode::LSHI | Opcode::LSHU | Opcode::RSHI | Opcode::RSHU)
                        | (1, Opcode::MULI | Opcode::MULU | Opcode::DIVI | Opcode::DIVU)
                );
                if removable {
                    insns.drain(i..i + 2);
                    changed = true;
                    continue;
                }
            }
        }

        // cmp; LIT 0; EQU; BrTrue  ->  inverted-cmp; BrTrue
        if let (Some(cmp), Some(lit), Some(equ), Some(br)) =
            (get(i), get(i + 1), get(i + 2), get(i + 3))
        {
            if lit_value(lit) == Some(0) && equ.opcode == Opcode::EQU && br.opcode == Opcode::BrTrue
            {
                if let Some(inv) = invert_int_compare(cmp.opcode) {
                    let br = *br;
                    insns.splice(i..i + 4, [Instruction::op(inv), br]);
                    changed = true;
                    continue;
                }
            }
        }

        // LIT 0; NEU; BrTrue  ->  BrTrue (BrTrue already tests non-zero)
        if let (Some(lit), Some(neu), Some(br)) = (get(i), get(i + 1), get(i + 2)) {
            if lit_value(lit) == Some(0) && neu.opcode == Opcode::NEU && br.opcode == Opcode::BrTrue
            {
                let br = *br;
                insns.splice(i..i + 3, [br]);
                changed = true;
                continue;
            }
        }

        i += 1;
    }
    changed
}

/// Optimize one procedure in place, rebuilding its label table.
pub fn peephole_procedure(proc: &mut Procedure) {
    let Ok(mut insns) = decode(&proc.code).collect::<Result<Vec<_>, _>>() else {
        return; // malformed code: leave untouched
    };
    // Remember which original offset each LABELV had.
    while pass(&mut insns) {}

    let mut code = Vec::with_capacity(proc.code.len());
    let mut label_map: Vec<(usize, u32)> = Vec::new();
    for insn in &insns {
        if insn.opcode == Opcode::LABELV {
            label_map.push((insn.offset, code.len() as u32));
        }
        insn.encode_into(&mut code);
    }
    let labels = proc
        .labels
        .iter()
        .map(|&old| {
            label_map
                .iter()
                .find(|(o, _)| *o == old as usize)
                .map(|&(_, n)| n)
                .unwrap_or(old)
        })
        .collect();
    proc.code = code;
    proc.labels = labels;
}

/// Optimize every procedure of a program.
pub fn peephole_program(program: &mut Program) {
    for proc in &mut program.procs {
        peephole_procedure(proc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgr_bytecode::encode;

    fn optimize(insns: &[Instruction]) -> Vec<Opcode> {
        let mut proc = Procedure::new("t");
        let (code, labels) = pgr_bytecode::asm::code_with_labels(insns);
        proc.code = code;
        proc.labels = labels;
        peephole_procedure(&mut proc);
        decode(&proc.code).map(|i| i.unwrap().opcode).collect()
    }

    #[test]
    fn folds_literal_arithmetic() {
        let out = optimize(&[
            Instruction::new(Opcode::LIT1, &[2]),
            Instruction::new(Opcode::LIT1, &[3]),
            Instruction::op(Opcode::MULI),
            Instruction::op(Opcode::POPU),
            Instruction::op(Opcode::RETV),
        ]);
        assert_eq!(out, vec![Opcode::LIT1, Opcode::POPU, Opcode::RETV]);
    }

    #[test]
    fn removes_additive_identity() {
        let out = optimize(&[
            Instruction::with_u16(Opcode::ADDRLP, 0),
            Instruction::op(Opcode::INDIRU),
            Instruction::new(Opcode::LIT1, &[0]),
            Instruction::op(Opcode::ADDU),
            Instruction::op(Opcode::POPU),
            Instruction::op(Opcode::RETV),
        ]);
        assert_eq!(
            out,
            vec![Opcode::ADDRLP, Opcode::INDIRU, Opcode::POPU, Opcode::RETV]
        );
    }

    #[test]
    fn inverts_branch_polarity() {
        let out = optimize(&[
            Instruction::new(Opcode::LIT1, &[5]),
            Instruction::with_u16(Opcode::ADDRLP, 0),
            Instruction::op(Opcode::INDIRU),
            Instruction::op(Opcode::LTI),
            Instruction::new(Opcode::LIT1, &[0]),
            Instruction::op(Opcode::EQU),
            Instruction::with_u16(Opcode::BrTrue, 0),
            Instruction::op(Opcode::LABELV),
            Instruction::op(Opcode::RETV),
        ]);
        assert_eq!(
            out,
            vec![
                Opcode::LIT1,
                Opcode::ADDRLP,
                Opcode::INDIRU,
                Opcode::GEI,
                Opcode::BrTrue,
                Opcode::LABELV,
                Opcode::RETV
            ]
        );
    }

    #[test]
    fn float_compares_are_not_inverted() {
        let input = [
            Instruction::op(Opcode::LTD),
            Instruction::new(Opcode::LIT1, &[0]),
            Instruction::op(Opcode::EQU),
            Instruction::with_u16(Opcode::BrTrue, 0),
            Instruction::op(Opcode::LABELV),
            Instruction::op(Opcode::RETV),
        ];
        let out = optimize(&input);
        assert_eq!(out[0], Opcode::LTD);
        assert_eq!(out[1], Opcode::LIT1, "NaN semantics must be preserved");
    }

    #[test]
    fn windows_do_not_cross_labels() {
        // LIT 0 before a label, ADDU after: must not merge.
        let out = optimize(&[
            Instruction::new(Opcode::LIT1, &[0]),
            Instruction::op(Opcode::LABELV),
            Instruction::op(Opcode::ADDU),
            Instruction::op(Opcode::RETV),
        ]);
        assert_eq!(
            out,
            vec![Opcode::LIT1, Opcode::LABELV, Opcode::ADDU, Opcode::RETV]
        );
    }

    #[test]
    fn label_table_is_rebuilt() {
        let insns = [
            Instruction::new(Opcode::LIT1, &[2]),
            Instruction::new(Opcode::LIT1, &[3]),
            Instruction::op(Opcode::ADDU),
            Instruction::op(Opcode::POPU),
            Instruction::op(Opcode::LABELV),
            Instruction::op(Opcode::RETV),
        ];
        let mut proc = Procedure::new("t");
        proc.code = encode(&insns);
        // LIT1 2 (2) + LIT1 3 (2) + ADDU (1) + POPU (1) -> LABELV at 6.
        proc.labels = vec![6];
        peephole_procedure(&mut proc);
        let label = proc.labels[0] as usize;
        assert_eq!(proc.code[label], Opcode::LABELV as u8);
        // LIT1 v (2 bytes) + POPU + LABELV: label sits at offset 3.
        assert_eq!(label, 3);
    }
}
