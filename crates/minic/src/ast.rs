//! The abstract syntax tree.
//!
//! Types are resolved at parse time (struct definitions appear before
//! use), so the AST carries [`Type`] directly in casts, `sizeof`, and
//! declarations.

use crate::types::{Type, TypeTable};
use crate::Pos;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-x`
    Neg,
    /// `!x`
    Not,
    /// `~x`
    BitNot,
    /// `*x`
    Deref,
    /// `&x`
    Addr,
}

/// Binary operators (the non-short-circuit ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl BinOp {
    /// Whether the operator yields an `int` 0/1 flag.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// An expression with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The node.
    pub kind: ExprKind,
    /// Where it starts.
    pub pos: Pos,
}

/// Expression nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal (`true` = unsigned suffix).
    Int(u32, bool),
    /// `float` literal.
    Float(f32),
    /// `double` literal.
    Double(f64),
    /// Character literal (type `int` in C).
    Char(u8),
    /// String literal (decays to `char *` into the data segment).
    Str(Vec<u8>),
    /// Variable or function reference.
    Ident(String),
    /// Unary operator.
    Unary(UnOp, Box<Expr>),
    /// Pre-increment/-decrement (`true` = increment).
    PreIncDec(bool, Box<Expr>),
    /// Post-increment/-decrement (`true` = increment).
    PostIncDec(bool, Box<Expr>),
    /// Binary operator.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Short-circuit `&&` (`true`) or `||` (`false`).
    Logic(bool, Box<Expr>, Box<Expr>),
    /// `lhs = rhs` or `lhs op= rhs`.
    Assign(Option<BinOp>, Box<Expr>, Box<Expr>),
    /// `c ? t : e`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Call: callee (function name or pointer expression), arguments.
    Call(Box<Expr>, Vec<Expr>),
    /// `a[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// `s.f`.
    Member(Box<Expr>, String),
    /// `p->f`.
    Arrow(Box<Expr>, String),
    /// `(type) e`.
    Cast(Type, Box<Expr>),
    /// `sizeof(type)` or `sizeof expr` (folded to a type at parse time).
    Sizeof(Type),
    /// `(e)` — kept so tests can check parse shapes; semantically
    /// transparent.
    Paren(Box<Expr>),
}

impl Expr {
    /// Build an expression node.
    pub fn new(kind: ExprKind, pos: Pos) -> Expr {
        Expr { kind, pos }
    }
}

/// A local declaration (one declarator).
#[derive(Debug, Clone, PartialEq)]
pub struct LocalDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Optional scalar initializer.
    pub init: Option<Expr>,
    /// Source position.
    pub pos: Pos,
}

/// One `case`/`default` group of a switch: label values (empty for
/// `default`) and the statements up to the next label.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchArm {
    /// The case values; `None` marks the default arm.
    pub value: Option<i32>,
    /// Statements until the next label (fallthrough is preserved).
    pub body: Vec<Stmt>,
    /// Position of the label.
    pub pos: Pos,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Expression statement.
    Expr(Expr),
    /// Local declarations.
    Decl(Vec<LocalDecl>),
    /// Block.
    Block(Vec<Stmt>),
    /// `if (c) t else e`.
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while (c) body`.
    While(Expr, Box<Stmt>),
    /// `do body while (c);`.
    DoWhile(Box<Stmt>, Expr),
    /// `for (init; cond; step) body` (any part may be absent; `init` may
    /// be a declaration).
    For(Option<Box<Stmt>>, Option<Expr>, Option<Expr>, Box<Stmt>),
    /// `switch (e) { case …: … default: … }`, lowered by codegen to a
    /// decision tree (§6).
    Switch(Expr, Vec<SwitchArm>, Pos),
    /// `break;`
    Break(Pos),
    /// `continue;`
    Continue(Pos),
    /// `return e;` / `return;`
    Return(Option<Expr>, Pos),
    /// `;`
    Empty,
}

/// Global initializers.
#[derive(Debug, Clone, PartialEq)]
pub enum Init {
    /// A (constant) scalar expression.
    Expr(Expr),
    /// `{ a, b, … }` for arrays and structs.
    List(Vec<Init>),
}

/// A global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Name.
    pub name: String,
    /// Type (array lengths may have been inferred from the initializer).
    pub ty: Type,
    /// Optional initializer (absence puts the object in BSS).
    pub init: Option<Init>,
    /// Source position.
    pub pos: Pos,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters (name, type), in order.
    pub params: Vec<(String, Type)>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source position.
    pub pos: Pos,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// Global variable.
    Global(GlobalDecl),
    /// Function definition.
    Func(FuncDef),
    /// Function prototype (forward declaration).
    Proto(String, Box<crate::types::FuncSig>, Pos),
}

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Unit {
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// Struct registry.
    pub types: TypeTable,
}
