//! Semantic helpers: constant-expression evaluation and the usual
//! arithmetic conversions.

use crate::ast::{BinOp, Expr, ExprKind, UnOp};
use crate::types::{Type, TypeTable};

/// Evaluate an integer constant expression (array sizes, case labels,
/// global initializers). Returns `None` if the expression is not a
/// compile-time integer constant.
pub fn eval_const_int(e: &Expr, types: &TypeTable) -> Option<i32> {
    match &e.kind {
        ExprKind::Int(v, _) => Some(*v as i32),
        ExprKind::Char(c) => Some(i32::from(*c)),
        ExprKind::Sizeof(ty) => Some(ty.size(types) as i32),
        ExprKind::Paren(inner) => eval_const_int(inner, types),
        ExprKind::Cast(ty, inner) if ty.is_integer() => {
            let v = eval_const_int(inner, types)?;
            Some(match ty {
                Type::Char => i32::from(v as u8 as i8),
                Type::Short => i32::from(v as u16 as i16),
                _ => v,
            })
        }
        ExprKind::Unary(UnOp::Neg, inner) => Some(eval_const_int(inner, types)?.wrapping_neg()),
        ExprKind::Unary(UnOp::BitNot, inner) => Some(!eval_const_int(inner, types)?),
        ExprKind::Unary(UnOp::Not, inner) => Some(i32::from(eval_const_int(inner, types)? == 0)),
        ExprKind::Binary(op, a, b) => {
            let a = eval_const_int(a, types)?;
            let b = eval_const_int(b, types)?;
            Some(match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_div(b)
                }
                BinOp::Rem => {
                    if b == 0 {
                        return None;
                    }
                    a.wrapping_rem(b)
                }
                BinOp::And => a & b,
                BinOp::Or => a | b,
                BinOp::Xor => a ^ b,
                BinOp::Shl => a.wrapping_shl(b as u32 & 31),
                BinOp::Shr => a.wrapping_shr(b as u32 & 31),
                BinOp::Eq => i32::from(a == b),
                BinOp::Ne => i32::from(a != b),
                BinOp::Lt => i32::from(a < b),
                BinOp::Le => i32::from(a <= b),
                BinOp::Gt => i32::from(a > b),
                BinOp::Ge => i32::from(a >= b),
            })
        }
        ExprKind::Cond(c, t, f) => {
            if eval_const_int(c, types)? != 0 {
                eval_const_int(t, types)
            } else {
                eval_const_int(f, types)
            }
        }
        ExprKind::Logic(is_and, a, b) => {
            let a = eval_const_int(a, types)? != 0;
            if *is_and {
                if !a {
                    return Some(0);
                }
            } else if a {
                return Some(1);
            }
            Some(i32::from(eval_const_int(b, types)? != 0))
        }
        _ => None,
    }
}

/// Evaluate a floating constant expression (global `float`/`double`
/// initializers).
pub fn eval_const_double(e: &Expr, types: &TypeTable) -> Option<f64> {
    match &e.kind {
        ExprKind::Float(v) => Some(f64::from(*v)),
        ExprKind::Double(v) => Some(*v),
        ExprKind::Paren(inner) => eval_const_double(inner, types),
        ExprKind::Unary(UnOp::Neg, inner) => Some(-eval_const_double(inner, types)?),
        ExprKind::Cast(ty, inner) if ty.is_float() => eval_const_double(inner, types),
        _ => eval_const_int(e, types).map(f64::from),
    }
}

/// The usual arithmetic conversions: the common type two arithmetic
/// operands are brought to before a binary operator.
pub fn usual_arith(a: &Type, b: &Type) -> Type {
    if *a == Type::Double || *b == Type::Double {
        Type::Double
    } else if *a == Type::Float || *b == Type::Float {
        Type::Float
    } else if *a == Type::Uint || *b == Type::Uint {
        Type::Uint
    } else {
        Type::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::Pos;

    fn parse_expr(src: &str) -> (Expr, TypeTable) {
        // Reuse the full parser by wrapping the expression in a global
        // scalar initializer.
        let unit = crate::parser::parse(lex(&format!("int x = {src};")).unwrap()).unwrap();
        match &unit.items[..] {
            [crate::ast::Item::Global(g)] => match g.init.clone().unwrap() {
                crate::ast::Init::Expr(e) => (e, unit.types),
                _ => panic!("scalar init expected"),
            },
            _ => panic!("unexpected parse"),
        }
    }

    #[test]
    fn folds_arithmetic() {
        let (e, tt) = parse_expr("1 + 2 * 3 - (4 / 2)");
        assert_eq!(eval_const_int(&e, &tt), Some(5));
        let (e, tt) = parse_expr("1 << 4 | 1");
        assert_eq!(eval_const_int(&e, &tt), Some(17));
        let (e, tt) = parse_expr("-(3 % 2)");
        assert_eq!(eval_const_int(&e, &tt), Some(-1));
    }

    #[test]
    fn folds_sizeof_and_casts() {
        let (e, tt) = parse_expr("sizeof(int) + sizeof(double)");
        assert_eq!(eval_const_int(&e, &tt), Some(12));
        let (e, tt) = parse_expr("(char)300");
        assert_eq!(eval_const_int(&e, &tt), Some(44));
    }

    #[test]
    fn folds_conditionals_and_logic() {
        let (e, tt) = parse_expr("1 ? 7 : 9");
        assert_eq!(eval_const_int(&e, &tt), Some(7));
        let (e, tt) = parse_expr("0 && (1 / 0)");
        assert_eq!(eval_const_int(&e, &tt), Some(0));
        let (e, tt) = parse_expr("2 || 0");
        assert_eq!(eval_const_int(&e, &tt), Some(1));
    }

    #[test]
    fn division_by_zero_is_not_constant() {
        let (e, tt) = parse_expr("1 / 0");
        assert_eq!(eval_const_int(&e, &tt), None);
    }

    #[test]
    fn non_constants_are_rejected() {
        let e = Expr::new(ExprKind::Ident("x".into()), Pos::default());
        assert_eq!(eval_const_int(&e, &TypeTable::default()), None);
    }

    #[test]
    fn float_constants() {
        let (e, tt) = parse_expr("-2.5");
        assert_eq!(eval_const_double(&e, &tt), Some(-2.5));
        let (e, tt) = parse_expr("3");
        assert_eq!(eval_const_double(&e, &tt), Some(3.0));
    }

    #[test]
    fn usual_arith_ladder() {
        assert_eq!(usual_arith(&Type::Int, &Type::Double), Type::Double);
        assert_eq!(usual_arith(&Type::Float, &Type::Int), Type::Float);
        assert_eq!(usual_arith(&Type::Uint, &Type::Int), Type::Uint);
        assert_eq!(usual_arith(&Type::Char, &Type::Short), Type::Int);
    }
}
