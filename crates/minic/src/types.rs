//! The type system: C scalar types, pointers, arrays, flat structs, and
//! function signatures, with lcc-compatible sizes (32-bit target:
//! pointers and `int` are 4 bytes, `double` is 8).

use std::fmt;

/// A function signature.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncSig {
    /// Return type.
    pub ret: Type,
    /// Parameter types, in order.
    pub params: Vec<Type>,
}

/// A minic type.
#[derive(Debug, Clone, PartialEq)]
pub enum Type {
    /// `void` (function returns and `void *` pointees only).
    Void,
    /// Signed 8-bit `char`.
    Char,
    /// Signed 16-bit `short`.
    Short,
    /// Signed 32-bit `int`.
    Int,
    /// Unsigned 32-bit `unsigned`.
    Uint,
    /// 32-bit `float`.
    Float,
    /// 64-bit `double`.
    Double,
    /// Pointer.
    Ptr(Box<Type>),
    /// 1-D array with known length.
    Array(Box<Type>, u32),
    /// A struct, by index into the unit's [`TypeTable`].
    Struct(usize),
    /// A function; only appears behind pointers or as a declaration.
    Func(Box<FuncSig>),
}

impl Type {
    /// Shorthand for a pointer to `self`.
    pub fn ptr_to(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    /// Size in bytes.
    ///
    /// # Panics
    ///
    /// Panics on `void` and function types, which have no size.
    pub fn size(&self, table: &TypeTable) -> u32 {
        match self {
            Type::Void | Type::Func(_) => panic!("type {self} has no size"),
            Type::Char => 1,
            Type::Short => 2,
            Type::Int | Type::Uint | Type::Float | Type::Ptr(_) => 4,
            Type::Double => 8,
            Type::Array(elem, n) => elem.size(table) * n,
            Type::Struct(id) => table.structs[*id].size,
        }
    }

    /// Alignment in bytes.
    pub fn align(&self, table: &TypeTable) -> u32 {
        match self {
            Type::Void | Type::Func(_) => 1,
            Type::Char => 1,
            Type::Short => 2,
            Type::Int | Type::Uint | Type::Float | Type::Ptr(_) => 4,
            Type::Double => 8,
            Type::Array(elem, _) => elem.align(table),
            Type::Struct(id) => table.structs[*id].align,
        }
    }

    /// Integer type (char/short/int/unsigned)?
    pub fn is_integer(&self) -> bool {
        matches!(self, Type::Char | Type::Short | Type::Int | Type::Uint)
    }

    /// Floating type?
    pub fn is_float(&self) -> bool {
        matches!(self, Type::Float | Type::Double)
    }

    /// Arithmetic type?
    pub fn is_arith(&self) -> bool {
        self.is_integer() || self.is_float()
    }

    /// Pointer (after decay)?
    pub fn is_pointer(&self) -> bool {
        matches!(self, Type::Ptr(_) | Type::Array(_, _))
    }

    /// Scalar (usable in conditions)?
    pub fn is_scalar(&self) -> bool {
        self.is_arith() || self.is_pointer()
    }

    /// The pointee type after array decay.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) => Some(t),
            Type::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// Array-to-pointer and function-to-pointer decay for value contexts.
    pub fn decay(&self) -> Type {
        match self {
            Type::Array(elem, _) => Type::Ptr(elem.clone()),
            Type::Func(sig) => Type::Ptr(Box::new(Type::Func(sig.clone()))),
            other => other.clone(),
        }
    }

    /// The type a value of this type has after C's usual promotion:
    /// `char` and `short` promote to `int`.
    pub fn promote(&self) -> Type {
        match self {
            Type::Char | Type::Short => Type::Int,
            other => other.decay(),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Char => write!(f, "char"),
            Type::Short => write!(f, "short"),
            Type::Int => write!(f, "int"),
            Type::Uint => write!(f, "unsigned"),
            Type::Float => write!(f, "float"),
            Type::Double => write!(f, "double"),
            Type::Ptr(t) => write!(f, "{t} *"),
            Type::Array(t, n) => write!(f, "{t} [{n}]"),
            Type::Struct(id) => write!(f, "struct #{id}"),
            Type::Func(sig) => {
                write!(f, "{} (", sig.ret)?;
                for (i, p) in sig.params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// One struct field.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// Byte offset within the struct.
    pub offset: u32,
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// Tag name.
    pub name: String,
    /// Fields in declaration order, with computed offsets.
    pub fields: Vec<Field>,
    /// Total size (padded to alignment).
    pub size: u32,
    /// Alignment (max field alignment).
    pub align: u32,
}

impl StructDef {
    /// Find a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// The unit's struct registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TypeTable {
    /// All struct definitions, indexed by [`Type::Struct`].
    pub structs: Vec<StructDef>,
}

impl TypeTable {
    /// Reserve a struct id before its fields are known, so fields can
    /// point at the struct being defined (`struct Node *next`). Complete
    /// it with [`TypeTable::complete_struct`].
    pub fn declare_struct(&mut self, name: String) -> usize {
        self.structs.push(StructDef {
            name,
            fields: Vec::new(),
            size: 0,
            align: 1,
        });
        self.structs.len() - 1
    }

    /// Lay out the fields of a struct reserved with
    /// [`TypeTable::declare_struct`].
    ///
    /// # Panics
    ///
    /// Panics if a field embeds the struct inside itself by value (only
    /// pointer self-references are representable).
    pub fn complete_struct(&mut self, id: usize, fields: Vec<(String, Type)>) {
        for (_, ty) in &fields {
            assert_ne!(
                *ty,
                Type::Struct(id),
                "struct cannot contain itself by value"
            );
        }
        let mut offset = 0u32;
        let mut align = 1u32;
        let mut laid = Vec::with_capacity(fields.len());
        for (fname, ty) in fields {
            let a = ty.align(self);
            let size = ty.size(self);
            offset = offset.div_ceil(a) * a;
            laid.push(Field {
                name: fname,
                ty,
                offset,
            });
            offset += size;
            align = align.max(a);
        }
        let size = offset.div_ceil(align) * align;
        let def = &mut self.structs[id];
        def.fields = laid;
        def.size = size.max(1);
        def.align = align;
    }

    /// Lay out and register a struct; returns its id.
    pub fn define_struct(&mut self, name: String, fields: Vec<(String, Type)>) -> usize {
        let id = self.declare_struct(name);
        self.complete_struct(id, fields);
        id
    }

    /// Look up a struct by tag name.
    pub fn struct_by_name(&self, name: &str) -> Option<usize> {
        self.structs.iter().position(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes_match_the_32_bit_target() {
        let tt = TypeTable::default();
        assert_eq!(Type::Char.size(&tt), 1);
        assert_eq!(Type::Short.size(&tt), 2);
        assert_eq!(Type::Int.size(&tt), 4);
        assert_eq!(Type::Uint.size(&tt), 4);
        assert_eq!(Type::Float.size(&tt), 4);
        assert_eq!(Type::Double.size(&tt), 8);
        assert_eq!(Type::Int.ptr_to().size(&tt), 4);
        assert_eq!(Type::Array(Box::new(Type::Int), 10).size(&tt), 40);
    }

    #[test]
    fn struct_layout_pads_fields_and_total() {
        let mut tt = TypeTable::default();
        let id = tt.define_struct(
            "s".into(),
            vec![
                ("c".into(), Type::Char),
                ("d".into(), Type::Double),
                ("s".into(), Type::Short),
            ],
        );
        let s = &tt.structs[id];
        assert_eq!(s.field("c").unwrap().offset, 0);
        assert_eq!(s.field("d").unwrap().offset, 8);
        assert_eq!(s.field("s").unwrap().offset, 16);
        assert_eq!(s.align, 8);
        assert_eq!(s.size, 24);
        assert_eq!(Type::Struct(id).size(&tt), 24);
    }

    #[test]
    fn nested_struct_layout() {
        let mut tt = TypeTable::default();
        let inner = tt.define_struct(
            "inner".into(),
            vec![("a".into(), Type::Int), ("b".into(), Type::Char)],
        );
        assert_eq!(tt.structs[inner].size, 8);
        let outer = tt.define_struct(
            "outer".into(),
            vec![("c".into(), Type::Char), ("i".into(), Type::Struct(inner))],
        );
        let s = &tt.structs[outer];
        assert_eq!(s.field("i").unwrap().offset, 4);
        assert_eq!(s.size, 12);
    }

    #[test]
    fn decay_and_promotion() {
        let arr = Type::Array(Box::new(Type::Char), 3);
        assert_eq!(arr.decay(), Type::Char.ptr_to());
        assert!(arr.is_pointer());
        assert_eq!(Type::Char.promote(), Type::Int);
        assert_eq!(Type::Short.promote(), Type::Int);
        assert_eq!(Type::Uint.promote(), Type::Uint);
        let sig = FuncSig {
            ret: Type::Int,
            params: vec![],
        };
        let f = Type::Func(Box::new(sig));
        assert!(matches!(f.decay(), Type::Ptr(_)));
    }

    #[test]
    fn classification_predicates() {
        assert!(Type::Char.is_integer());
        assert!(!Type::Float.is_integer());
        assert!(Type::Double.is_float());
        assert!(Type::Int.is_arith());
        assert!(Type::Int.ptr_to().is_scalar());
        assert!(!Type::Void.is_scalar());
    }
}
