//! Seeded synthetic program generator.
//!
//! The paper's big training inputs are compilers (lcc, gcc): hundreds of
//! small-to-medium C functions full of repeated idioms — counter loops,
//! table scans, switch dispatch, clamp-and-accumulate patterns, chains of
//! helper calls. The generator emits mini-C with exactly those shapes,
//! deterministically from a seed, so corpora are reproducible and two
//! corpora with different seeds are *different programs drawn from the
//! same population* — which is what makes the self- vs cross-training
//! comparison of Table 1 meaningful.
//!
//! Generated programs are well-formed and runnable (indices are masked,
//! divisors are forced non-zero, loops are bounded), although the
//! compression experiments only need them to compile.

use pgr_bytecode::Program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Statement-mix flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// Compiler-shaped: switches, table lookups, helper-call chains,
    /// character-class tests.
    Compiler,
    /// Numeric: counted loops over arrays, accumulation, doubles.
    Numeric,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// RNG seed; corpora with different seeds are disjoint populations.
    pub seed: u64,
    /// Number of functions to generate (size knob).
    pub functions: usize,
    /// Statement mix.
    pub flavor: Flavor,
}

/// Generate a program (source, then compiled through `pgr-minic`).
///
/// # Panics
///
/// Panics if the generated source fails to compile — that would be a bug
/// in the generator, and the test suite compiles every flavour.
pub fn generate(config: &SynthConfig) -> Program {
    generate_with(config, &pgr_minic::Options::default())
}

/// Generate with explicit compiler options (e.g. the peephole optimizer
/// for the §6 optimization-interaction ablation).
pub fn generate_with(config: &SynthConfig, options: &pgr_minic::Options) -> Program {
    let source = generate_source(config);
    pgr_minic::compile_with(&source, options)
        .unwrap_or_else(|e| panic!("generated program failed to compile: {e}"))
}

/// Generate mini-C source text only.
pub fn generate_source(config: &SynthConfig) -> String {
    Gen::new(config).run()
}

struct Gen {
    rng: StdRng,
    flavor: Flavor,
    functions: usize,
    out: String,
    /// Names of functions generated so far (callable).
    callable: Vec<String>,
    /// (name, power-of-two length) of global int arrays.
    tables: Vec<(String, u32)>,
    /// Names of global int scalars.
    scalars: Vec<String>,
}

impl Gen {
    fn new(config: &SynthConfig) -> Gen {
        Gen {
            rng: StdRng::seed_from_u64(config.seed),
            flavor: config.flavor,
            functions: config.functions,
            out: String::new(),
            callable: Vec::new(),
            tables: Vec::new(),
            scalars: Vec::new(),
        }
    }

    fn pick<'a>(&mut self, items: &'a [String]) -> &'a str {
        let i = self.rng.gen_range(0..items.len());
        &items[i]
    }

    fn run(mut self) -> String {
        // Globals: lookup tables (a compiler staple) and state scalars.
        let n_tables = 3 + self.functions / 60;
        for t in 0..n_tables {
            let len = 1u32 << self.rng.gen_range(3..8);
            let name = format!("tab{t}");
            let _ = write!(self.out, "int {name}[{len}] = {{");
            for i in 0..len.min(12) {
                if i > 0 {
                    self.out.push_str(", ");
                }
                let _ = write!(self.out, "{}", self.rng.gen_range(0..997));
            }
            self.out.push_str("};\n");
            self.tables.push((name, len));
        }
        let n_scalars = 4 + self.functions / 80;
        for sidx in 0..n_scalars {
            let name = format!("g{sidx}");
            let _ = writeln!(self.out, "int {name} = {};", self.rng.gen_range(0..100));
            self.scalars.push(name);
        }
        if self.flavor == Flavor::Numeric {
            self.out.push_str("double dacc = 0.0;\n");
        }

        for f in 0..self.functions {
            self.function(f);
        }

        // main calls a sample of functions so everything is reachable-ish.
        self.out.push_str("int main(void) {\n    int r = 0;\n");
        let calls = (self.functions / 4).clamp(1, 40);
        for _ in 0..calls {
            let name = {
                let c = self.callable.clone();
                self.pick(&c).to_string()
            };
            let a = self.rng.gen_range(0..64);
            let b = self.rng.gen_range(0..64);
            let _ = writeln!(self.out, "    r ^= {name}({a}, {b});");
        }
        self.out.push_str("    return r & 127;\n}\n");
        self.out
    }

    fn function(&mut self, index: usize) {
        let name = format!("fn{index}");
        let _ = writeln!(self.out, "int {name}(int p0, int p1) {{");
        let locals = self.rng.gen_range(2..5);
        for l in 0..locals {
            let _ = writeln!(self.out, "    int v{l} = {};", self.rng.gen_range(0..16));
        }
        let vars: Vec<String> = (0..locals)
            .map(|l| format!("v{l}"))
            .chain(["p0".to_string(), "p1".to_string()])
            .collect();

        let stmts = self.rng.gen_range(3..12);
        for _ in 0..stmts {
            let s = self.statement(&vars, 1);
            self.out.push_str(&s);
        }
        let ret = self.expr(&vars, 2);
        let _ = writeln!(self.out, "    return {ret};\n}}");
        self.callable.push(name);
    }

    /// One statement (possibly compound), indented.
    fn statement(&mut self, vars: &[String], depth: u32) -> String {
        let pad = "    ".repeat(depth as usize);
        let template = if self.flavor == Flavor::Compiler {
            self.rng.gen_range(0..10)
        } else {
            // Numeric flavour: loops and accumulation dominate.
            [0, 1, 2, 2, 3, 3, 8, 9, 9, 5][self.rng.gen_range(0..10)]
        };
        match template {
            // Plain assignment with an expression.
            0 => {
                let v = self.pick(vars).to_string();
                let e = self.expr(vars, 2);
                format!("{pad}{v} = {e};\n")
            }
            // Compound assignment (the hottest idiom in real code).
            1 => {
                let v = self.pick(vars).to_string();
                let op = *["+=", "-=", "^=", "|=", "&="]
                    .get(self.rng.gen_range(0..5))
                    .expect("in range");
                let e = self.expr(vars, 1);
                format!("{pad}{v} {op} {e};\n")
            }
            // Counted loop over a table.
            2 => {
                let (t, len) = self.tables[self.rng.gen_range(0..self.tables.len())].clone();
                let acc = self.pick(vars).to_string();
                let body_op = if self.rng.gen_bool(0.5) { "+=" } else { "^=" };
                format!("{pad}{{ int i; for (i = 0; i < {len}; i++) {acc} {body_op} {t}[i]; }}\n")
            }
            // Bounded while with a counter.
            3 => {
                let v = self.pick(vars).to_string();
                let w = self.pick(vars).to_string();
                let cap = self.rng.gen_range(3..20);
                format!(
                    "{pad}{{ int n = 0; while ({v} > 0 && n < {cap}) {{ {v} >>= 1; {w} += 1; n++; }} }}\n"
                )
            }
            // If/else chain (clamp / classify).
            4 => {
                let v = self.pick(vars).to_string();
                let w = self.pick(vars).to_string();
                let a = self.rng.gen_range(0..50);
                let b = a + self.rng.gen_range(1..50);
                let mut s = format!("{pad}if ({v} < {a}) {{\n");
                s.push_str(&self.statement(vars, depth + 1));
                let _ = writeln!(s, "{pad}}} else if ({v} < {b}) {{");
                s.push_str(&self.statement(vars, depth + 1));
                let _ = write!(s, "{pad}}} else {{\n{pad}    {w} = {w} - {v};\n{pad}}}\n");
                s
            }
            // Switch dispatch (compiler bread and butter).
            5 => {
                let v = self.pick(vars).to_string();
                let w = self.pick(vars).to_string();
                let arms = self.rng.gen_range(3..8);
                let modulus = arms + self.rng.gen_range(0..3);
                let mut s = format!("{pad}switch ({v} % {modulus}) {{\n");
                for k in 0..arms {
                    let e = self.expr(vars, 1);
                    let _ = writeln!(s, "{pad}case {k}: {w} = {e}; break;");
                }
                let _ = write!(s, "{pad}default: {w} += 1;\n{pad}}}\n");
                s
            }
            // Table write with masked index.
            6 => {
                let (t, len) = self.tables[self.rng.gen_range(0..self.tables.len())].clone();
                let v = self.pick(vars).to_string();
                let e = self.expr(vars, 1);
                format!("{pad}{t}[({v} & {}) ] = {e};\n", len - 1)
            }
            // Helper call chain.
            7 => {
                if self.callable.is_empty() {
                    let v = self.pick(vars).to_string();
                    return format!("{pad}{v} += 1;\n");
                }
                let f = {
                    let c = self.callable.clone();
                    self.pick(&c).to_string()
                };
                let v = self.pick(vars).to_string();
                let a = self.expr(vars, 1);
                let b = self.expr(vars, 1);
                format!("{pad}{v} = {f}({a}, {b});\n")
            }
            // Global state update.
            8 => {
                let g = {
                    let c = self.scalars.clone();
                    self.pick(&c).to_string()
                };
                let e = self.expr(vars, 1);
                format!("{pad}{g} = ({g} + ({e})) & 65535;\n")
            }
            // For-loop accumulation (numeric flavour's favourite).
            _ => {
                let v = self.pick(vars).to_string();
                let n = self.rng.gen_range(2..12);
                if self.flavor == Flavor::Numeric && self.rng.gen_bool(0.3) {
                    format!(
                        "{pad}{{ int i; for (i = 0; i < {n}; i++) dacc = dacc + (double){v} * 0.5; }}\n"
                    )
                } else {
                    format!(
                        "{pad}{{ int i; for (i = 0; i < {n}; i++) {v} += i * {}; }}\n",
                        self.rng.gen_range(1..5)
                    )
                }
            }
        }
    }

    /// A side-effect-free integer expression.
    fn expr(&mut self, vars: &[String], depth: u32) -> String {
        if depth == 0 {
            return match self.rng.gen_range(0..4) {
                0 => self.rng.gen_range(0..256).to_string(),
                1 => {
                    let c = self.scalars.clone();
                    self.pick(&c).to_string()
                }
                _ => self.pick(vars).to_string(),
            };
        }
        match self.rng.gen_range(0..8) {
            0 => {
                let a = self.expr(vars, depth - 1);
                let b = self.expr(vars, depth - 1);
                let op = ["+", "-", "*", "&", "|", "^"][self.rng.gen_range(0..6)];
                format!("({a} {op} {b})")
            }
            1 => {
                // Safe division/remainder: divisor forced odd.
                let a = self.expr(vars, depth - 1);
                let b = self.expr(vars, depth - 1);
                let op = if self.rng.gen_bool(0.5) { "/" } else { "%" };
                format!("({a} {op} (({b} & 15) | 1))")
            }
            2 => {
                let a = self.expr(vars, depth - 1);
                let sh = self.rng.gen_range(1..8);
                let op = if self.rng.gen_bool(0.5) { "<<" } else { ">>" };
                format!("({a} {op} {sh})")
            }
            3 => {
                let (t, len) = self.tables[self.rng.gen_range(0..self.tables.len())].clone();
                let i = self.expr(vars, depth - 1);
                format!("{t}[({i}) & {}]", len - 1)
            }
            4 => {
                let a = self.expr(vars, depth - 1);
                let b = self.expr(vars, depth - 1);
                let op = ["<", "<=", "==", "!="][self.rng.gen_range(0..4)];
                format!("({a} {op} {b})")
            }
            _ => self.expr(vars, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgr_bytecode::validate_program;

    #[test]
    fn generation_is_deterministic() {
        let config = SynthConfig {
            seed: 7,
            functions: 20,
            flavor: Flavor::Compiler,
        };
        assert_eq!(generate_source(&config), generate_source(&config));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_source(&SynthConfig {
            seed: 1,
            functions: 10,
            flavor: Flavor::Compiler,
        });
        let b = generate_source(&SynthConfig {
            seed: 2,
            functions: 10,
            flavor: Flavor::Compiler,
        });
        assert_ne!(a, b);
    }

    #[test]
    fn both_flavors_compile_and_validate() {
        for flavor in [Flavor::Compiler, Flavor::Numeric] {
            let program = generate(&SynthConfig {
                seed: 42,
                functions: 30,
                flavor,
            });
            validate_program(&program).unwrap();
            assert!(program.procs.len() > 30);
        }
    }

    #[test]
    fn function_count_scales_size() {
        let small = generate(&SynthConfig {
            seed: 5,
            functions: 10,
            flavor: Flavor::Compiler,
        });
        let large = generate(&SynthConfig {
            seed: 5,
            functions: 60,
            flavor: Flavor::Compiler,
        });
        assert!(large.code_size() > small.code_size() * 3);
    }
}
