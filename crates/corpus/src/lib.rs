//! # pgr-corpus
//!
//! Benchmark programs and corpora standing in for the paper's §6 inputs.
//!
//! The paper trains and evaluates on the lcc bytecode of four C programs:
//! `gcc` (1,423,370 B), `lcc` (199,497 B), `gzip` (47,066 B), and `8q`
//! (436 B). Those binaries and lcc itself are unavailable, so this crate
//! provides the closest synthetic equivalents, compiled by `pgr-minic`:
//!
//! * a suite of *real* mini-C programs ([`SAMPLES`]): the paper's eight
//!   queens, an LZSS compressor (a compression utility, like gzip), a
//!   recursive-descent calculator (compiler-shaped code, like lcc/gcc),
//!   CRC-32, sorting, a prime sieve, game of life, matrix multiply, and
//!   string/hash utilities;
//! * a seeded synthetic program generator ([`synth`]) that emits
//!   compiler-flavoured mini-C (switch dispatch, table lookups, field
//!   accesses, helper-call chains) to reach the larger corpora's scale;
//! * the four named corpora ([`corpus`]): `EightQ`, `Gzip`, `Lcc`, and
//!   `Gcc`, with disjoint generator seeds so the paper's self- versus
//!   cross-training comparison is meaningful. Sizes are scaled down
//!   about 4× from the paper's (compression *ratios*, which §6 reports,
//!   are size-stable; training time is not).

#![warn(missing_docs)]

pub mod synth;

use pgr_bytecode::Program;

/// The embedded sample programs: `(name, mini-C source)`.
pub const SAMPLES: &[(&str, &str)] = &[
    ("8q", include_str!("programs/eightq.c")),
    ("lzss", include_str!("programs/lzss.c")),
    ("crc32", include_str!("programs/crc32.c")),
    ("sort", include_str!("programs/sort.c")),
    ("sieve", include_str!("programs/sieve.c")),
    ("matmul", include_str!("programs/matmul.c")),
    ("life", include_str!("programs/life.c")),
    ("calc", include_str!("programs/calc.c")),
    ("fmt", include_str!("programs/fmt.c")),
    ("mixed", include_str!("programs/mixed.c")),
];

/// Fetch a sample program's source by name.
pub fn sample_source(name: &str) -> Option<&'static str> {
    SAMPLES
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, src)| *src)
}

/// Compile a sample program.
///
/// # Panics
///
/// Panics if the name is unknown or the sample fails to compile — the
/// samples are part of this crate and compile by construction (the test
/// suite runs all of them).
pub fn compile_sample(name: &str) -> Program {
    compile_sample_with(name, &pgr_minic::Options::default())
}

/// Compile a sample program with explicit compiler options.
///
/// # Panics
///
/// Same as [`compile_sample`].
pub fn compile_sample_with(name: &str, options: &pgr_minic::Options) -> Program {
    let src = sample_source(name).unwrap_or_else(|| panic!("unknown sample {name}"));
    pgr_minic::compile_with(src, options)
        .unwrap_or_else(|e| panic!("sample {name} failed to compile: {e}"))
}

/// The four §6 corpora.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorpusName {
    /// The paper's `gcc`: the largest, compiler-flavoured corpus.
    Gcc,
    /// The paper's `lcc`: a medium compiler-flavoured corpus.
    Lcc,
    /// The paper's `gzip`: a compression utility.
    Gzip,
    /// The paper's `8q`: eight queens, the tiny input.
    EightQ,
}

impl CorpusName {
    /// All four, in the paper's Table 1 order.
    pub const ALL: &'static [CorpusName] = &[
        CorpusName::Gcc,
        CorpusName::Lcc,
        CorpusName::Gzip,
        CorpusName::EightQ,
    ];

    /// Display name as in Table 1.
    pub fn label(self) -> &'static str {
        match self {
            CorpusName::Gcc => "gcc",
            CorpusName::Lcc => "lcc",
            CorpusName::Gzip => "gzip",
            CorpusName::EightQ => "8q",
        }
    }
}

/// A corpus: one or more compiled programs treated as one input.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Which corpus this is.
    pub name: CorpusName,
    /// The member programs.
    pub programs: Vec<Program>,
}

impl Corpus {
    /// Total uncompressed bytecode bytes across members.
    pub fn code_size(&self) -> usize {
        self.programs.iter().map(|p| p.code_size()).sum()
    }

    /// Borrowed view for APIs that take `&[&Program]`.
    pub fn refs(&self) -> Vec<&Program> {
        self.programs.iter().collect()
    }
}

/// Build a corpus at its default scale.
///
/// `Gcc` and `Lcc` are mostly synthetic (disjoint seeds and slightly
/// different statement mixes, so they are *different* populations with
/// the same flavour, like two different compilers); `Gzip` is the real
/// compression-utility suite; `EightQ` is the single tiny program.
pub fn corpus(name: CorpusName) -> Corpus {
    corpus_with_options(name, &pgr_minic::Options::default())
}

/// Build a corpus with explicit compiler options (the §6
/// optimization-interaction ablation compiles the same sources with the
/// peephole optimizer on).
pub fn corpus_with_options(name: CorpusName, options: &pgr_minic::Options) -> Corpus {
    let programs = match name {
        CorpusName::EightQ => vec![compile_sample_with("8q", options)],
        CorpusName::Gzip => vec![
            compile_sample_with("lzss", options),
            compile_sample_with("crc32", options),
            compile_sample_with("fmt", options),
        ],
        CorpusName::Lcc => {
            let mut programs = vec![
                compile_sample_with("calc", options),
                compile_sample_with("sort", options),
            ];
            programs.push(synth::generate_with(
                &synth::SynthConfig {
                    seed: 71995, // same value as before; written plainly
                    functions: 160,
                    flavor: synth::Flavor::Compiler,
                },
                options,
            ));
            programs
        }
        CorpusName::Gcc => {
            let mut programs = vec![
                compile_sample_with("sieve", options),
                compile_sample_with("life", options),
                compile_sample_with("matmul", options),
                compile_sample_with("mixed", options),
            ];
            programs.push(synth::generate_with(
                &synth::SynthConfig {
                    seed: 31987,
                    functions: 420,
                    flavor: synth::Flavor::Compiler,
                },
                options,
            ));
            programs.push(synth::generate_with(
                &synth::SynthConfig {
                    seed: 12_2001,
                    functions: 160,
                    flavor: synth::Flavor::Numeric,
                },
                options,
            ));
            programs
        }
    };
    Corpus { name, programs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgr_bytecode::validate_program;
    use pgr_vm::{Vm, VmConfig};

    #[test]
    fn all_samples_compile_and_validate() {
        for (name, _) in SAMPLES {
            let program = compile_sample(name);
            validate_program(&program).unwrap_or_else(|e| panic!("sample {name} invalid: {e}"));
            assert!(program.code_size() > 0);
        }
    }

    #[test]
    fn samples_run_successfully() {
        for (name, _) in SAMPLES {
            let program = compile_sample(name);
            let mut vm = Vm::new(&program, VmConfig::default()).unwrap();
            let result = vm
                .run()
                .unwrap_or_else(|e| panic!("sample {name} crashed: {e}"));
            let code = result.exit_code.unwrap_or_else(|| result.ret.i());
            assert_eq!(code, if *name == "8q" { 92 } else { 0 }, "sample {name}");
        }
    }

    #[test]
    fn eight_queens_finds_92_solutions() {
        let program = compile_sample("8q");
        let mut vm = Vm::new(&program, VmConfig::default()).unwrap();
        let result = vm.run().unwrap();
        let text = String::from_utf8(result.output).unwrap();
        assert!(text.trim_end().ends_with("92"));
        assert!(text.contains('Q'));
    }

    #[test]
    fn lzss_roundtrips_its_text() {
        let program = compile_sample("lzss");
        let mut vm = Vm::new(&program, VmConfig::default()).unwrap();
        let result = vm.run().unwrap();
        let text = String::from_utf8(result.output).unwrap();
        assert!(text.contains("ok"), "lzss output: {text}");
        assert!(text.contains("in=2500"));
    }

    #[test]
    fn sieve_counts_primes() {
        let program = compile_sample("sieve");
        let mut vm = Vm::new(&program, VmConfig::default()).unwrap();
        let result = vm.run().unwrap();
        assert!(String::from_utf8(result.output)
            .unwrap()
            .starts_with("1229 "));
    }

    #[test]
    fn corpora_have_the_papers_relative_scale() {
        let sizes: Vec<(CorpusName, usize)> = CorpusName::ALL
            .iter()
            .map(|&n| (n, corpus(n).code_size()))
            .collect();
        let get = |n: CorpusName| sizes.iter().find(|(m, _)| *m == n).unwrap().1;
        // gcc > lcc > gzip > 8q, with 8q tiny (paper: 436 bytes).
        assert!(get(CorpusName::Gcc) > get(CorpusName::Lcc));
        assert!(get(CorpusName::Lcc) > get(CorpusName::Gzip));
        assert!(get(CorpusName::Gzip) > get(CorpusName::EightQ));
        assert!(get(CorpusName::EightQ) < 1500);
        assert!(get(CorpusName::Gcc) > 100_000);
    }

    #[test]
    fn corpora_exercise_nearly_the_whole_instruction_set() {
        use pgr_bytecode::{decode, Opcode};
        let mut seen = [false; Opcode::COUNT];
        for &name in CorpusName::ALL {
            for p in &corpus(name).programs {
                for proc in &p.procs {
                    for insn in decode(&proc.code).flatten() {
                        seen[insn.opcode as usize] = true;
                    }
                }
            }
        }
        // CVU1U4/CVU2U4 are unreachable in the mini-C dialect (it has no
        // distinct unsigned char/short types); everything else must
        // appear somewhere in the corpora, as it would in lcc's output.
        let missing: Vec<&str> = Opcode::ALL
            .iter()
            .filter(|&&o| !seen[o as usize])
            .map(|o| o.name())
            .collect();
        assert_eq!(missing, vec!["CVU1U4", "CVU2U4"], "coverage regressed");
    }

    #[test]
    fn corpora_validate() {
        for &name in CorpusName::ALL {
            for program in &corpus(name).programs {
                validate_program(program).unwrap();
            }
        }
    }
}
