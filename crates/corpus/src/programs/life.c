/* life: Conway's game of life on a 32x32 torus for 40 generations,
 * exercising nested loops, modular indexing, and double buffering. */

char grid[1024];
char next[1024];

int at(int r, int c) {
    r = (r + 32) % 32;
    c = (c + 32) % 32;
    return grid[r * 32 + c];
}

int main(void) {
    int gen;
    int r;
    int c;
    int alive = 0;
    unsigned seed = 7u;
    for (r = 0; r < 1024; r++) {
        seed = seed * 1103515245u + 12345u;
        grid[r] = (char)((seed >> 16) & 1u);
    }
    for (gen = 0; gen < 40; gen++) {
        for (r = 0; r < 32; r++) {
            for (c = 0; c < 32; c++) {
                int n = at(r - 1, c - 1) + at(r - 1, c) + at(r - 1, c + 1)
                      + at(r, c - 1) + at(r, c + 1)
                      + at(r + 1, c - 1) + at(r + 1, c) + at(r + 1, c + 1);
                if (grid[r * 32 + c]) {
                    next[r * 32 + c] = (char)(n == 2 || n == 3);
                } else {
                    next[r * 32 + c] = (char)(n == 3);
                }
            }
        }
        memcpy((void *)grid, (void *)next, 1024u);
    }
    for (r = 0; r < 1024; r++) {
        alive += grid[r];
    }
    putint(alive);
    putchar('\n');
    return 0;
}
