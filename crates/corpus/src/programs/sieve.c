/* sieve: Eratosthenes over 10000, plus a digit-sum pass over the primes. */

char composite[10001];

int main(void) {
    int i;
    int j;
    int count = 0;
    int digit_sum = 0;
    for (i = 2; i * i <= 10000; i++) {
        if (!composite[i]) {
            for (j = i * i; j <= 10000; j += i) {
                composite[j] = 1;
            }
        }
    }
    for (i = 2; i <= 10000; i++) {
        if (!composite[i]) {
            int v = i;
            count++;
            while (v > 0) {
                digit_sum += v % 10;
                v /= 10;
            }
        }
    }
    putint(count);
    putchar(' ');
    putint(digit_sum);
    putchar('\n');
    return count == 1229 ? 0 : 1;
}
