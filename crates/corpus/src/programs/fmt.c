/* fmt: string and number formatting routines — strcpy/strcmp-style
 * pointer loops and division-heavy itoa, plus a tiny hash table over
 * malloc'd nodes (structs and function pointers included). */

struct Node {
    int key;
    int value;
    struct Node *next;
};

struct Node *buckets[16];

char out[64];

int str_len(char *s) {
    int n = 0;
    while (s[n]) {
        n++;
    }
    return n;
}

int str_cmp(char *a, char *b) {
    int i = 0;
    while (a[i] && a[i] == b[i]) {
        i++;
    }
    return (a[i] & 255) - (b[i] & 255);
}

void str_copy(char *dst, char *src) {
    int i = 0;
    while (src[i]) {
        dst[i] = src[i];
        i++;
    }
    dst[i] = 0;
}

void itoa10(int v, char *dst) {
    char tmp[16];
    int n = 0;
    int neg = 0;
    int i;
    if (v < 0) {
        neg = 1;
        v = -v;
    }
    do {
        tmp[n++] = (char)('0' + v % 10);
        v /= 10;
    } while (v > 0);
    i = 0;
    if (neg) {
        dst[i++] = '-';
    }
    while (n > 0) {
        dst[i++] = tmp[--n];
    }
    dst[i] = 0;
}

int hash_key(int key) {
    unsigned h = (unsigned)key * 2654435761u;
    return (int)(h >> 28);
}

void table_put(int key, int value) {
    int b = hash_key(key);
    struct Node *n = (struct Node *)malloc(sizeof(struct Node));
    n->key = key;
    n->value = value;
    n->next = buckets[b];
    buckets[b] = n;
}

int table_get(int key) {
    struct Node *n = buckets[hash_key(key)];
    while (n) {
        if (n->key == key) {
            return n->value;
        }
        n = n->next;
    }
    return -1;
}

int apply_twice(int (*f)(int), int v) {
    return f(f(v));
}

int succ(int v) {
    return v + 1;
}

int main(void) {
    int i;
    int hits = 0;
    itoa10(-30127, out);
    putstr(out);
    putchar(' ');
    putint(str_len(out));
    putchar(' ');
    str_copy(out, "formatted");
    putint(str_cmp(out, "formatted"));
    putchar(' ');
    for (i = 0; i < 40; i++) {
        table_put(i * 7, i);
    }
    for (i = 0; i < 40; i++) {
        if (table_get(i * 7) == i) {
            hits++;
        }
    }
    putint(hits);
    putchar(' ');
    putint(apply_twice(succ, 40));
    putchar('\n');
    return 0;
}
