/* matmul: dense double-precision matrix multiply with a checksum,
 * exercising 2-D arrays, doubles, and float/int conversion. */

double a[24][24];
double b[24][24];
double c[24][24];

int main(void) {
    int i;
    int j;
    int k;
    double sum;
    double checksum = 0.0;
    for (i = 0; i < 24; i++) {
        for (j = 0; j < 24; j++) {
            a[i][j] = (double)(i + j) * 0.5;
            b[i][j] = (double)(i - j) * 0.25;
            c[i][j] = 0.0;
        }
    }
    for (i = 0; i < 24; i++) {
        for (j = 0; j < 24; j++) {
            sum = 0.0;
            for (k = 0; k < 24; k++) {
                sum = sum + a[i][k] * b[k][j];
            }
            c[i][j] = sum;
        }
    }
    for (i = 0; i < 24; i++) {
        checksum = checksum + c[i][i];
    }
    putint((int)checksum);
    putchar('\n');
    return 0;
}
