/* sort: quicksort, insertion sort, and binary search over the same data,
 * exercising recursion, pointer parameters, and comparison-heavy loops. */

int data[512];
int copy1[512];
int copy2[512];

unsigned seed;

int next_rand(void) {
    seed = seed * 1103515245u + 12345u;
    return (int)((seed >> 16) & 32767u);
}

void fill(void) {
    int i;
    seed = 99u;
    for (i = 0; i < 512; i++) {
        data[i] = next_rand();
    }
}

void swap(int *a, int *b) {
    int t = *a;
    *a = *b;
    *b = t;
}

void quicksort(int *a, int lo, int hi) {
    int pivot;
    int i;
    int j;
    if (lo >= hi) {
        return;
    }
    pivot = a[(lo + hi) / 2];
    i = lo;
    j = hi;
    while (i <= j) {
        while (a[i] < pivot) i++;
        while (a[j] > pivot) j--;
        if (i <= j) {
            swap(&a[i], &a[j]);
            i++;
            j--;
        }
    }
    quicksort(a, lo, j);
    quicksort(a, i, hi);
}

void insertion_sort(int *a, int n) {
    int i;
    for (i = 1; i < n; i++) {
        int v = a[i];
        int j = i - 1;
        while (j >= 0 && a[j] > v) {
            a[j + 1] = a[j];
            j--;
        }
        a[j + 1] = v;
    }
}

int binary_search(int *a, int n, int key) {
    int lo = 0;
    int hi = n - 1;
    while (lo <= hi) {
        int mid = (lo + hi) / 2;
        if (a[mid] == key) {
            return mid;
        }
        if (a[mid] < key) {
            lo = mid + 1;
        } else {
            hi = mid - 1;
        }
    }
    return -1;
}

int main(void) {
    int i;
    int mismatches = 0;
    int found = 0;
    fill();
    for (i = 0; i < 512; i++) {
        copy1[i] = data[i];
        copy2[i] = data[i];
    }
    quicksort(copy1, 0, 511);
    insertion_sort(copy2, 512);
    for (i = 0; i < 512; i++) {
        if (copy1[i] != copy2[i]) {
            mismatches++;
        }
        if (i > 0 && copy1[i] < copy1[i - 1]) {
            mismatches++;
        }
    }
    for (i = 0; i < 512; i++) {
        if (binary_search(copy1, 512, data[i]) >= 0) {
            found++;
        }
    }
    putint(mismatches);
    putchar(' ');
    putint(found);
    putchar('\n');
    return mismatches;
}
