/* crc32: table-driven CRC-32 over a generated buffer — the classic
 * embedded-systems kernel of table initialization plus a tight loop. */

unsigned crc_table[256];
char buf[2048];

void init_table(void) {
    unsigned c;
    int n;
    int k;
    for (n = 0; n < 256; n++) {
        c = (unsigned)n;
        for (k = 0; k < 8; k++) {
            if (c & 1u) {
                c = 3988292384u ^ (c >> 1);
            } else {
                c = c >> 1;
            }
        }
        crc_table[n] = c;
    }
}

unsigned crc32(char *data, int len) {
    unsigned c = 4294967295u;
    int i;
    for (i = 0; i < len; i++) {
        c = crc_table[(c ^ (unsigned)(data[i] & 255)) & 255u] ^ (c >> 8);
    }
    return c ^ 4294967295u;
}

int main(void) {
    int i;
    unsigned sum;
    init_table();
    for (i = 0; i < 2048; i++) {
        buf[i] = (char)(i * 31 + (i >> 3));
    }
    sum = crc32(buf, 2048);
    putuint(sum);
    putchar('\n');
    /* CRC of the CRC table itself, for a second call site. */
    sum = crc32((char *)crc_table, 1024);
    putuint(sum);
    putchar('\n');
    return 0;
}
