/* calc: a recursive-descent expression evaluator over a character
 * string — compiler-shaped code (scanner, parser, switch dispatch),
 * the flavour the lcc/gcc training inputs are made of. */

char *input;
int pos;
int failed;

int parse_expr(void);

int peek(void) {
    return input[pos] & 255;
}

void skip_spaces(void) {
    while (peek() == ' ') {
        pos++;
    }
}

int parse_number(void) {
    int v = 0;
    int saw = 0;
    skip_spaces();
    while (peek() >= '0' && peek() <= '9') {
        v = v * 10 + (peek() - '0');
        pos++;
        saw = 1;
    }
    if (!saw) {
        failed = 1;
    }
    return v;
}

int parse_primary(void) {
    skip_spaces();
    switch (peek()) {
        case '(': {
            int v;
            pos++;
            v = parse_expr();
            skip_spaces();
            if (peek() == ')') {
                pos++;
            } else {
                failed = 1;
            }
            return v;
        }
        case '-':
            pos++;
            return -parse_primary();
        case '+':
            pos++;
            return parse_primary();
        default:
            return parse_number();
    }
}

int parse_term(void) {
    int v = parse_primary();
    while (1) {
        int op;
        skip_spaces();
        op = peek();
        if (op == '*') {
            pos++;
            v = v * parse_primary();
        } else if (op == '/') {
            int d;
            pos++;
            d = parse_primary();
            if (d == 0) {
                failed = 1;
                d = 1;
            }
            v = v / d;
        } else if (op == '%') {
            int d;
            pos++;
            d = parse_primary();
            if (d == 0) {
                failed = 1;
                d = 1;
            }
            v = v % d;
        } else {
            break;
        }
    }
    return v;
}

int parse_expr(void) {
    int v = parse_term();
    while (1) {
        int op;
        skip_spaces();
        op = peek();
        if (op == '+') {
            pos++;
            v = v + parse_term();
        } else if (op == '-') {
            pos++;
            v = v - parse_term();
        } else {
            break;
        }
    }
    return v;
}

int eval(char *s) {
    input = s;
    pos = 0;
    failed = 0;
    return parse_expr();
}

int main(void) {
    int total = 0;
    total += eval("1 + 2 * 3");
    total += eval("(4 + 5) * (6 - 2)");
    total += eval("100 / 7 % 5");
    total += eval("-8 + +9");
    total += eval("((((1))))");
    total += eval("2*3*4*5 - 100");
    putint(total);
    putchar('\n');
    return failed;
}
