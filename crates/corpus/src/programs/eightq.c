/* 8q: the paper's eight-queens benchmark (its smallest input, 436 bytes
 * of bytecode in the original). Counts and prints the solutions. */

int rows[8];
int diag1[15];
int diag2[15];
int board[8];
int count;

void print_board(void) {
    int r;
    int c;
    for (r = 0; r < 8; r++) {
        for (c = 0; c < 8; c++) {
            putchar(board[r] == c ? 'Q' : '.');
        }
        putchar('\n');
    }
    putchar('\n');
}

void place(int c) {
    int r;
    if (c == 8) {
        count++;
        if (count == 1) {
            print_board();
        }
        return;
    }
    for (r = 0; r < 8; r++) {
        if (!rows[r] && !diag1[r + c] && !diag2[r - c + 7]) {
            rows[r] = 1;
            diag1[r + c] = 1;
            diag2[r - c + 7] = 1;
            board[c] = r;
            place(c + 1);
            rows[r] = 0;
            diag1[r + c] = 0;
            diag2[r - c + 7] = 0;
        }
    }
}

int main(void) {
    count = 0;
    place(0);
    putint(count);
    putchar('\n');
    return count;
}
