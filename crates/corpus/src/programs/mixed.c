/* mixed: deliberately exercises the corners of the instruction set the
 * other samples miss — float/double arithmetic and comparisons, all the
 * conversions, unsigned division and ordering, shorts, block copies,
 * by-value structs, float-returning functions, and function pointers of
 * every return class. */

struct Sample {
    short tag;
    float weight;
    double score;
    int pad;
};

struct Sample samples[4];
short histogram[8];
float fsum;
double dsum;

float scale(float x) {
    return x * 0.5f + 1.0f;
}

double power(double base, int n) {
    double r = 1.0;
    while (n > 0) {
        if (n & 1) {
            r = r * base;
        }
        base = base * base;
        n >>= 1;
    }
    return r;
}

float apply_f(float (*f)(float), float v) {
    return f(v);
}

double apply_d(double (*f)(double, int), double v, int n) {
    return f(v, n);
}

int classify_f(float a, float b) {
    int bits = 0;
    if (a == b) bits |= 1;
    if (a != b) bits |= 2;
    if (a < b) bits |= 4;
    if (a <= b) bits |= 8;
    if (a > b) bits |= 16;
    if (a >= b) bits |= 32;
    return bits;
}

int classify_d(double a, double b) {
    int bits = 0;
    if (a == b) bits |= 1;
    if (a != b) bits |= 2;
    if (a < b) bits |= 4;
    if (a <= b) bits |= 8;
    if (a > b) bits |= 16;
    if (a >= b) bits |= 32;
    return bits;
}

unsigned mix_unsigned(unsigned a, unsigned b) {
    unsigned r = a / (b | 1u);
    r += a % (b | 3u);
    r ^= ~a;
    r <<= 2;
    if (a > b) r += 1u;
    if (a >= b) r += 2u;
    if (a < b) r += 4u;
    if (a <= b) r += 8u;
    return r;
}

void nudge(struct Sample *dst, struct Sample s) {
    s.tag = (short)(s.tag + 1);
    s.weight = -s.weight;
    s.score = s.score - 0.25;
    *dst = s;
}

int main(void) {
    int i;
    int acc = 0;
    float f = 0.125f;
    double d = 2.0;
    struct Sample tmp;

    /* Short-typed memory traffic. */
    for (i = 0; i < 8; i++) {
        histogram[i] = (short)(i * 1000 - 2500);
    }
    for (i = 0; i < 8; i++) {
        if (histogram[i] < 0) acc++;
    }

    /* Floats: arithmetic, negation, conversions, calls. */
    fsum = 0.0f;
    for (i = 1; i <= 4; i++) {
        f = scale(f) / (float)i - 0.5f;
        fsum = fsum + f;
    }
    acc += (int)(fsum * 8.0f);
    acc += classify_f(1.5f, 2.5f);
    acc += classify_f(2.5f, 2.5f);
    acc += (int)apply_f(scale, 6.0f);

    /* Doubles: division, subtraction, comparisons, powers. */
    dsum = power(1.5, 5) - power(2.0, 3) / 4.0;
    d = -dsum;
    acc += classify_d(d, 0.0);
    acc += (int)apply_d(power, 2.0, 10);
    acc += (int)(float)dsum;           /* CVDF then CVFI */
    acc += (int)(double)(f + 1.0f);    /* CVFD then CVDI */

    /* Unsigned corners and a 3-byte literal. */
    acc += (int)mix_unsigned(3000000000u, 7u);
    acc += (int)(1000000u >> 4);

    /* Structs: member stores of every class, by-value args, block copy. */
    samples[0].tag = 7;
    samples[0].weight = 1.25f;
    samples[0].score = 0.75;
    samples[0].pad = 0;
    nudge(&tmp, samples[0]);
    samples[1] = tmp;
    acc += samples[1].tag + (int)samples[1].weight + (int)(samples[1].score * 4.0);
    acc += samples[0].tag;             /* by-value: unchanged */

    /* Discarded float/double results (POPF/POPD). */
    scale(9.0f);
    power(3.0, 2);

    putint(acc);
    putchar('\n');
    return 0;
}
