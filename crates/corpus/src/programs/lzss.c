/* lzss: a dictionary compressor, standing in for the paper's gzip input
 * (the bytecode of a compression utility). Builds a deterministic
 * pseudo-text, compresses it with LZSS (greedy longest
 * match within a 127-byte window), decompresses, verifies, and prints the sizes. */

char text[4096];
char packed[8192];
char unpacked[4096];
int text_len;
int packed_len;

unsigned seed;

int next_rand(void) {
    seed = seed * 1103515245u + 12345u;
    return (int)((seed >> 16) & 32767u);
}

/* Fill `text` with word-like pseudo-text so there are real matches. */
void make_text(void) {
    char *words = "the quick brown fox jumps over lazy dogs compress ";
    int wlen = 51;
    int i = 0;
    int w;
    seed = 20010614u;
    text_len = 2500;
    while (i < text_len) {
        w = next_rand() % wlen;
        text[i] = words[w];
        if (next_rand() % 7 == 0) {
            text[i] = 'a' + next_rand() % 26;
        }
        i++;
    }
}

int match_len(int a, int b, int limit) {
    int n = 0;
    while (n < limit && text[a + n] == text[b + n]) {
        n++;
    }
    return n;
}

/* Emit: flag byte 1 + literal, or flag 2 + offset(2) + length(1). */
void compress(void) {
    int pos = 0;
    packed_len = 0;
    while (pos < text_len) {
        int best_len = 0;
        int best_off = 0;
        int start = pos - 127;
        int cand;
        int limit = text_len - pos;
        if (start < 0) {
            start = 0;
        }
        if (limit > 60) {
            limit = 60;
        }
        for (cand = start; cand < pos; cand++) {
            int n = match_len(cand, pos, limit);
            if (n > best_len) {
                best_len = n;
                best_off = pos - cand;
            }
        }
        if (best_len >= 4) {
            packed[packed_len++] = 2;
            packed[packed_len++] = (char)(best_off & 255);
            packed[packed_len++] = (char)(best_off >> 8);
            packed[packed_len++] = (char)best_len;
            pos += best_len;
        } else {
            packed[packed_len++] = 1;
            packed[packed_len++] = text[pos];
            pos++;
        }
    }
}

int decompress(void) {
    int in = 0;
    int out = 0;
    while (in < packed_len) {
        int tag = packed[in++];
        if (tag == 1) {
            unpacked[out++] = packed[in++];
        } else {
            int off = (packed[in] & 255) + ((packed[in + 1] & 255) << 8);
            int len = packed[in + 2] & 255;
            int k;
            in += 3;
            for (k = 0; k < len; k++) {
                unpacked[out] = unpacked[out - off];
                out++;
            }
        }
    }
    return out;
}

int main(void) {
    int i;
    int out_len;
    int ok = 1;
    make_text();
    compress();
    out_len = decompress();
    if (out_len != text_len) {
        ok = 0;
    }
    for (i = 0; i < text_len; i++) {
        if (text[i] != unpacked[i]) {
            ok = 0;
            break;
        }
    }
    putstr("in=");
    putint(text_len);
    putstr(" out=");
    putint(packed_len);
    putstr(ok ? " ok" : " BAD");
    putchar('\n');
    return ok ? 0 : 1;
}
